"""Policy variants: one point of the compaction-policy design space.

A :class:`PolicyVariant` is a small, picklable value object naming every
decision knob the Policy Lab can sweep — ranking weights, trigger cadence,
filter thresholds, selection budget, scheduler mode, shard count — plus
the factory that turns it into a runnable pipeline over a fleet model.
What-if search is then just "replay one trace under many variants".

Variant construction deliberately reuses the production components
(:class:`~repro.core.ranking.WeightedSumPolicy`,
:class:`~repro.core.selection.BudgetSelector`,
:class:`~repro.core.scheduling.ConcurrentScheduler`, …): the policy a
what-if run crowns best is byte-for-byte the policy a deployment would run.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, fields, replace

from repro.core.filters import MinSmallFileCountFilter, QuiescenceFilter
from repro.core.pipeline import AutoCompPipeline
from repro.core.ranking import Objective, QuotaAwareWeightedSumPolicy, WeightedSumPolicy
from repro.core.scheduling import ConcurrentScheduler, SequentialScheduler
from repro.core.selection import BudgetSelector, Selector, TopKSelector
from repro.core.sharding import ShardedPipeline
from repro.core.statscache import IndexedCandidateCache
from repro.core.traits import ComputeCostTrait, FileCountReductionTrait, TraitRegistry
from repro.errors import ValidationError
from repro.fleet.connectors import FleetBackend, FleetConnector
from repro.fleet.model import FleetModel
from repro.simulation.rng import derive_rng
from repro.units import DAY

#: Ranking families a variant may select.
RANKING_MODES = ("weighted", "quota_aware")

#: Act-phase scheduler modes a variant may select.
SCHEDULER_MODES = ("sequential", "concurrent")


@dataclass(frozen=True)
class PolicyVariant:
    """One compaction-policy configuration for replay / what-if search.

    Args:
        name: label used in reports and RNG derivation (must be unique
            within one what-if sweep).
        ranking: ``weighted`` (fixed MOOP weights) or ``quota_aware``
            (the §7 production ranking with per-tenant dynamic weights).
        benefit_weight: MOOP weight on file-count reduction (``weighted``
            ranking only; cost weight is its complement).
        k: fixed top-k selection; ignored when ``budget_gbhr`` is set.
        budget_gbhr: dynamic-k budget selection (overrides ``k``).
        min_small_files: observe-phase filter threshold — candidates with
            fewer small files are dropped.
        quiesce_days: skip tables written within this many days
            (0 disables the write-activity filter).
        trigger_interval_days: run a cycle every N recorded days (the
            paper's daily deployment cadence is 1).  Catalog replay reads
            it as "every Nth recorded cycle marker".
        scheduler: ``sequential`` or ``concurrent`` (chain-grouped
            :class:`~repro.core.scheduling.ConcurrentScheduler`).
        n_shards: >1 runs the variant behind the sharded control plane —
            with a shared incremental-observation cache for fleet replay,
            and through
            :func:`~repro.core.service.openhouse_sharded_pipeline` for
            catalog replay (global selection keeps sharded cycle reports
            byte-identical to unsharded ones).
        generation: candidate-generation strategy for catalog replay
            (``table`` / ``partition`` / ``hybrid`` — the §6 strategy
            axis).  Fleet replay is always table-scoped and ignores it.
    """

    name: str
    ranking: str = "weighted"
    benefit_weight: float = 0.7
    k: int | None = 10
    budget_gbhr: float | None = None
    min_small_files: int = 2
    quiesce_days: float = 0.0
    trigger_interval_days: int = 1
    scheduler: str = "sequential"
    n_shards: int = 1
    generation: str = "table"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("variant name must be non-empty")
        if self.ranking not in RANKING_MODES:
            raise ValidationError(
                f"unknown ranking {self.ranking!r}; expected one of {RANKING_MODES}"
            )
        if self.scheduler not in SCHEDULER_MODES:
            raise ValidationError(
                f"unknown scheduler {self.scheduler!r}; expected one of {SCHEDULER_MODES}"
            )
        if self.k is None and self.budget_gbhr is None:
            raise ValidationError("variant needs k or budget_gbhr")
        if not 0 < self.benefit_weight < 1:
            raise ValidationError("benefit_weight must be in (0, 1)")
        if self.trigger_interval_days <= 0:
            raise ValidationError("trigger_interval_days must be positive")
        if self.min_small_files < 0:
            raise ValidationError("min_small_files must be >= 0")
        if self.quiesce_days < 0:
            raise ValidationError("quiesce_days must be >= 0")
        if self.n_shards <= 0:
            raise ValidationError("n_shards must be positive")
        from repro.core.candidates import GENERATION_STRATEGIES

        if self.generation not in GENERATION_STRATEGIES:
            raise ValidationError(
                f"unknown generation {self.generation!r}; "
                f"expected one of {GENERATION_STRATEGIES}"
            )

    def renamed(self, name: str) -> "PolicyVariant":
        """A copy under a different name."""
        return replace(self, name=name)

    # --- serde (the PolicyStore's durable format) -------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe mapping of every knob (all fields are scalars).

        The :class:`~repro.core.promoter.PolicyStore` persists variants in
        this form; :meth:`from_dict` round-trips it exactly.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyVariant":
        """Rebuild a variant from :meth:`to_dict` output.

        Unknown keys are ignored (a store written by a newer build with
        extra knobs still loads); missing keys fall back to the dataclass
        defaults.  Validation reruns in ``__post_init__``.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    # --- factories -------------------------------------------------------------

    def build_policy(self):
        """The variant's ranking policy instance."""
        if self.ranking == "quota_aware":
            return QuotaAwareWeightedSumPolicy()
        return WeightedSumPolicy(
            [
                Objective("file_count_reduction", self.benefit_weight, maximize=True),
                Objective("compute_cost_gbhr", 1.0 - self.benefit_weight, maximize=False),
            ]
        )

    def build_selector(self) -> Selector:
        """The variant's budget selector."""
        if self.budget_gbhr is not None:
            return BudgetSelector(self.budget_gbhr)
        return TopKSelector(self.k if self.k is not None else 10)

    def build_scheduler(self):
        """The variant's act-phase scheduler.

        ``concurrent`` uses table-serial chains without worker threads: the
        fleet backend mutates shared numpy state, so chains must execute on
        one thread — the grouping (and any ``max_parallelism`` semantics)
        still match a scaled-out deployment, deterministically.
        """
        if self.scheduler == "concurrent":
            return ConcurrentScheduler(table_serial=True)
        return SequentialScheduler()

    def build_pipeline(self, model: FleetModel) -> AutoCompPipeline | ShardedPipeline:
        """A runnable pipeline (sharded when ``n_shards > 1``) over ``model``."""
        traits = TraitRegistry(
            [
                FileCountReductionTrait(),
                ComputeCostTrait(
                    executor_memory_gb=model.config.executor_memory_gb,
                    rewrite_bytes_per_hour=model.config.rewrite_bytes_per_hour,
                ),
            ]
        )
        stats_filters: list = [MinSmallFileCountFilter(self.min_small_files)]
        if self.quiesce_days > 0:
            stats_filters.append(QuiescenceFilter(self.quiesce_days * DAY))

        def shard_pipeline(cache: IndexedCandidateCache | None) -> AutoCompPipeline:
            return AutoCompPipeline(
                connector=FleetConnector(
                    model, min_small_files=self.min_small_files, stats_cache=cache
                ),
                backend=FleetBackend(model),
                traits=traits,
                policy=self.build_policy(),
                selector=self.build_selector(),
                scheduler=self.build_scheduler(),
                generation="table",
                stats_filters=stats_filters,
            )

        if self.n_shards == 1:
            return shard_pipeline(None)
        cache = IndexedCandidateCache()
        shards = [shard_pipeline(cache) for _ in range(self.n_shards)]
        return ShardedPipeline(shards, selection="global", merge_order="any", max_workers=1)

    def build_catalog_pipeline(
        self, catalog, compaction_cluster, cost_model=None
    ) -> AutoCompPipeline | ShardedPipeline:
        """A runnable OpenHouse-shaped pipeline over a live (or replayed) catalog.

        The catalog analogue of :meth:`build_pipeline`, built through
        :func:`~repro.core.service.openhouse_pipeline` so the policy a
        catalog what-if run crowns best is byte-for-byte the policy a §6
        deployment would run.  Recording a live run driven through this
        same factory (with synchronous cycles) is what makes
        record → replay byte-identity hold for catalog traces.

        With ``n_shards > 1`` the variant runs behind
        :func:`~repro.core.service.openhouse_sharded_pipeline` (global
        selection, single-threaded inline shard workers), so shadow
        evaluation can exercise the sharded deployment shape offline.
        Global selection re-merges and ranks shard survivors at the fleet
        level, so sharded replays stay byte-identical to unsharded ones —
        the property ``tests/replay`` pins.  Callers owning the pipeline's
        lifetime should ``close()`` sharded instances (the catalog
        replayer does).
        """
        kwargs = dict(
            cost_model=cost_model,
            generation=self.generation,
            k=self.k,
            budget_gbhr=self.budget_gbhr,
            benefit_weight=self.benefit_weight,
            min_table_age_s=0.0,
            min_small_files=self.min_small_files,
            quiesce_s=self.quiesce_days * DAY,
            scheduler=self.build_scheduler(),
        )
        if self.n_shards > 1:
            from repro.core.service import openhouse_sharded_pipeline

            pipeline = openhouse_sharded_pipeline(
                catalog,
                compaction_cluster,
                n_shards=self.n_shards,
                workers="threads",
                max_workers=1,
                **kwargs,
            )
            if self.ranking == "quota_aware":
                for shard in pipeline.shards:
                    shard.policy = QuotaAwareWeightedSumPolicy()
                pipeline.policy = pipeline.shards[0].policy
            return pipeline
        from repro.core.service import openhouse_pipeline

        pipeline = openhouse_pipeline(catalog, compaction_cluster, **kwargs)
        if self.ranking == "quota_aware":
            pipeline.policy = QuotaAwareWeightedSumPolicy()
        return pipeline


def variant_grid(
    benefit_weights: tuple[float, ...] = (0.5, 0.7, 0.9),
    ks: tuple[int, ...] = (5, 10, 20),
    rankings: tuple[str, ...] = ("weighted",),
    trigger_interval_days: tuple[int, ...] = (1,),
) -> list[PolicyVariant]:
    """The full cross product of the given axes, deterministically named.

    Quota-aware variants ignore ``benefit_weight`` (their weights are
    per-candidate), so each quota-aware point appears once per ``k`` /
    interval combination rather than once per weight.
    """
    variants: list[PolicyVariant] = []
    seen: set[tuple] = set()
    for ranking, weight, k, interval in itertools.product(
        rankings, benefit_weights, ks, trigger_interval_days
    ):
        identity = (ranking, weight if ranking == "weighted" else None, k, interval)
        if identity in seen:
            continue
        seen.add(identity)
        if ranking == "weighted":
            name = f"w{weight:.2f}-k{k}-i{interval}"
        else:
            name = f"quota-k{k}-i{interval}"
        variants.append(
            PolicyVariant(
                name=name,
                ranking=ranking,
                benefit_weight=weight if ranking == "weighted" else 0.7,
                k=k,
                trigger_interval_days=interval,
            )
        )
    return variants


def sample_variants(n: int, seed: int = 0) -> list[PolicyVariant]:
    """``n`` random points of the variant space (deterministic under a seed)."""
    if n <= 0:
        raise ValidationError("n must be positive")
    rng = derive_rng(seed, "policy-lab", "sample-variants")
    variants = []
    for index in range(n):
        ranking = "quota_aware" if rng.uniform() < 0.25 else "weighted"
        weight = float(round(rng.uniform(0.35, 0.9), 3))
        k = int(rng.integers(3, 40))
        interval = int(rng.integers(1, 4))
        variants.append(
            PolicyVariant(
                name=f"sample{index:02d}",
                ranking=ranking,
                benefit_weight=weight,
                k=k,
                trigger_interval_days=interval,
                scheduler="concurrent" if rng.uniform() < 0.3 else "sequential",
            )
        )
    return variants
