"""Table schemas.

Schemas here are declarative metadata — the simulator never materialises
rows, but catalogs, governance policies and the TPC-H/TPC-DS workload
definitions need named, typed columns (and the partition specs reference
columns by name, which we validate against the schema at table creation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError

#: Primitive type names accepted in schemas.
PRIMITIVE_TYPES = frozenset(
    {"boolean", "int", "long", "float", "double", "decimal", "date", "timestamp", "string"}
)


@dataclass(frozen=True)
class Field:
    """A named, typed column."""

    name: str
    type: str
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("field name must be non-empty")
        if self.type not in PRIMITIVE_TYPES:
            raise ValidationError(
                f"unknown field type {self.type!r}; expected one of "
                f"{sorted(PRIMITIVE_TYPES)}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of fields with unique names."""

    fields: tuple[Field, ...] = field(default=())

    @classmethod
    def of(cls, *fields: Field) -> "Schema":
        """Build a schema from fields."""
        return cls(tuple(fields))

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValidationError(f"duplicate field names in schema: {duplicates}")

    def __len__(self) -> int:
        return len(self.fields)

    def field_names(self) -> list[str]:
        """Column names in schema order."""
        return [f.name for f in self.fields]

    def has_field(self, name: str) -> bool:
        """Whether a column with ``name`` exists."""
        return any(f.name == name for f in self.fields)

    def find(self, name: str) -> Field:
        """The field named ``name``.

        Raises:
            ValidationError: if absent.
        """
        for schema_field in self.fields:
            if schema_field.name == name:
                return schema_field
        raise ValidationError(f"no field named {name!r} in schema")
