"""Log-structured table (LST) substrate.

A from-scratch simulation of the table-format machinery AutoComp operates
on: immutable data files, partition specs, snapshots, manifests, optimistic
transactions with conflict validation, bin-packing rewrite (compaction)
planning, and snapshot expiration.

Two format profiles are provided, mirroring the paper's deployments:

* :class:`~repro.lst.table.IcebergTable` — Apache-Iceberg-v1.2.0-like:
  manifest/manifest-list/metadata-json layout, and the quirk documented in
  §4.4 where *concurrent rewrites of distinct partitions still conflict*;
* :class:`~repro.lst.delta.DeltaTable` — Delta-Lake-v2.4.0-like: JSON commit
  log with periodic checkpoints and file-granularity conflict detection;
* :class:`~repro.lst.hudi.HudiTable` — Apache-Hudi-like: timeline commits
  that compaction collapses, MVCC-light conflict rules.

All expose one :class:`~repro.lst.base.BaseTable` interface so AutoComp's
connectors are format-agnostic (the paper's NFR3).
"""

from repro.lst.files import DataFile, DeleteFile, FileContent
from repro.lst.partitioning import (
    BucketTransform,
    DayTransform,
    IdentityTransform,
    MonthTransform,
    PartitionField,
    PartitionSpec,
)
from repro.lst.schema import Field, Schema
from repro.lst.snapshot import Snapshot
from repro.lst.base import BaseTable, ConflictSemantics, ScanPlan, TableIdentifier
from repro.lst.table import IcebergTable
from repro.lst.delta import DeltaTable
from repro.lst.hudi import HudiTable
from repro.lst.maintenance import PartitionRewrite, RewritePlan, plan_rewrite
from repro.lst.zorder import plan_zorder_rewrite, z_order_files, z_value

__all__ = [
    "BaseTable",
    "BucketTransform",
    "ConflictSemantics",
    "DataFile",
    "DayTransform",
    "DeleteFile",
    "DeltaTable",
    "Field",
    "FileContent",
    "HudiTable",
    "IcebergTable",
    "IdentityTransform",
    "MonthTransform",
    "PartitionField",
    "PartitionRewrite",
    "PartitionSpec",
    "RewritePlan",
    "ScanPlan",
    "Schema",
    "Snapshot",
    "TableIdentifier",
    "plan_rewrite",
    "plan_zorder_rewrite",
    "z_order_files",
    "z_value",
]
