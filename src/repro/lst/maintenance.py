"""Rewrite (compaction) planning and execution.

The planner implements the bin-packing strategy every LST ships for its
``rewrite_data_files`` / ``OPTIMIZE`` action: within each partition, collect
the files smaller than the target size and replace them with
``ceil(total_bytes / target)`` evenly sized outputs.  Compaction never
crosses partition boundaries — the very property that makes the paper's
table-level ΔF_c estimator overestimate achievable reduction (§7, "Model
Accuracy and Estimation Errors"), which ``estimate_table_level_reduction``
(the paper's formula) versus :meth:`RewritePlan.file_count_reduction` (the
partition-aware truth) lets experiments quantify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.lst.files import DataFile
from repro.lst.snapshot import Snapshot


@dataclass(frozen=True)
class PartitionRewrite:
    """One partition's rewrite group: sources in, evenly packed outputs out."""

    partition: tuple
    sources: tuple[DataFile, ...]
    output_sizes: tuple[int, ...]

    @property
    def input_count(self) -> int:
        """Number of source files."""
        return len(self.sources)

    @property
    def output_count(self) -> int:
        """Number of replacement files."""
        return len(self.output_sizes)

    @property
    def input_bytes(self) -> int:
        """Bytes rewritten by this group."""
        return sum(f.size_bytes for f in self.sources)

    @property
    def file_count_reduction(self) -> int:
        """Net live-file reduction this group achieves."""
        return self.input_count - self.output_count


@dataclass(frozen=True)
class RewritePlan:
    """A full compaction plan for one candidate (table or partition scope)."""

    table: str
    groups: tuple[PartitionRewrite, ...]

    @property
    def is_empty(self) -> bool:
        """Whether there is nothing worth rewriting."""
        return not self.groups

    @property
    def input_file_count(self) -> int:
        """Total source files across groups."""
        return sum(g.input_count for g in self.groups)

    @property
    def output_file_count(self) -> int:
        """Total output files across groups."""
        return sum(g.output_count for g in self.groups)

    @property
    def rewritten_bytes(self) -> int:
        """Total bytes read and rewritten."""
        return sum(g.input_bytes for g in self.groups)

    @property
    def file_count_reduction(self) -> int:
        """Net live-file reduction (partition-aware ground truth)."""
        return self.input_file_count - self.output_file_count


def pack_sizes(total_bytes: int, target_size: int) -> tuple[int, ...]:
    """Split ``total_bytes`` into the fewest outputs each at most ``target_size``.

    Outputs are evenly sized (differing by at most one byte), matching how a
    bin-packing rewrite job balances its writers.

    Raises:
        ValidationError: on non-positive target or negative total.
    """
    if target_size <= 0:
        raise ValidationError(f"target size must be positive, got {target_size}")
    if total_bytes < 0:
        raise ValidationError(f"total bytes must be >= 0, got {total_bytes}")
    if total_bytes == 0:
        return ()
    count = math.ceil(total_bytes / target_size)
    base, remainder = divmod(total_bytes, count)
    return tuple(base + 1 if i < remainder else base for i in range(count))


def plan_rewrite(
    files: list[DataFile],
    target_file_size: int,
    table: str = "",
    partitions: list[tuple] | None = None,
    min_input_files: int = 2,
) -> RewritePlan:
    """Plan a bin-packing rewrite over ``files``.

    Args:
        files: live data files of the candidate (any partitions mixed).
        target_file_size: desired output size; files at or above it are left
            untouched.
        table: label recorded in the plan (for telemetry/reporting).
        partitions: restrict planning to these partitions (None = all).
        min_input_files: partitions with fewer small files than this are
            skipped — rewriting one file buys nothing.

    Returns:
        A plan whose groups strictly reduce file counts; partitions where
        bin-packing would not reduce the count are omitted.
    """
    if min_input_files < 1:
        raise ValidationError("min_input_files must be >= 1")
    wanted = set(partitions) if partitions is not None else None
    by_partition: dict[tuple, list[DataFile]] = {}
    for data_file in files:
        if wanted is not None and data_file.partition not in wanted:
            continue
        if data_file.size_bytes < target_file_size:
            by_partition.setdefault(data_file.partition, []).append(data_file)

    groups = []
    for partition in sorted(by_partition):
        sources = sorted(by_partition[partition], key=lambda f: f.file_id)
        if len(sources) < min_input_files:
            continue
        total = sum(f.size_bytes for f in sources)
        output_sizes = pack_sizes(total, target_file_size)
        if len(output_sizes) >= len(sources):
            continue  # packing would not reduce the file count
        groups.append(
            PartitionRewrite(
                partition=partition,
                sources=tuple(sources),
                output_sizes=output_sizes,
            )
        )
    return RewritePlan(table=table, groups=tuple(groups))


def plan_table_rewrite(
    table: BaseTable,
    partitions: list[tuple] | None = None,
    min_input_files: int = 2,
    target_file_size: int | None = None,
) -> RewritePlan:
    """Plan a rewrite for a live table (convenience wrapper)."""
    target = target_file_size if target_file_size is not None else table.target_file_size
    return plan_rewrite(
        table.live_files(),
        target_file_size=target,
        table=str(table.identifier),
        partitions=partitions,
        min_input_files=min_input_files,
    )


def execute_rewrite(table: BaseTable, plan: RewritePlan) -> Snapshot | None:
    """Apply a rewrite plan in a single rewrite transaction.

    Returns:
        The committed snapshot, or None if the plan was empty.

    Raises:
        CommitConflictError: if concurrent activity invalidated the plan
            (cluster-side conflict).
    """
    if plan.is_empty:
        return None
    txn = table.new_rewrite()
    for group in plan.groups:
        txn.rewrite(list(group.sources), list(group.output_sizes))
    return txn.commit()


def estimate_table_level_reduction(files: list[DataFile], target_file_size: int) -> int:
    """The paper's ΔF_c estimator: count of files below the target size.

    This is the formula from §4.2:

        ΔF_c = Σ_i  1[ FileSize_i,c < TargetFileSize_c ]

    It ignores partition boundaries and output-file counts, so it
    *overestimates* actual reduction (by ~28% in the paper's production
    measurements); experiments compare it against
    :meth:`RewritePlan.file_count_reduction`.
    """
    if target_file_size <= 0:
        raise ValidationError(f"target size must be positive, got {target_file_size}")
    return sum(1 for f in files if f.size_bytes < target_file_size)
