"""Z-order (Morton) curve utilities and layout-aware rewrite planning.

§8 of the paper ("Automatic Data Layout Optimization") points out that
compaction generalises to broader layout optimisation — clustering
techniques such as Z-ordering improve compression and filtering by
co-locating related data, and integrating them needs extensions to
candidate generation and trait computation.

This module supplies the curve mathematics and a clustered rewrite
planner:

* :func:`interleave_bits` / :func:`z_value` — the Morton encoding that
  Z-ordered writers sort by;
* :func:`z_order_files` — orders data files by the z-value of their
  (multi-dimensional) partition coordinates, so consecutive output files
  cover spatially adjacent regions;
* :func:`plan_zorder_rewrite` — a rewrite plan whose groups are emitted in
  z-order, giving downstream range queries locality across partitions.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.lst.files import DataFile
from repro.lst.maintenance import PartitionRewrite, RewritePlan, pack_sizes

#: Bits retained per dimension when interleaving (supports values < 2^21
#: with up to 3 dimensions inside a 64-bit z-value).
DEFAULT_BITS = 21


def interleave_bits(coordinates: tuple[int, ...], bits: int = DEFAULT_BITS) -> int:
    """Interleave the low ``bits`` of each coordinate into one Morton code.

    Bit ``b`` of dimension ``d`` lands at position ``b * D + d`` — the
    classic Z-order curve: nearby multi-dimensional points receive nearby
    codes.

    Args:
        coordinates: non-negative integer coordinates.
        bits: bits retained per dimension.

    Raises:
        ValidationError: on empty input, negative coordinates, or
            coordinates needing more than ``bits`` bits.
    """
    if not coordinates:
        raise ValidationError("need at least one coordinate")
    if bits <= 0 or bits * len(coordinates) > 64:
        raise ValidationError(
            f"bits*dimensions must fit in 64, got {bits}*{len(coordinates)}"
        )
    limit = 1 << bits
    code = 0
    dimensions = len(coordinates)
    for d, value in enumerate(coordinates):
        if value < 0:
            raise ValidationError(f"coordinates must be >= 0, got {value}")
        if value >= limit:
            raise ValidationError(
                f"coordinate {value} exceeds {bits}-bit range [0, {limit})"
            )
        for b in range(bits):
            if value >> b & 1:
                code |= 1 << (b * dimensions + d)
    return code


def z_value(partition: tuple, bits: int = DEFAULT_BITS) -> int:
    """Z-order code for a partition tuple.

    Non-integer components are hashed to stable small integers first
    (CRC-32 truncated to the bit budget), so mixed-type partitions still
    get a deterministic ordering.
    """
    if not partition:
        return 0
    import zlib

    coordinates = []
    mask = (1 << bits) - 1
    for component in partition:
        if isinstance(component, bool):  # bool is an int subclass; be explicit
            coordinates.append(int(component))
        elif isinstance(component, int) and component >= 0:
            coordinates.append(component & mask)
        else:
            coordinates.append(zlib.crc32(str(component).encode("utf-8")) & mask)
    return interleave_bits(tuple(coordinates), bits)


def z_order_files(files: list[DataFile], bits: int = DEFAULT_BITS) -> list[DataFile]:
    """Data files sorted by the z-value of their partition (then file id)."""
    return sorted(files, key=lambda f: (z_value(f.partition, bits), f.file_id))


def plan_zorder_rewrite(
    files: list[DataFile],
    target_file_size: int,
    table: str = "",
    min_input_files: int = 2,
    bits: int = DEFAULT_BITS,
) -> RewritePlan:
    """A bin-packing rewrite whose groups are emitted in Z-order.

    Compaction still never crosses partitions (the correctness constraint
    from §7), but ordering the *groups* along the Z-curve means the
    rewritten files of spatially adjacent partitions land near each other
    — the locality benefit Z-ordering buys for multi-dimensional range
    queries.

    Args:
        files: live data files (any partitions mixed).
        target_file_size: output size target.
        table: label recorded in the plan.
        min_input_files: partitions with fewer small files are skipped.
        bits: z-curve resolution.

    Returns:
        A :class:`RewritePlan` with groups in z-order.
    """
    if min_input_files < 1:
        raise ValidationError("min_input_files must be >= 1")
    by_partition: dict[tuple, list[DataFile]] = {}
    for data_file in files:
        if data_file.size_bytes < target_file_size:
            by_partition.setdefault(data_file.partition, []).append(data_file)

    ordered_partitions = sorted(by_partition, key=lambda p: (z_value(p, bits), p))
    groups = []
    for partition in ordered_partitions:
        sources = sorted(by_partition[partition], key=lambda f: f.file_id)
        if len(sources) < min_input_files:
            continue
        total = sum(f.size_bytes for f in sources)
        output_sizes = pack_sizes(total, target_file_size)
        if len(output_sizes) >= len(sources):
            continue
        groups.append(
            PartitionRewrite(
                partition=partition, sources=tuple(sources), output_sizes=output_sizes
            )
        )
    return RewritePlan(table=table, groups=tuple(groups))
