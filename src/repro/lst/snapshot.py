"""Table snapshots.

Each successful commit produces an immutable :class:`Snapshot` capturing the
complete live file set at that version.  Storing the live set per snapshot
(rather than replaying logs) keeps time-travel, expiration and conflict
validation simple and O(1) to query, at the cost of sharing frozensets
between snapshots — acceptable at simulation scale and semantically
identical to manifest reachability in Iceberg.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.lst.files import DataFile, DeleteFile


@dataclass(frozen=True)
class Snapshot:
    """One committed table version.

    Attributes:
        snapshot_id: unique, monotonically increasing per table.
        parent_id: snapshot this one was derived from (None for the first).
        sequence_number: commit sequence (equals the metadata version).
        timestamp: simulated commit time in seconds.
        operation: one of ``append``, ``overwrite``, ``delete``, ``replace``
            (compaction) — Iceberg's operation vocabulary.
        live_files: all data files readable at this version.
        delete_files: all merge-on-read delete files in force.
        manifest_paths: metadata manifests reachable from this snapshot; the
            engine's planning cost scales with this list's length.
        exclusive_metadata_paths: metadata files owned solely by this
            snapshot (e.g. Iceberg's manifest list and metadata JSON);
            deleted when the snapshot expires.
        summary: counters describing the commit (added/removed files etc.).
    """

    snapshot_id: int
    parent_id: int | None
    sequence_number: int
    timestamp: float
    operation: str
    live_files: frozenset[DataFile]
    delete_files: frozenset[DeleteFile] = frozenset()
    manifest_paths: tuple[str, ...] = ()
    exclusive_metadata_paths: tuple[str, ...] = ()
    summary: dict[str, int] = field(default_factory=dict)

    @cached_property
    def ordered_files(self) -> tuple[DataFile, ...]:
        """Live data files in deterministic (``file_id``) order.

        Snapshots are immutable, so every observation of the same version
        shares one sort instead of re-sorting per read — observation is
        the hottest per-file path in the control plane.
        """
        return tuple(sorted(self.live_files, key=lambda f: f.file_id))

    @property
    def data_file_count(self) -> int:
        """Number of live data files."""
        return len(self.live_files)

    @property
    def delete_file_count(self) -> int:
        """Number of live delete files."""
        return len(self.delete_files)

    @property
    def total_data_bytes(self) -> int:
        """Total bytes across live data files."""
        return sum(f.size_bytes for f in self.live_files)

    def files_in_partition(self, partition: tuple) -> list[DataFile]:
        """Live data files belonging to ``partition``."""
        return [f for f in self.live_files if f.partition == partition]

    def partitions(self) -> list[tuple]:
        """Distinct partitions holding live files, sorted."""
        return sorted({f.partition for f in self.live_files})
