"""Partition specs and transforms.

A :class:`PartitionSpec` maps row values to a partition tuple via a list of
:class:`PartitionField`, each applying a transform to a source column —
the same model as Iceberg's hidden partitioning.  The paper's synthetic
workload partitions ``lineitem`` by ``shipdate`` at *monthly* granularity
(§6) while ``orders`` stays unpartitioned; :class:`MonthTransform` and the
empty spec cover those two cases, and :class:`BucketTransform` /
:class:`DayTransform` round out the common Iceberg transforms.

Dates are represented as integer *day ordinals* (days since an arbitrary
epoch); a simulated month is 30 days, consistent with ``repro.units.MONTH``.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field

from repro.errors import ValidationError

#: Days per simulated month, shared with the time constants in repro.units.
DAYS_PER_MONTH = 30


class Transform(abc.ABC):
    """Maps a source column value to a partition value."""

    name: str = "transform"

    @abc.abstractmethod
    def apply(self, value: object) -> object:
        """Partition value for ``value``."""

    def __repr__(self) -> str:
        return self.name


class IdentityTransform(Transform):
    """Partition directly by the column value."""

    name = "identity"

    def apply(self, value: object) -> object:
        return value


class MonthTransform(Transform):
    """Partition a day-ordinal date column by 30-day month index."""

    name = "month"

    def apply(self, value: object) -> int:
        return int(value) // DAYS_PER_MONTH


class DayTransform(Transform):
    """Partition a day-ordinal date column by day."""

    name = "day"

    def apply(self, value: object) -> int:
        return int(value)


class BucketTransform(Transform):
    """Hash-partition into ``num_buckets`` buckets.

    Uses CRC-32 of the value's string form so bucketing is stable across
    processes (``hash()`` is salted per process and would break NFR2).
    """

    def __init__(self, num_buckets: int) -> None:
        if num_buckets <= 0:
            raise ValidationError(f"bucket count must be positive, got {num_buckets}")
        self.num_buckets = num_buckets
        self.name = f"bucket[{num_buckets}]"

    def apply(self, value: object) -> int:
        return zlib.crc32(str(value).encode("utf-8")) % self.num_buckets


@dataclass(frozen=True)
class PartitionField:
    """One component of a partition spec."""

    source: str
    transform: Transform
    name: str = ""

    def resolved_name(self) -> str:
        """Field name in the partition tuple (defaults to source_transform)."""
        return self.name or f"{self.source}_{self.transform.name}"


@dataclass(frozen=True)
class PartitionSpec:
    """An ordered list of partition fields; empty means unpartitioned."""

    fields: tuple[PartitionField, ...] = field(default=())

    @classmethod
    def unpartitioned(cls) -> "PartitionSpec":
        """The empty spec."""
        return cls(())

    @classmethod
    def of(cls, *fields: PartitionField) -> "PartitionSpec":
        """Build a spec from partition fields."""
        return cls(tuple(fields))

    @property
    def is_partitioned(self) -> bool:
        """Whether the spec has any partition fields."""
        return bool(self.fields)

    def partition_for(self, row: dict[str, object]) -> tuple:
        """Partition tuple for a row given as a column->value mapping.

        Raises:
            ValidationError: if a source column is missing from ``row``.
        """
        values = []
        for part_field in self.fields:
            if part_field.source not in row:
                raise ValidationError(
                    f"row missing partition source column {part_field.source!r}"
                )
            values.append(part_field.transform.apply(row[part_field.source]))
        return tuple(values)

    def partition_path(self, partition: tuple) -> str:
        """Directory fragment for a partition tuple, e.g. ``'shipdate_month=42'``."""
        if not self.fields:
            return ""
        if len(partition) != len(self.fields):
            raise ValidationError(
                f"partition tuple {partition!r} does not match spec arity "
                f"{len(self.fields)}"
            )
        return "/".join(
            f"{part_field.resolved_name()}={value}"
            for part_field, value in zip(self.fields, partition)
        )
