"""Base table: transactions, optimistic concurrency, and conflict semantics.

This module implements the commit protocol shared by both format profiles.
A transaction captures the table's metadata version when it *starts*; at
commit time, if other transactions committed in between, validation decides
whether the commit can proceed — and validation is where the two format
profiles (Iceberg-like, Delta-like) differ, expressed as a
:class:`ConflictSemantics` value rather than subclass spaghetti.

Conflicts carry a *side* matching the paper's Table 1:

* ``client`` — a user write (append / overwrite / row-delta) terminated by a
  versioning conflict; engines retry these;
* ``cluster`` — a compaction (rewrite) aborted on the maintenance cluster;
  AutoComp treats these as lost work.

The Iceberg-v1.2.0 profile reproduces the counterintuitive behaviour the
paper reports in §4.4: two concurrent rewrites conflict *even when they
target distinct partitions*, which is why AutoComp's hybrid scheduler runs
partition-level compactions sequentially per table.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import CommitConflictError, ValidationError
from repro.lst.files import DataFile, DeleteFile, FileContent
from repro.lst.partitioning import PartitionSpec
from repro.lst.schema import Schema
from repro.lst.snapshot import Snapshot
from repro.simulation.clock import SimClock
from repro.simulation.telemetry import Telemetry
from repro.storage.filesystem import SimulatedFileSystem
from repro.units import DEFAULT_TARGET_FILE_SIZE, SMALL_FILE_THRESHOLD

#: Assumed average row width used when writers do not supply record counts.
DEFAULT_ROW_BYTES = 128


@dataclass(frozen=True)
class TableIdentifier:
    """Fully qualified table name (``database.table``)."""

    database: str
    name: str

    def __post_init__(self) -> None:
        if not self.database or not self.name:
            raise ValidationError("database and table name must be non-empty")
        if "." in self.database or "." in self.name:
            raise ValidationError("database/table names must not contain '.'")

    @classmethod
    def parse(cls, qualified: str) -> "TableIdentifier":
        """Parse ``'db.table'`` into an identifier."""
        database, sep, name = qualified.partition(".")
        if not sep:
            raise ValidationError(f"expected 'db.table', got {qualified!r}")
        return cls(database, name)

    def __str__(self) -> str:
        return f"{self.database}.{self.name}"


@dataclass(frozen=True)
class ConflictSemantics:
    """Format-specific commit-validation rules.

    Each flag enables one conflict check applied when a transaction commits
    against a table version newer than the one it started from.
    """

    #: Appends fail (once; a retry with fresh metadata succeeds) when a
    #: rewrite committed concurrently — the stale-metadata client conflicts
    #: the paper observes when compaction races user writes.
    append_fails_on_concurrent_rewrite: bool = True
    #: Overwrites fail when any concurrent commit touched the same partition.
    overwrite_fails_on_same_partition_commit: bool = True
    #: Row-deltas (MoR deletes) fail when a referenced data file vanished.
    rowdelta_fails_on_reference_removed: bool = True
    #: Rewrites fail when any concurrent rewrite committed — regardless of
    #: partition overlap.  True reproduces the Iceberg v1.2.0 quirk (§4.4).
    rewrite_fails_on_concurrent_rewrite_any_partition: bool = True
    #: Rewrites fail when a concurrent *write* touched a partition they
    #: rewrite (in addition to the always-on source-file liveness check).
    rewrite_fails_on_same_partition_write: bool = True

    @classmethod
    def iceberg_v1_2(cls) -> "ConflictSemantics":
        """Semantics observed with Apache Iceberg v1.2.0 in the paper."""
        return cls()

    @classmethod
    def delta_v2_4(cls) -> "ConflictSemantics":
        """Delta-Lake-like file-granularity semantics.

        Disjoint rewrites commit concurrently, and appends never conflict
        with OPTIMIZE; only genuine file-set overlaps abort.
        """
        return cls(
            append_fails_on_concurrent_rewrite=False,
            overwrite_fails_on_same_partition_commit=True,
            rowdelta_fails_on_reference_removed=True,
            rewrite_fails_on_concurrent_rewrite_any_partition=False,
            rewrite_fails_on_same_partition_write=False,
        )


@dataclass(frozen=True)
class ScanPlan:
    """Result of planning a read: which files a query must touch."""

    files: tuple[DataFile, ...]
    delete_files: tuple[DeleteFile, ...]
    manifests_read: int

    @property
    def file_count(self) -> int:
        """Number of data files scanned."""
        return len(self.files)

    @property
    def total_bytes(self) -> int:
        """Total data bytes scanned."""
        return sum(f.size_bytes for f in self.files)

    @property
    def delete_bytes(self) -> int:
        """Total delete-file bytes that must be merged at read time."""
        return sum(f.size_bytes for f in self.delete_files)


@dataclass(frozen=True)
class _PendingFile:
    """A file staged by a transaction, materialised at commit."""

    size_bytes: int
    record_count: int
    partition: tuple
    content: FileContent = FileContent.DATA
    references: frozenset[int] = frozenset()


@dataclass(frozen=True)
class _CommitRecord:
    """Internal log entry used for conflict validation."""

    version: int
    snapshot_id: int
    operation: str
    partitions: frozenset
    removed_file_ids: frozenset
    is_rewrite: bool
    timestamp: float


class Transaction:
    """An in-flight optimistic transaction against one table.

    Instances are created by the table's ``new_*`` factory methods; callers
    stage changes then :meth:`commit`.  A transaction is single-use: after
    commit or abort it cannot be reused.
    """

    #: Iceberg operation label; also selects validation rules.
    operation = "append"
    #: Which Table-1 column a conflict on this operation lands in.
    conflict_side = "client"

    def __init__(self, table: "BaseTable") -> None:
        self._table = table
        self.base_version = table.version
        self.started_at = table.clock.now
        self._pending: list[_PendingFile] = []
        self._removed: list[DataFile] = []
        self._sources: list[DataFile] = []
        self._done = False

    # --- staging -------------------------------------------------------------

    def add_file(
        self,
        size_bytes: int,
        partition: tuple = (),
        record_count: int | None = None,
    ) -> None:
        """Stage a new data file of ``size_bytes`` in ``partition``."""
        self._check_open()
        if size_bytes < 0:
            raise ValidationError(f"file size must be >= 0, got {size_bytes}")
        records = record_count if record_count is not None else max(
            1, size_bytes // DEFAULT_ROW_BYTES
        )
        self._pending.append(
            _PendingFile(int(size_bytes), int(records), tuple(partition))
        )

    # --- lifecycle -------------------------------------------------------------

    def commit(self) -> Snapshot:
        """Validate and apply the transaction.

        Returns:
            The snapshot produced by this commit.

        Raises:
            CommitConflictError: if validation against concurrent commits
                fails; the transaction is consumed either way.
        """
        self._check_open()
        self._done = True
        return self._table._commit_transaction(self)

    def abort(self) -> None:
        """Discard the transaction without committing."""
        self._done = True

    @property
    def committed_or_aborted(self) -> bool:
        """Whether the transaction has completed (successfully or not)."""
        return self._done

    def _check_open(self) -> None:
        if self._done:
            raise ValidationError("transaction already committed or aborted")

    # --- hooks used by the table during commit ------------------------------------

    def _touched_partitions(self) -> frozenset:
        parts = {f.partition for f in self._pending}
        parts.update(f.partition for f in self._removed)
        parts.update(f.partition for f in self._sources)
        return frozenset(parts)


class AppendTransaction(Transaction):
    """Add new data files; never removes anything."""

    operation = "append"
    conflict_side = "client"


class OverwriteTransaction(Transaction):
    """Replace specific existing files with new ones (copy-on-write update)."""

    operation = "overwrite"
    conflict_side = "client"

    def delete_file(self, data_file: DataFile) -> None:
        """Stage removal of an existing live data file."""
        self._check_open()
        self._removed.append(data_file)


class RowDeltaTransaction(Transaction):
    """Add merge-on-read position-delete files (and optionally new data)."""

    operation = "rowdelta"
    conflict_side = "client"

    def add_deletes(
        self,
        size_bytes: int,
        references: list[DataFile],
        record_count: int | None = None,
    ) -> None:
        """Stage a position-delete file covering rows of ``references``."""
        self._check_open()
        if not references:
            raise ValidationError("a delete file must reference at least one data file")
        partition = references[0].partition
        records = record_count if record_count is not None else max(
            1, size_bytes // DEFAULT_ROW_BYTES
        )
        self._pending.append(
            _PendingFile(
                int(size_bytes),
                int(records),
                partition,
                content=FileContent.POSITION_DELETES,
                references=frozenset(f.file_id for f in references),
            )
        )


class RewriteTransaction(Transaction):
    """Compaction: replace source files with fewer, larger outputs."""

    operation = "replace"
    conflict_side = "cluster"

    def rewrite(self, sources: list[DataFile], output_sizes: list[int]) -> None:
        """Stage one rewrite group.

        Args:
            sources: live data files to replace (all in one partition).
            output_sizes: sizes of the replacement files; their sum should
                equal the sources' total (validated).
        """
        self._check_open()
        if not sources:
            raise ValidationError("rewrite group needs at least one source file")
        partitions = {f.partition for f in sources}
        if len(partitions) != 1:
            raise ValidationError(
                f"rewrite group must stay within one partition, got {sorted(partitions)}"
            )
        total_in = sum(f.size_bytes for f in sources)
        total_out = sum(output_sizes)
        if total_out != total_in:
            raise ValidationError(
                f"rewrite must preserve bytes: in={total_in} out={total_out}"
            )
        partition = next(iter(partitions))
        records = sum(f.record_count for f in sources)
        self._sources.extend(sources)
        remaining_records = records
        for i, size in enumerate(output_sizes):
            if size <= 0:
                raise ValidationError(f"output sizes must be positive, got {size}")
            share = (
                remaining_records
                if i == len(output_sizes) - 1
                else int(records * size / total_in)
            )
            remaining_records -= share
            self._pending.append(_PendingFile(int(size), max(share, 0), partition))


class BaseTable(abc.ABC):
    """A log-structured table: snapshots + optimistic transactions.

    Subclasses supply the metadata-file layout (:meth:`_write_commit_metadata`)
    and default :class:`ConflictSemantics`.

    Args:
        identifier: qualified table name.
        schema: column definitions; partition sources are validated against it.
        spec: partition spec (default unpartitioned).
        fs: backing filesystem; a private one is created if omitted.
        location: storage root; defaults to ``/data/<db>/<table>``.
        properties: free-form table properties.  Recognised keys:
            ``write.target-file-size-bytes`` (default 512 MiB) and
            ``snapshot.retention-s`` (default 0.0 — rewrites may be
            physically cleaned immediately).
        telemetry: metric sink (falls back to the filesystem's).
        clock: simulated clock (falls back to the filesystem's).
    """

    format_name = "base"

    def __init__(
        self,
        identifier: TableIdentifier,
        schema: Schema,
        spec: PartitionSpec | None = None,
        fs: SimulatedFileSystem | None = None,
        location: str | None = None,
        properties: dict[str, object] | None = None,
        telemetry: Telemetry | None = None,
        clock: SimClock | None = None,
        conflict_semantics: ConflictSemantics | None = None,
    ) -> None:
        self.identifier = identifier
        self.schema = schema
        self.spec = spec if spec is not None else PartitionSpec.unpartitioned()
        for part_field in self.spec.fields:
            if not schema.has_field(part_field.source):
                raise ValidationError(
                    f"partition source {part_field.source!r} not in schema"
                )
        self.fs = fs if fs is not None else SimulatedFileSystem()
        self.clock = clock if clock is not None else self.fs.clock
        self.telemetry = telemetry if telemetry is not None else self.fs.telemetry
        self.location = location or f"/data/{identifier.database}/{identifier.name}"
        self.properties: dict[str, object] = dict(properties or {})
        self.conflict_semantics = (
            conflict_semantics
            if conflict_semantics is not None
            else self._default_conflict_semantics()
        )
        self.created_at = self.clock.now
        self.last_modified_at = self.clock.now

        self._version = 0
        self._snapshots: dict[int, Snapshot] = {}
        self._current_id: int | None = None
        self._commit_log: list[_CommitRecord] = []
        self._next_file_id = 1
        self._next_snapshot_id = 1
        self._partition_last_modified: dict[tuple, float] = {}
        #: Observers invoked after every successful commit with
        #: ``(table, operation, added_data, added_deletes, removed_ids)``.
        #: The catalog installs one to publish ``table_commit`` trace events;
        #: aborted/conflicted transactions never reach a hook.
        self.commit_hooks: list = []

    # --- format hooks -----------------------------------------------------------

    @abc.abstractmethod
    def _default_conflict_semantics(self) -> ConflictSemantics:
        """Format-default conflict rules."""

    @abc.abstractmethod
    def _write_commit_metadata(
        self,
        snapshot_id: int,
        version: int,
        added: int,
        removed: int,
        parent: Snapshot | None,
        operation: str,
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Write format-specific metadata files for a commit.

        Returns:
            ``(manifest_paths, exclusive_paths)``: manifests reachable from
            the new snapshot (drives planning cost; may be shared with
            other snapshots), and metadata files owned solely by this
            snapshot (physically deleted when it expires).
        """

    # --- properties -----------------------------------------------------------------

    @property
    def version(self) -> int:
        """Metadata version; increments with every commit."""
        return self._version

    @property
    def target_file_size(self) -> int:
        """Compaction target size for this table (512 MiB default)."""
        return int(
            self.properties.get("write.target-file-size-bytes", DEFAULT_TARGET_FILE_SIZE)
        )

    @property
    def snapshot_retention_s(self) -> float:
        """How long expired snapshots' files are retained before cleanup."""
        return float(self.properties.get("snapshot.retention-s", 0.0))

    def current_snapshot(self) -> Snapshot | None:
        """The latest snapshot, or None for a never-written table."""
        if self._current_id is None:
            return None
        return self._snapshots[self._current_id]

    def snapshot(self, snapshot_id: int) -> Snapshot:
        """Look up a snapshot by id.

        Raises:
            ValidationError: if unknown (possibly already expired).
        """
        snap = self._snapshots.get(snapshot_id)
        if snap is None:
            raise ValidationError(f"unknown snapshot {snapshot_id}")
        return snap

    def snapshots(self) -> list[Snapshot]:
        """All retained snapshots, oldest first."""
        return sorted(self._snapshots.values(), key=lambda s: s.sequence_number)

    def history(self) -> list[tuple[float, int, str]]:
        """``(timestamp, snapshot_id, operation)`` per commit, oldest first."""
        return [(r.timestamp, r.snapshot_id, r.operation) for r in self._commit_log]

    # --- convenience metrics ------------------------------------------------------

    @property
    def data_file_count(self) -> int:
        """Live data files in the current snapshot."""
        snap = self.current_snapshot()
        return snap.data_file_count if snap else 0

    @property
    def delete_file_count(self) -> int:
        """Live MoR delete files in the current snapshot."""
        snap = self.current_snapshot()
        return snap.delete_file_count if snap else 0

    @property
    def total_data_bytes(self) -> int:
        """Bytes across live data files."""
        snap = self.current_snapshot()
        return snap.total_data_bytes if snap else 0

    def live_files(self) -> list[DataFile]:
        """Live data files (empty list for a never-written table)."""
        snap = self.current_snapshot()
        return list(snap.ordered_files) if snap else []

    def partitions(self) -> list[tuple]:
        """Distinct partitions with live files."""
        snap = self.current_snapshot()
        return snap.partitions() if snap else []

    def small_file_count(self, threshold: int = SMALL_FILE_THRESHOLD) -> int:
        """Live data files below ``threshold`` bytes."""
        snap = self.current_snapshot()
        if snap is None:
            return 0
        return sum(1 for f in snap.live_files if f.size_bytes < threshold)

    def partition_last_modified(self, partition: tuple) -> float:
        """Last *user-write* commit time touching ``partition``.

        Falls back to the table creation time for never-written partitions.
        Partition-scope write-activity filters read this — it is what lets
        the hybrid strategy skip hot partitions and avoid the cluster-side
        conflicts table-scope compaction cannot dodge (Table 1).
        """
        return self._partition_last_modified.get(partition, self.created_at)

    # --- transactions ------------------------------------------------------------------

    def new_append(self) -> AppendTransaction:
        """Start an append transaction."""
        return AppendTransaction(self)

    def new_overwrite(self) -> OverwriteTransaction:
        """Start a copy-on-write overwrite transaction."""
        return OverwriteTransaction(self)

    def new_row_delta(self) -> RowDeltaTransaction:
        """Start a merge-on-read row-delta transaction."""
        return RowDeltaTransaction(self)

    def new_rewrite(self) -> RewriteTransaction:
        """Start a rewrite (compaction) transaction."""
        return RewriteTransaction(self)

    # --- scanning ------------------------------------------------------------------------

    def scan(self, partitions: list[tuple] | None = None) -> ScanPlan:
        """Plan a read of the current snapshot.

        Args:
            partitions: restrict to these partition tuples (None = full scan).

        Returns:
            A :class:`ScanPlan`; empty if the table has no snapshot.
        """
        snap = self.current_snapshot()
        if snap is None:
            return ScanPlan(files=(), delete_files=(), manifests_read=0)
        if partitions is None:
            files = snap.ordered_files
        else:
            wanted = set(partitions)
            files = tuple(
                sorted(
                    (f for f in snap.live_files if f.partition in wanted),
                    key=lambda f: f.file_id,
                )
            )
        file_ids = {f.file_id for f in files}
        deletes = tuple(
            sorted(
                (d for d in snap.delete_files if d.references & file_ids),
                key=lambda d: d.file_id,
            )
        )
        return ScanPlan(files=files, delete_files=deletes, manifests_read=len(snap.manifest_paths))

    # --- commit protocol ------------------------------------------------------------------

    def _commit_transaction(self, txn: Transaction) -> Snapshot:
        self._validate(txn)

        parent = self.current_snapshot()
        old_files = parent.live_files if parent else frozenset()
        old_deletes = parent.delete_files if parent else frozenset()

        removed_ids = frozenset(f.file_id for f in txn._removed) | frozenset(
            f.file_id for f in txn._sources
        )
        added_data, added_deletes = self._materialize(txn._pending)

        new_files = frozenset(f for f in old_files if f.file_id not in removed_ids)
        new_files |= frozenset(added_data)

        # Delete files whose referenced data files were all removed are dropped
        # (a rewrite applies MoR deletes); others carry forward.
        live_ids = frozenset(f.file_id for f in new_files)
        surviving_deletes = frozenset(
            d for d in old_deletes if d.references & live_ids
        )
        dropped_deletes = old_deletes - surviving_deletes
        new_deletes = surviving_deletes | frozenset(added_deletes)

        snapshot_id = self._next_snapshot_id
        self._next_snapshot_id += 1
        version = self._version + 1
        manifest_paths, exclusive_paths = self._write_commit_metadata(
            snapshot_id,
            version,
            added=len(added_data) + len(added_deletes),
            removed=len(removed_ids),
            parent=parent,
            operation=txn.operation,
        )
        snapshot = Snapshot(
            snapshot_id=snapshot_id,
            parent_id=parent.snapshot_id if parent else None,
            sequence_number=version,
            timestamp=self.clock.now,
            operation=txn.operation,
            live_files=new_files,
            delete_files=new_deletes,
            manifest_paths=manifest_paths,
            exclusive_metadata_paths=exclusive_paths,
            summary={
                "added-data-files": len(added_data),
                "added-delete-files": len(added_deletes),
                "removed-data-files": len(removed_ids),
                "dropped-delete-files": len(dropped_deletes),
                "total-data-files": len(new_files),
            },
        )
        self._snapshots[snapshot_id] = snapshot
        self._current_id = snapshot_id
        self._version = version
        self._commit_log.append(
            _CommitRecord(
                version=version,
                snapshot_id=snapshot_id,
                operation=txn.operation,
                partitions=txn._touched_partitions(),
                removed_file_ids=removed_ids,
                is_rewrite=txn.operation == "replace",
                timestamp=self.clock.now,
            )
        )
        self.last_modified_at = self.clock.now
        if txn.operation != "replace":
            # Rewrites are maintenance, not user writes: they must not make
            # a partition look "hot" to write-activity filters.
            for partition in txn._touched_partitions():
                self._partition_last_modified[partition] = self.clock.now
        self.telemetry.increment(f"lst.commits.{txn.operation}")
        if self.commit_hooks:
            for hook in list(self.commit_hooks):
                hook(self, txn.operation, added_data, added_deletes, removed_ids)
        return snapshot

    # --- replay support -----------------------------------------------------------

    def restore_state(
        self,
        *,
        version: int,
        next_file_id: int,
        next_snapshot_id: int,
        current_snapshot_id: int | None,
        created_at: float,
        last_modified_at: float,
        files: list[tuple[int, tuple, int]],
        deletes: list[tuple[int, tuple, int, frozenset[int]]] = (),
        partition_mtimes: dict[tuple, float] | None = None,
    ) -> None:
        """Load a checkpointed live-file layout directly, bypassing commits.

        The Policy Lab's catalog traces rotate on *checkpoints* — frozen
        per-table layouts — so a replayer can reconstruct mid-history state
        without the events that produced it.  Restoration recreates every
        live data/delete file on the filesystem (same deterministic paths
        as :meth:`_materialize`) under a single synthetic snapshot and pins
        the version/file-id/snapshot-id counters to the checkpointed
        values, so commits replayed *after* the checkpoint allocate exactly
        the ids the source run allocated.  Snapshot history before the
        checkpoint is not reconstructed (it is unreachable from a trace
        window); only the live layout and the counters matter for replay.

        Raises:
            ValidationError: when called on a table that already has commits.
        """
        if self._version != 0 or self._snapshots:
            raise ValidationError("restore_state requires a freshly created table")
        data_files: list[DataFile] = []
        for file_id, partition, size_bytes in files:
            partition = tuple(partition)
            partition_dir = self.spec.partition_path(partition)
            subdir = f"data/{partition_dir}" if partition_dir else "data"
            path = f"{self.location}/{subdir}/part-{file_id:08d}.parquet"
            self.fs.create_file(path, size_bytes)
            data_files.append(
                DataFile(
                    file_id=int(file_id),
                    path=path,
                    size_bytes=int(size_bytes),
                    record_count=max(1, int(size_bytes) // DEFAULT_ROW_BYTES),
                    partition=partition,
                )
            )
        delete_files: list[DeleteFile] = []
        for file_id, partition, size_bytes, references in deletes:
            partition = tuple(partition)
            partition_dir = self.spec.partition_path(partition)
            subdir = f"data/{partition_dir}" if partition_dir else "data"
            path = f"{self.location}/{subdir}/delete-{file_id:08d}.parquet"
            self.fs.create_file(path, size_bytes)
            delete_files.append(
                DeleteFile(
                    file_id=int(file_id),
                    path=path,
                    size_bytes=int(size_bytes),
                    record_count=max(1, int(size_bytes) // DEFAULT_ROW_BYTES),
                    partition=partition,
                    references=frozenset(int(r) for r in references),
                )
            )
        self._version = int(version)
        self._next_file_id = int(next_file_id)
        self._next_snapshot_id = int(next_snapshot_id)
        self.created_at = float(created_at)
        self.last_modified_at = float(last_modified_at)
        self._partition_last_modified = {
            tuple(partition): float(t) for partition, t in (partition_mtimes or {}).items()
        }
        if current_snapshot_id is not None:
            snapshot = Snapshot(
                snapshot_id=int(current_snapshot_id),
                parent_id=None,
                sequence_number=self._version,
                timestamp=self.last_modified_at,
                operation="checkpoint",
                live_files=frozenset(data_files),
                delete_files=frozenset(delete_files),
                manifest_paths=(),
                exclusive_metadata_paths=(),
                summary={"total-data-files": len(data_files)},
            )
            self._snapshots[snapshot.snapshot_id] = snapshot
            self._current_id = snapshot.snapshot_id

    def _validate(self, txn: Transaction) -> None:
        concurrent = self._commit_log[txn.base_version :]
        if not concurrent:
            return
        sem = self.conflict_semantics
        snap = self.current_snapshot()
        live_ids = frozenset(f.file_id for f in snap.live_files) if snap else frozenset()
        touched = txn._touched_partitions()

        def overlapping(records: list[_CommitRecord]) -> bool:
            return any(r.partitions & touched for r in records)

        if txn.operation == "append":
            if sem.append_fails_on_concurrent_rewrite and any(
                r.is_rewrite for r in concurrent
            ):
                self._count_conflict(txn)
                raise CommitConflictError(
                    "client", "append against metadata invalidated by concurrent rewrite"
                )
            self.telemetry.increment("lst.commit.refreshes")
            return

        if txn.operation in ("overwrite", "delete"):
            missing = [f for f in txn._removed if f.file_id not in live_ids]
            if missing:
                self._count_conflict(txn)
                raise CommitConflictError(
                    "client",
                    f"{len(missing)} file(s) to overwrite were removed concurrently",
                )
            if sem.overwrite_fails_on_same_partition_commit and overlapping(concurrent):
                self._count_conflict(txn)
                raise CommitConflictError(
                    "client", "concurrent commit touched an overwritten partition"
                )
            return

        if txn.operation == "rowdelta":
            if sem.rowdelta_fails_on_reference_removed:
                referenced = frozenset().union(
                    *(p.references for p in txn._pending if p.references)
                ) if txn._pending else frozenset()
                if referenced - live_ids:
                    self._count_conflict(txn)
                    raise CommitConflictError(
                        "client", "data files referenced by deletes were removed"
                    )
            return

        if txn.operation == "replace":
            missing = [f for f in txn._sources if f.file_id not in live_ids]
            if missing:
                self._count_conflict(txn)
                raise CommitConflictError(
                    "cluster",
                    f"{len(missing)} rewrite source file(s) removed by concurrent commit",
                )
            if sem.rewrite_fails_on_concurrent_rewrite_any_partition and any(
                r.is_rewrite for r in concurrent
            ):
                self._count_conflict(txn)
                raise CommitConflictError(
                    "cluster",
                    "concurrent rewrite committed (conflicts even across distinct "
                    "partitions in this format profile)",
                )
            if sem.rewrite_fails_on_same_partition_write and overlapping(
                [r for r in concurrent if not r.is_rewrite]
            ):
                self._count_conflict(txn)
                raise CommitConflictError(
                    "cluster", "concurrent write touched a partition being rewritten"
                )
            return

        raise ValidationError(f"unknown operation {txn.operation!r}")

    def _count_conflict(self, txn: Transaction) -> None:
        self.telemetry.increment(f"lst.conflicts.{txn.conflict_side}")

    def _materialize(
        self, pending: list[_PendingFile]
    ) -> tuple[list[DataFile], list[DeleteFile]]:
        data: list[DataFile] = []
        deletes: list[DeleteFile] = []
        for spec in pending:
            file_id = self._next_file_id
            self._next_file_id += 1
            partition_dir = self.spec.partition_path(spec.partition)
            subdir = f"data/{partition_dir}" if partition_dir else "data"
            if spec.content is FileContent.DATA:
                path = f"{self.location}/{subdir}/part-{file_id:08d}.parquet"
                self.fs.create_file(path, spec.size_bytes)
                data.append(
                    DataFile(
                        file_id=file_id,
                        path=path,
                        size_bytes=spec.size_bytes,
                        record_count=spec.record_count,
                        partition=spec.partition,
                    )
                )
            else:
                path = f"{self.location}/{subdir}/delete-{file_id:08d}.parquet"
                self.fs.create_file(path, spec.size_bytes)
                deletes.append(
                    DeleteFile(
                        file_id=file_id,
                        path=path,
                        size_bytes=spec.size_bytes,
                        record_count=spec.record_count,
                        partition=spec.partition,
                        references=spec.references,
                    )
                )
        return data, deletes

    # --- snapshot expiration -----------------------------------------------------------

    def expire_snapshots(
        self, older_than: float | None = None, retain_last: int = 1
    ) -> int:
        """Drop old snapshots and physically delete unreachable files.

        Args:
            older_than: expire snapshots committed at or before this time;
                defaults to "everything but the retained tail".
            retain_last: always keep at least this many most-recent snapshots
                (minimum 1 — the current snapshot is never expired).

        Returns:
            Number of physical files deleted from storage.
        """
        if retain_last < 1:
            raise ValidationError("retain_last must be >= 1")
        ordered = self.snapshots()
        if not ordered:
            return 0
        cutoff = older_than if older_than is not None else float("inf")
        keep_tail = ordered[-retain_last:]
        retained = [
            s for s in ordered if s in keep_tail or s.timestamp > cutoff
        ]
        retained_ids = {s.snapshot_id for s in retained}
        expired = [s for s in ordered if s.snapshot_id not in retained_ids]
        if not expired:
            return 0

        reachable: set[int] = set()
        for snap in retained:
            for f in snap.live_files:
                reachable.add(f.file_id)
            for d in snap.delete_files:
                reachable.add(d.file_id)
        retained_manifests: set[str] = set()
        for snap in retained:
            retained_manifests.update(snap.manifest_paths)

        deleted = 0
        seen: set[str] = set()

        def remove(path: str) -> None:
            nonlocal deleted
            if path not in seen:
                seen.add(path)
                if self.fs.namenode.exists(path):
                    self.fs.delete_file(path)
                    deleted += 1

        for snap in expired:
            for f in list(snap.live_files) + list(snap.delete_files):
                if f.file_id not in reachable:
                    remove(f.path)
            # Metadata cleanup: exclusively owned files always go; shared
            # manifests go once no retained snapshot references them.
            for path in snap.exclusive_metadata_paths:
                remove(path)
            for path in snap.manifest_paths:
                if path not in retained_manifests:
                    remove(path)
            del self._snapshots[snap.snapshot_id]
        self.telemetry.increment("lst.expired_files", deleted)
        return deleted

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.identifier}, v{self._version}, "
            f"files={self.data_file_count})"
        )
