"""Immutable data and delete files.

LSTs store table contents in immutable columnar files; updates never modify
a file in place.  Two content kinds exist, mirroring Iceberg:

* ``DATA`` files hold rows;
* ``POSITION_DELETES`` files (merge-on-read) mark rows of specific data
  files as deleted and must be merged at read time — the accumulation of
  these is one of the paper's causes of small-file proliferation (§2,
  cause ii).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FileContent(enum.Enum):
    """What a file stores."""

    DATA = "data"
    POSITION_DELETES = "position_deletes"


@dataclass(frozen=True)
class DataFile:
    """One immutable data file registered in a table.

    Attributes:
        file_id: table-scoped unique id (stable across snapshots).
        path: absolute storage path.
        size_bytes: file size.
        record_count: number of rows.
        partition: partition tuple this file belongs to; ``()`` for
            unpartitioned tables.
    """

    file_id: int
    path: str
    size_bytes: int
    record_count: int
    partition: tuple = ()
    content: FileContent = FileContent.DATA

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"file size must be >= 0, got {self.size_bytes}")
        if self.record_count < 0:
            raise ValueError(f"record count must be >= 0, got {self.record_count}")


@dataclass(frozen=True)
class DeleteFile:
    """A merge-on-read position-delete file.

    Attributes:
        file_id: table-scoped unique id.
        path: absolute storage path.
        size_bytes: file size.
        record_count: number of delete records.
        partition: partition the referenced data files live in.
        references: ``file_id``s of the data files whose rows it deletes;
            readers scanning any of those files must also read this file.
    """

    file_id: int
    path: str
    size_bytes: int
    record_count: int
    partition: tuple = ()
    references: frozenset[int] = field(default_factory=frozenset)
    content: FileContent = FileContent.POSITION_DELETES
