"""Delta-Lake-like table format.

Metadata layout per commit, mirroring Delta Lake:

* one JSON commit file ``_delta_log/<version>.json`` per transaction, and
* a checkpoint file every ``checkpoint_interval`` commits that squashes the
  log, so readers replay only the segment since the last checkpoint.

The "manifests read" planning cost is therefore the number of log files
since the last checkpoint (plus the checkpoint itself), which — unlike the
Iceberg profile — is bounded regardless of append count.

Conflict semantics default to :meth:`ConflictSemantics.delta_v2_4`:
file-granularity validation, so concurrent OPTIMIZE jobs on disjoint file
sets commit cleanly.  This is the profile used for the §6.3 auto-tuning
experiments, which ran on Delta Lake v2.4.0.
"""

from __future__ import annotations

from repro.lst.base import BaseTable, ConflictSemantics
from repro.lst.snapshot import Snapshot
from repro.units import KiB

#: Base size of a JSON commit file plus per-action entry cost.
COMMIT_JSON_BASE = 2 * KiB
COMMIT_JSON_PER_ACTION = 200
#: Base size of a checkpoint parquet plus per-live-file entry cost.
CHECKPOINT_BASE = 256 * KiB
CHECKPOINT_PER_FILE = 64
#: Commits between checkpoints (Delta's default).
DEFAULT_CHECKPOINT_INTERVAL = 10


class DeltaTable(BaseTable):
    """Delta-Lake-v2.4.0-like log-structured table."""

    format_name = "delta"

    def _default_conflict_semantics(self) -> ConflictSemantics:
        return ConflictSemantics.delta_v2_4()

    @property
    def checkpoint_interval(self) -> int:
        """Commits between checkpoints (table property
        ``delta.checkpoint-interval``, default 10)."""
        return int(self.properties.get("delta.checkpoint-interval", DEFAULT_CHECKPOINT_INTERVAL))

    def _write_commit_metadata(
        self,
        snapshot_id: int,
        version: int,
        added: int,
        removed: int,
        parent: Snapshot | None,
        operation: str,
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        log_dir = f"{self.location}/_delta_log"
        commit_path = f"{log_dir}/{version:020d}.json"
        self.fs.create_file(
            commit_path, COMMIT_JSON_BASE + COMMIT_JSON_PER_ACTION * (added + removed)
        )

        interval = self.checkpoint_interval
        if version % interval == 0:
            live = len(parent.live_files) + added - removed if parent else added
            checkpoint_path = f"{log_dir}/{version:020d}.checkpoint.parquet"
            self.fs.create_file(
                checkpoint_path, CHECKPOINT_BASE + CHECKPOINT_PER_FILE * max(live, 0)
            )
            # The commit json is superseded by the checkpoint for readers
            # but remains part of the durable log until its snapshot expires.
            return (checkpoint_path,), (commit_path,)

        previous = parent.manifest_paths if parent else ()
        return previous + (commit_path,), ()
