"""Hudi-like table format.

Apache Hudi is the third LST the paper names (§1).  Its metadata lives on a
*timeline* — one commit file per transaction under ``.hoodie/`` — and its
MVCC design is merge-on-read-first: delta files accumulate against base
files and a table service (compaction) folds them in, which is why Hudi
ships built-in automatic compaction (§9 of the paper credits Hudi and
Paimon with integrating write/read-optimised regions natively).

Profile differences captured here:

* metadata: one timeline commit file per transaction; readers replay the
  timeline since the last compaction ("replace") commit, so planning cost
  grows with commits and resets at compaction — like Delta's checkpoints
  but triggered by the table service rather than a fixed interval;
* conflicts: file-group granularity.  Appends never conflict; concurrent
  rewrites of disjoint file groups both commit; only true file overlaps
  abort.
"""

from __future__ import annotations

from repro.lst.base import BaseTable, ConflictSemantics
from repro.lst.snapshot import Snapshot
from repro.units import KiB

#: Base size of a timeline commit file plus per-action entry cost.
COMMIT_FILE_BASE = 1 * KiB
COMMIT_FILE_PER_ACTION = 96


class HudiTable(BaseTable):
    """Apache-Hudi-like log-structured table."""

    format_name = "hudi"

    def _default_conflict_semantics(self) -> ConflictSemantics:
        return ConflictSemantics(
            append_fails_on_concurrent_rewrite=False,
            overwrite_fails_on_same_partition_commit=True,
            rowdelta_fails_on_reference_removed=True,
            rewrite_fails_on_concurrent_rewrite_any_partition=False,
            rewrite_fails_on_same_partition_write=False,
        )

    def _write_commit_metadata(
        self,
        snapshot_id: int,
        version: int,
        added: int,
        removed: int,
        parent: Snapshot | None,
        operation: str,
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        timeline_dir = f"{self.location}/.hoodie"
        suffix = "replacecommit" if operation == "replace" else "commit"
        commit_path = f"{timeline_dir}/{version:012d}.{suffix}"
        self.fs.create_file(
            commit_path, COMMIT_FILE_BASE + COMMIT_FILE_PER_ACTION * (added + removed)
        )
        if operation == "replace":
            # Compaction collapses the readable timeline: readers start
            # from the replace commit.
            return (commit_path,), ()
        previous = parent.manifest_paths if parent else ()
        return previous + (commit_path,), ()
