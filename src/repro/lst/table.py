"""Iceberg-like table format.

Metadata layout per commit, mirroring Apache Iceberg:

* a new ``vN.metadata.json`` table-metadata file,
* a new manifest-list (``snap-*.avro``) enumerating reachable manifests, and
* one new manifest (``manifest-*.avro``) describing the commit's changes.

Manifests *accumulate* across appends — the planning cost of a query grows
with every trickle write — and are compacted back to a single manifest by a
rewrite, reproducing cause (iv) of small-file proliferation in §2 of the
paper (metadata itself becomes many small files).

Conflict semantics default to :meth:`ConflictSemantics.iceberg_v1_2`,
including the §4.4 quirk where concurrent rewrites of distinct partitions
conflict.
"""

from __future__ import annotations

from repro.lst.base import BaseTable, ConflictSemantics
from repro.lst.snapshot import Snapshot
from repro.units import KiB

#: Base size of a table-metadata JSON file.
METADATA_JSON_BASE = 8 * KiB
#: Incremental metadata JSON growth per retained snapshot.
METADATA_JSON_PER_SNAPSHOT = 256
#: Base size of a manifest-list file plus per-manifest entry cost.
MANIFEST_LIST_BASE = 2 * KiB
MANIFEST_LIST_PER_MANIFEST = 64
#: Base size of a manifest file plus per-file entry cost.
MANIFEST_BASE = 4 * KiB
MANIFEST_PER_ENTRY = 160


class IcebergTable(BaseTable):
    """Apache-Iceberg-v1.2.0-like log-structured table."""

    format_name = "iceberg"

    def _default_conflict_semantics(self) -> ConflictSemantics:
        return ConflictSemantics.iceberg_v1_2()

    def _write_commit_metadata(
        self,
        snapshot_id: int,
        version: int,
        added: int,
        removed: int,
        parent: Snapshot | None,
        operation: str,
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        metadata_dir = f"{self.location}/metadata"

        manifest_path = f"{metadata_dir}/manifest-{version:06d}.avro"
        manifest_size = MANIFEST_BASE + MANIFEST_PER_ENTRY * (added + removed)
        self.fs.create_file(manifest_path, manifest_size)

        if operation == "replace":
            # A rewrite rewrites the manifest graph down to one manifest.
            manifest_paths: tuple[str, ...] = (manifest_path,)
        else:
            previous = parent.manifest_paths if parent else ()
            manifest_paths = previous + (manifest_path,)

        manifest_list_path = f"{metadata_dir}/snap-{snapshot_id:06d}.avro"
        self.fs.create_file(
            manifest_list_path,
            MANIFEST_LIST_BASE + MANIFEST_LIST_PER_MANIFEST * len(manifest_paths),
        )

        metadata_json_path = f"{metadata_dir}/v{version:06d}.metadata.json"
        self.fs.create_file(
            metadata_json_path,
            METADATA_JSON_BASE + METADATA_JSON_PER_SNAPSHOT * (len(self._snapshots) + 1),
        )
        return manifest_paths, (manifest_list_path, metadata_json_path)
