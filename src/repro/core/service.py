"""AutoComp as a standalone service, plus the OpenHouse reference wiring.

:func:`openhouse_pipeline` assembles the exact configuration the paper
deploys (§6–§7): MOOP ranking with weights 0.7 (file-count reduction) and
0.3 (compute cost), top-k or budget selection, hybrid or table-scope
candidate generation, recent-table filtering, and partition-serial
scheduling on a dedicated compaction cluster.  Examples and benches build
on it instead of re-wiring components by hand.

:class:`AutoCompService` packages a pipeline with a periodic trigger and a
notification inbox for decoupled optimize-after-write hooks (§5's "pull"
integration shown in Figure 5).
"""

from __future__ import annotations

import threading

from repro.catalog.catalog import Catalog
from repro.core.candidates import CandidateKey
from repro.core.connectors import LstConnector
from repro.core.filters import (
    MinSmallFileCountFilter,
    MinTableAgeFilter,
    QuiescenceFilter,
)
from repro.core.pipeline import AutoCompPipeline, CycleReport
from repro.core.ranking import Objective, WeightedSumPolicy
from repro.core.scheduling import (
    LstExecutionBackend,
    PartitionSerialScheduler,
    Scheduler,
    SequentialScheduler,
)
from repro.core.selection import BudgetSelector, Selector, TopKSelector
from repro.core.traits import (
    ComputeCostTrait,
    FileCountReductionTrait,
    FileEntropyTrait,
    TraitRegistry,
)
from repro.core.triggers import PeriodicTrigger
from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.errors import ValidationError
from repro.simulation.simulator import Simulator
from repro.units import HOUR

#: The paper's §6 MOOP weights: 0.7 benefit (ΔF_c), 0.3 cost (GBHr).
OPENHOUSE_BENEFIT_WEIGHT = 0.7
OPENHOUSE_COST_WEIGHT = 0.3


def openhouse_pipeline(
    catalog: Catalog,
    compaction_cluster: Cluster,
    cost_model: CostModel | None = None,
    generation: str = "table",
    k: int | None = 10,
    budget_gbhr: float | None = None,
    benefit_weight: float = OPENHOUSE_BENEFIT_WEIGHT,
    min_table_age_s: float = HOUR,
    min_small_files: int = 2,
    quiesce_s: float = 0.0,
    scheduler: Scheduler | None = None,
) -> AutoCompPipeline:
    """The paper's OpenHouse AutoComp configuration, ready to run.

    Args:
        catalog: control plane holding the tables.
        compaction_cluster: dedicated cluster for rewrite jobs.
        cost_model: engine cost model (defaults to :class:`CostModel`).
        generation: ``table`` (the production deployment) or ``hybrid``
            (the §6 partition-aware variant).
        k: fixed top-k selection; ignored when ``budget_gbhr`` is given.
        budget_gbhr: dynamic-k budget selection (the §7 week-22 mode).
        benefit_weight: MOOP weight on file-count reduction (cost weight is
            its complement).
        min_table_age_s: recent-table filter window.
        min_small_files: minimum small files for a candidate to qualify.
        quiesce_s: skip candidates written within this window (the §3.3
            write-activity filter; for hybrid generation the window applies
            per *partition*, letting AutoComp dodge hot partitions and the
            conflicts they cause).  0 disables the filter.
        scheduler: override the default partition-serial scheduler.

    Returns:
        A fully wired :class:`AutoCompPipeline`.
    """
    if not 0 < benefit_weight < 1:
        raise ValidationError("benefit_weight must be in (0, 1)")
    if k is None and budget_gbhr is None:
        raise ValidationError("provide k (fixed) or budget_gbhr (dynamic)")
    cost_model = cost_model if cost_model is not None else CostModel()
    connector = LstConnector(catalog)
    backend = LstExecutionBackend(connector, compaction_cluster, cost_model)
    traits = TraitRegistry(
        [
            FileCountReductionTrait(),
            FileEntropyTrait(),
            ComputeCostTrait(
                executor_memory_gb=compaction_cluster.total_memory_gb,
                rewrite_bytes_per_hour=cost_model.rewrite_bytes_per_hour(
                    compaction_cluster.executors
                ),
            ),
        ]
    )
    policy = WeightedSumPolicy(
        [
            Objective("file_count_reduction", benefit_weight, maximize=True),
            Objective("compute_cost_gbhr", 1.0 - benefit_weight, maximize=False),
        ]
    )
    selector: Selector
    if budget_gbhr is not None:
        selector = BudgetSelector(budget_gbhr)
    else:
        selector = TopKSelector(k if k is not None else 10)
    if scheduler is None:
        scheduler = (
            PartitionSerialScheduler() if generation == "hybrid" else SequentialScheduler()
        )
    stats_filters: list = [
        MinTableAgeFilter(min_table_age_s),
        MinSmallFileCountFilter(min_small_files),
    ]
    if quiesce_s > 0:
        stats_filters.append(QuiescenceFilter(quiesce_s))
    return AutoCompPipeline(
        connector=connector,
        backend=backend,
        traits=traits,
        policy=policy,
        selector=selector,
        scheduler=scheduler,
        generation=generation,
        stats_filters=stats_filters,
        telemetry=catalog.telemetry,
    )


def openhouse_sharded_pipeline(
    catalog: Catalog,
    compaction_cluster: Cluster,
    n_shards: int = 4,
    stats_cache: "object | None" = None,
    selection: str = "global",
    workers: str = "threads",
    worker_decide: bool | None = None,
    transport: str | None = None,
    max_workers: int | None = None,
    telemetry=None,
    tracer=None,
    **pipeline_kwargs,
):
    """The OpenHouse configuration behind the scale-out control plane.

    Builds ``n_shards`` :func:`openhouse_pipeline`-shaped shards that
    *share* one :class:`~repro.core.connectors.LstConnector` (and its
    optional stats cache): the sharded control plane partitions the work,
    not the catalog, and a shared connector keeps dense-cache slot
    interning consistent across shards.  The LST connector exports
    picklable :class:`~repro.catalog.snapshot.CatalogObservationSlice`
    shard work, so ``workers="processes"`` / ``"auto"`` run the realistic
    catalog path on true multi-core workers.

    Args:
        catalog: control plane holding the tables.
        compaction_cluster: dedicated cluster for rewrite jobs.
        n_shards: shard count.
        stats_cache: optional shared incremental-observation cache
            (:class:`~repro.core.statscache.StatsCache` or
            :class:`~repro.core.statscache.IndexedCandidateCache`).
        selection / workers / worker_decide / transport / max_workers:
            forwarded to :class:`~repro.core.sharding.ShardedPipeline`
            (``transport=None`` negotiates the columnar shared-memory
            encoding, which the LST connector speaks).
        telemetry: fleet-level metric sink (defaults to the catalog's).
        tracer: optional :class:`~repro.obs.tracing.Tracer` installed on
            the sharded pipeline (and thus every shard), so cycles emit
            stitched ``cycle → shard → observe/decide/act`` spans.
        **pipeline_kwargs: forwarded to :func:`openhouse_pipeline`
            (``k``, ``budget_gbhr``, ``generation``, filters, …).

    Returns:
        A ready :class:`~repro.core.sharding.ShardedPipeline`.
    """
    from repro.core.sharding import ShardedPipeline

    if n_shards <= 0:
        raise ValidationError("n_shards must be positive")
    template = openhouse_pipeline(catalog, compaction_cluster, **pipeline_kwargs)
    connector = template.connector
    connector.stats_cache = stats_cache
    shards = [template]
    for _ in range(n_shards - 1):
        shards.append(
            AutoCompPipeline(
                connector=connector,
                backend=template.backend,
                traits=template.traits,
                policy=template.policy,
                selector=template.selector,
                # Shared on purpose: schedulers hold configuration only
                # (no cross-call state), and the sharded control plane
                # runs shard act phases serially on the coordinator — a
                # fresh default-constructed copy would silently drop any
                # caller-configured scheduling limits.
                scheduler=template.scheduler,
                generation=template.generation,
                stats_filters=template.stats_filters,
                trait_filters=template.trait_filters,
                telemetry=template.telemetry,
            )
        )
    return ShardedPipeline(
        shards,
        selection=selection,
        workers=workers,
        worker_decide=worker_decide,
        transport=transport,
        max_workers=max_workers,
        telemetry=telemetry if telemetry is not None else catalog.telemetry,
        tracer=tracer,
    )


class AutoCompService:
    """Standalone AutoComp service: periodic cycles plus a hook inbox.

    Args:
        pipeline: the configured pipeline — a plain
            :class:`~repro.core.pipeline.AutoCompPipeline` or a
            :class:`~repro.core.sharding.ShardedPipeline` (notifications
            are routed to the owning shard's connector either way).
        interval_s: periodic cycle spacing.
        policy_store: optional
            :class:`~repro.core.promoter.PolicyStore`; when set, every
            cycle first syncs the pipeline to the store's *active* variant
            (see :meth:`use_policy_store`), so the live policy is resolved
            through the policy plane instead of staying frozen at
            construction.

    Attributes:
        reports: accumulated cycle reports.
        notifications: candidate keys pushed by decoupled
            optimize-after-write hooks since the last cycle; exposed so
            deployments can prioritise or short-circuit observation for
            recently written tables.
        cycle_hooks: callables invoked with each finished cycle's report
            (the merged fleet report for sharded pipelines is passed
            as-is, wrapped in its
            :class:`~repro.core.sharding.ShardedCycleReport`).  Unlike the
            pipeline's ``feedback_hooks`` — which fire per shard on a
            sharded plane — these fire exactly once per service cycle,
            which is what the
            :class:`~repro.core.promoter.PolicyPromoter`'s guard window
            needs.
    """

    def __init__(
        self,
        pipeline: AutoCompPipeline,
        interval_s: float = 24 * HOUR,
        policy_store=None,
    ) -> None:
        self.pipeline = pipeline
        self.interval_s = interval_s
        self.reports: list[CycleReport] = []
        self.notifications: list[CandidateKey] = []
        #: Scheduled firings skipped because the previous cycle was still
        #: running (see :meth:`attach`'s overlap guard).
        self.overlap_skips = 0
        self.cycle_hooks: list = []
        self.policy_store = None
        self._applied_policy_version: int | None = None
        self._inbox_lock = threading.Lock()
        self._in_cycle = False
        self._trigger: PeriodicTrigger | None = None
        self._history = None
        self._history_taps = None
        if policy_store is not None:
            self.use_policy_store(policy_store)

    def use_policy_store(self, store) -> "AutoCompService":
        """Resolve the live policy through ``store`` from the next cycle on.

        The read side of the policy-plane seam: at the top of every
        :meth:`run_cycle`, the store's version is compared against the
        last applied one and, when it moved (a promotion or rollback —
        possibly made by another process sharing the store directory),
        the active variant is applied to the pipeline via
        :func:`~repro.core.promoter.apply_variant`.  Returns self.
        """
        self.policy_store = store
        self._applied_policy_version = None
        return self

    def _sync_policy(self) -> None:
        store = self.policy_store
        if store is None:
            return
        version = store.version
        if version is None or version == self._applied_policy_version:
            return
        variant = store.active
        if variant is not None:
            # Imported lazily only to keep import time lean; promoter is a
            # core module (replay types inside it are themselves lazy).
            from repro.core.promoter import apply_variant

            apply_variant(self.pipeline, variant)
        self._applied_policy_version = version

    def notify(self, key: CandidateKey) -> None:
        """Inbox endpoint for decoupled optimize-after-write hooks.

        Thread-safe: connector hooks and daemon worker threads may push
        concurrently with a cycle draining the inbox.
        """
        with self._inbox_lock:
            self.notifications.append(key)

    def run_cycle(self, now: float = 0.0, simulator: Simulator | None = None) -> CycleReport:
        """Run one cycle immediately, draining the notification inbox.

        Each drained write event invalidates the stats cache of the
        connector that owns the key (when one is configured), so the next
        observe phase re-collects statistics exactly for the tables that
        wrote — the incremental observation loop of the scale-out control
        plane.  The inbox is deduplicated first, preserving first-seen
        order: a hot table notifying N times between cycles costs one
        cache invalidation, not N.

        The drain swaps the inbox list out atomically under the same lock
        :meth:`notify` takes, so notifications arriving mid-drain land in
        the fresh inbox (served next cycle) instead of being cleared
        unprocessed or invalidated twice.
        """
        self._sync_policy()
        with self._inbox_lock:
            pending, self.notifications = self.notifications, []
        for key in dict.fromkeys(pending):
            self.pipeline.invalidate(key)
        self._in_cycle = True
        try:
            report = self.pipeline.run_cycle(now=now, simulator=simulator)
        finally:
            self._in_cycle = False
        self.reports.append(report)
        self._publish_cycle(report, now if simulator is None else simulator.now)
        for hook in self.cycle_hooks:
            hook(report)
        return report

    def cycle_in_flight(self) -> bool:
        """Whether a cycle is mid-run or its async act work is unfinished.

        Covers both a re-entrant call while :meth:`run_cycle` is on the
        stack and simulated-mode cycles whose scheduled compaction jobs
        have not all completed yet.
        """
        if self._in_cycle:
            return True
        if not self.reports:
            return False
        last = getattr(self.reports[-1], "report", self.reports[-1])
        return len(last.results) < len(last.selected)

    def attach(self, simulator: Simulator, until: float | None = None) -> "AutoCompService":
        """Arm periodic execution on a simulator; returns self.

        The next firing is anchored to the *completion* of the previous
        cycle — each firing re-arms itself ``interval_s`` after it ran —
        so a long cycle delays the schedule instead of drifting onto a
        fixed grid that stacks overdue firings.  If a firing lands while
        the previous cycle is still in flight (async act work pending),
        it is skipped and counted (``overlap_skips`` and the
        ``autocomp.service.overlap_skips`` telemetry counter) rather than
        overlapping it.
        """

        def fire() -> None:
            if self.cycle_in_flight():
                self.overlap_skips += 1
                telemetry = getattr(self.pipeline, "telemetry", None)
                if telemetry is not None:
                    telemetry.increment("autocomp.service.overlap_skips")
            else:
                self.run_cycle(simulator=simulator)
            # Re-arm from completion (simulator.now has advanced past any
            # time the cycle consumed), not from the original grid.
            next_at = simulator.now + self.interval_s
            if until is None or next_at < until:
                simulator.at(next_at, fire, name="autocomp-service")

        first = simulator.now + self.interval_s
        if until is None or first < until:
            simulator.at(first, fire, name="autocomp-service")
        return self

    # --- self-evaluation (Policy Lab over the service's own history) ------------

    def _catalog(self) -> Catalog:
        connector = getattr(self.pipeline, "connector", None)
        if connector is None:
            shards = getattr(self.pipeline, "shards", None)
            if shards:
                connector = shards[0].connector
        catalog = getattr(connector, "catalog", None)
        if catalog is None:
            raise ValidationError(
                "self-evaluation needs an LST-catalog pipeline "
                "(the connector carries no catalog)"
            )
        return catalog

    def _compaction_cluster(self):
        backend = getattr(self.pipeline, "backend", None)
        if backend is None:
            shards = getattr(self.pipeline, "shards", None)
            if shards:
                backend = shards[0].backend
        return getattr(backend, "cluster", None)

    def enable_history(
        self,
        segment_cycles: int = 8,
        max_segments: int = 8,
        seed: int = 0,
    ):
        """Start ring-buffering this deployment's own history for replay.

        Wires a :class:`~repro.replay.catalog_trace.CatalogHistoryRing`
        onto the pipeline's catalog: every subsequent table commit and
        service cycle is captured into bounded, checkpoint-delimited trace
        segments (oldest evicted beyond ``max_segments``), from which
        :meth:`evaluate_recent` replays candidate policies offline.
        Returns the ring (idempotent — a second call returns the same one).
        """
        if self._history is not None:
            return self._history
        from repro.replay.catalog_trace import CatalogHistoryRing
        from repro.simulation.taps import TapBus

        catalog = self._catalog()
        taps = catalog.taps if catalog.taps is not None else catalog.attach_taps(TapBus())
        self._history_taps = taps
        if getattr(self.pipeline, "taps", None) is None and not hasattr(
            self.pipeline, "shards"
        ):
            # Unsharded pipelines publish their own cycle events; sharded
            # planes leave shard taps unset and the service publishes the
            # merged fleet report instead (see _publish_cycle).
            self.pipeline.taps = taps
        self._history = CatalogHistoryRing(
            catalog,
            taps,
            seed=seed,
            cluster=self._compaction_cluster(),
            segment_cycles=segment_cycles,
            max_segments=max_segments,
        )
        return self._history

    def spill_history(self, path, **writer_kwargs):
        """Seal and persist the history ring to chunked trace segments.

        The daemon calls this on graceful drain so :meth:`evaluate_recent`
        history survives a restart; a later :meth:`restore_history` on a
        fresh service yields identical replay rankings.  No-op (returns
        ``None``) when history was never enabled.
        """
        if self._history is None:
            return None
        return self._history.spill(path, **writer_kwargs)

    def restore_history(self, path, **ring_kwargs):
        """Reload a spilled history ring (enabling history if needed)."""
        ring = self.enable_history(**ring_kwargs)
        ring.load(path)
        return ring

    def _publish_cycle(self, report, now: float) -> None:
        """Publish a cycle marker for the history ring when the pipeline won't."""
        taps = self._history_taps
        if taps is None or not taps.has_subscribers("cycle"):
            return
        if getattr(self.pipeline, "taps", None) is taps:
            return  # the pipeline already published this cycle
        from repro.replay.trace import serialize_cycle_report

        merged = getattr(report, "report", report)  # ShardedCycleReport → fleet report
        # Floor the stamp at the catalog clock so a caller omitting `now`
        # cannot publish a cycle event earlier than already-recorded commits.
        t = max(now, self._history.catalog.clock.now)
        taps.publish("cycle", {"t": t, "report": serialize_cycle_report(merged)})

    def evaluate_recent(
        self,
        variants,
        window: int | None = None,
        rank_by: str = "efficiency",
        workers: int = 1,
        perturb=None,
    ):
        """Rank candidate policies against this deployment's recent history.

        Replays the last ``window`` history segments (None = the whole
        ring) under each :class:`~repro.replay.variants.PolicyVariant`
        offline — the live catalog is never touched — and returns the
        ranked :class:`~repro.replay.whatif.WhatIfReport`.  The §5
        deployment loop this closes: a running service can ask "would a
        different k / weight / cadence have served the last weeks better?"
        and warm-start tuning from the answer
        (:meth:`~repro.replay.whatif.WhatIfReport.to_priors`).

        Args:
            variants: policy points to evaluate (unique names).
            window: most-recent history segments to replay.
            rank_by: report ranking key (``efficiency`` / ``files_reduced``
                / ``gbhr``).
            workers: replays in flight (history traces are in-memory, so
                sweeps run on threads; replay work is CPU-bound Python and
                1 is usually right).
            perturb: optional workload perturbation applied to every
                replay, baseline included.

        Raises:
            ValidationError: when :meth:`enable_history` was never called.
        """
        if self._history is None:
            raise ValidationError(
                "call enable_history() before evaluate_recent() — the service "
                "has no recorded history to replay"
            )
        from repro.replay.whatif import WhatIfRunner

        trace = self._history.trace(window)
        with WhatIfRunner(trace, list(variants), rank_by=rank_by, perturb=perturb) as runner:
            return runner.run(workers=workers)
