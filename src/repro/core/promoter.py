"""The policy plane: one crash-safe seam for "which policy is live", closed-loop.

Before this module, the policy a deployment ran was frozen into pipeline
constructors (:func:`~repro.core.service.openhouse_pipeline` arguments,
:meth:`~repro.replay.variants.PolicyVariant.build_catalog_pipeline`), so
nothing could ever *act* on what the Policy Lab learned — ROADMAP item 3's
gap.  Two pieces close it:

:class:`PolicyStore`
    The durable source of truth: which
    :class:`~repro.replay.variants.PolicyVariant` is **active**, which
    candidates form the **pool**, and the versioned promotion history.
    File-backed under one directory with the same crash-safety discipline
    as the daemon's :class:`~repro.core.daemon.ResumableStateMachine`
    (atomic tmp-write + ``os.replace``) and the same append-only
    ``audit.jsonl`` discipline as :class:`~repro.core.locks.LockManager`
    (one JSON line per event, ``O_APPEND`` writes under ``PIPE_BUF``).
    Promotions and rollbacks are **two-phase**: an intent line is appended
    *before* the active-policy file flips, a commit line after — so a
    ``kill -9`` anywhere leaves evidence that :meth:`PolicyStore._recover`
    resolves deterministically on the next open, and
    :func:`verify_promotions` can replay the log and prove the final state
    after the fact (the promotion analogue of
    :func:`~repro.core.locks.verify_audit`).

:class:`PolicyPromoter`
    The control loop: on a daemon-scheduled cadence it shadow-evaluates
    the candidate pool against the deployment's own
    :class:`~repro.replay.catalog_trace.CatalogHistoryRing` (via
    :meth:`~repro.core.service.AutoCompService.evaluate_recent`), promotes
    a statistically-clear winner, then watches the next N **live** cycles
    against the CI regression-gate metrics
    (:func:`~repro.analysis.metrics.reduction_efficiency`,
    :func:`~repro.analysis.metrics.write_amplification`, GBHr) and
    auto-rolls back on degradation.  While the guard window is open the
    promoter never promotes again — no churn.  Outcomes feed forward:
    :attr:`PolicyPromoter.warm_start` carries the winner's knobs for
    :meth:`~repro.core.autotune.Optimizer.optimize` and realised/shadow
    efficiencies stream into
    :meth:`~repro.core.weight_learning.WeightLearner.absorb_priors`.

Live pipelines pick the active policy up through
:func:`apply_variant` — :meth:`~repro.core.service.AutoCompService.run_cycle`
calls it (via ``_sync_policy``) whenever the store's version moved, for
plain and sharded pipelines alike.

Layering note: :mod:`repro.replay` sits *above* :mod:`repro.core`, so
everything replay-shaped (:class:`~repro.replay.variants.PolicyVariant`
deserialisation, what-if reports) is imported lazily, mirroring
``service.py`` and ``pipeline.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.metrics import reduction_efficiency, write_amplification
from repro.core.filters import MinSmallFileCountFilter, QuiescenceFilter
from repro.errors import ValidationError
from repro.units import DAY

#: Active-policy lifecycle states.
#: ``STABLE`` — the active variant is trusted; promotions may proceed.
#: ``GUARD``  — a freshly promoted variant is on probation; the promoter
#: holds all further promotions until the guard window confirms or rolls
#: back.
PROMOTION_STATES = ("STABLE", "GUARD")

#: File names inside a policy-store directory.
ACTIVE_FILE = "active.json"
POOL_FILE = "pool.json"
PROMOTION_AUDIT_LOG = "audit.jsonl"

#: Audit events that commit a version bump.
_COMMIT_EVENTS = ("promote", "rollback")


def _variant_to_dict(variant) -> dict:
    return variant.to_dict()


def _variant_from_dict(data: dict):
    # Imported lazily: repro.replay sits above repro.core in the layering.
    from repro.replay.variants import PolicyVariant

    return PolicyVariant.from_dict(data)


class PolicyStore:
    """Durable active policy + candidate pool + versioned promotion history.

    One directory holds three files:

    * ``active.json`` — the current active variant, its version, lifecycle
      state (``STABLE``/``GUARD``), the pre-promotion variant kept for
      rollback, and the guard window's metadata (length + pre-promotion
      metric baseline).  Written atomically (tmp + ``os.replace``), so a
      reader sees the old or the new policy, never a torn one.
    * ``pool.json`` — the candidate variants the promoter shadow-evaluates.
    * ``audit.jsonl`` — append-only promotion history: ``init``,
      ``pool_update``, ``shadow``, ``promote_intent``/``promote``,
      ``rollback_intent``/``rollback``, ``*_abort``, ``guard_pass``.

    Crash-safety contract (the **two-phase transition** discipline):
    version-bumping transitions append an intent line, then replace
    ``active.json``, then append the commit line.  :meth:`_recover` (run
    on every open) resolves a dangling intent by looking at which side of
    the flip ``active.json`` is on — completing the commit line when the
    flip happened, appending an abort otherwise — so a ``kill -9``
    anywhere in the window converges to a consistent active policy, and
    :func:`verify_promotions` replaying the log always agrees with
    ``active.json``.

    Args:
        store_dir: durable home of the three files (created if missing).
        clock: timestamp source for audit/state stamps.

    Attributes:
        promote_hook: optional callable invoked with ``(op, variant_name)``
            *between* the intent line and the active-file flip — test
            instrumentation for widening the crash window (the analogue of
            :meth:`~repro.core.daemon.AutoCompDaemon.backfill`'s
            ``unit_hook``).
        recovered_action: what :meth:`_recover` did on open (None = the
            log was clean).
    """

    def __init__(self, store_dir: str | os.PathLike, clock=time.time) -> None:
        self.store_dir = os.fspath(store_dir)
        os.makedirs(self.store_dir, exist_ok=True)
        self._clock = clock
        self.promote_hook = None
        self._mutex = threading.RLock()
        self._active: dict | None = self._read_json(self._active_path)
        self.recovered_action: str | None = self._recover()

    # --- paths / file helpers ---------------------------------------------------

    @property
    def _active_path(self) -> str:
        return os.path.join(self.store_dir, ACTIVE_FILE)

    @property
    def _pool_path(self) -> str:
        return os.path.join(self.store_dir, POOL_FILE)

    @property
    def audit_path(self) -> str:
        """Path of the append-only promotion audit log."""
        return os.path.join(self.store_dir, PROMOTION_AUDIT_LOG)

    @staticmethod
    def _read_json(path: str) -> dict | None:
        try:
            with open(path, encoding="utf-8") as stream:
                return json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None  # torn sibling write: recovery resolves via the audit log

    @staticmethod
    def _write_json(path: str, payload: dict) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True)
        os.replace(tmp, path)  # atomic: readers see old or new, never torn

    def _audit(self, event: str, **payload: object) -> None:
        record = {"event": event, "pid": os.getpid(), "ts": self._clock(), **payload}
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        # Same discipline as LockManager._audit: one O_APPEND write per
        # line, atomic on POSIX under PIPE_BUF, safe across processes.
        fd = os.open(self.audit_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    # --- recovery ---------------------------------------------------------------

    def _recover(self) -> str | None:
        """Resolve a crash mid-transition; returns what was done (or None).

        Two dangling shapes exist: an intent with no commit/abort (killed
        inside a promote/rollback), and a ``guard_pass`` line whose
        ``active.json`` still says ``GUARD`` (killed between the audit
        line and the state flip — guard passes log first, flip second).
        """
        with self._mutex:
            events = read_promotions(self.store_dir)
            action = None
            # Dangling intent?
            pending = None
            for event in events:
                name = event.get("event", "")
                if name.endswith("_intent"):
                    pending = event
                elif name in _COMMIT_EVENTS or name.endswith("_abort"):
                    pending = None
            if pending is not None:
                op = pending["event"][: -len("_intent")]
                to_version = pending.get("to_version")
                active = self._active
                if active is not None and active.get("version") == to_version:
                    # The flip happened; only the commit line is missing.
                    self._audit(
                        op,
                        version=to_version,
                        variant=active.get("variant", {}).get("name"),
                        recovered=True,
                    )
                    action = f"completed {op} v{to_version}"
                else:
                    self._audit(f"{op}_abort", to_version=to_version, recovered=True)
                    action = f"aborted {op} v{to_version}"
            # Guard pass logged but state flip lost?
            state = replay_promotions(self.store_dir)
            active = self._active
            if (
                active is not None
                and active.get("state") == "GUARD"
                and state.final_state == "STABLE"
                and state.final_version == active.get("version")
            ):
                record = dict(active)
                record["state"] = "STABLE"
                record["previous"] = None
                record["guard"] = None
                record["updated_at"] = self._clock()
                self._write_json(self._active_path, record)
                self._active = record
                action = f"completed guard_pass v{record['version']}"
            return action

    # --- read side --------------------------------------------------------------

    @property
    def version(self) -> int | None:
        """Monotonic active-policy version (None before :meth:`initialize`)."""
        with self._mutex:
            return None if self._active is None else int(self._active["version"])

    @property
    def state(self) -> str | None:
        """``STABLE`` / ``GUARD`` (None before :meth:`initialize`)."""
        with self._mutex:
            return None if self._active is None else str(self._active["state"])

    @property
    def active(self):
        """The active :class:`~repro.replay.variants.PolicyVariant` (or None)."""
        with self._mutex:
            if self._active is None:
                return None
            return _variant_from_dict(self._active["variant"])

    @property
    def previous(self):
        """The pre-promotion variant held for rollback (GUARD state only)."""
        with self._mutex:
            if self._active is None or not self._active.get("previous"):
                return None
            return _variant_from_dict(self._active["previous"])

    @property
    def guard(self) -> dict | None:
        """Guard-window metadata set at promotion (cycles, metric baseline)."""
        with self._mutex:
            if self._active is None:
                return None
            return self._active.get("guard")

    def snapshot(self) -> dict:
        """A JSON-safe view for ``status.json`` (no variant objects)."""
        with self._mutex:
            if self._active is None:
                return {"version": None, "state": None, "active": None}
            return {
                "version": self._active["version"],
                "state": self._active["state"],
                "active": self._active["variant"].get("name"),
                "previous": (self._active.get("previous") or {}).get("name"),
                "guard": self._active.get("guard"),
                "pool": [v.name for v in self.pool()],
            }

    def pool(self) -> list:
        """The candidate-pool variants (possibly empty)."""
        data = self._read_json(self._pool_path)
        if not data:
            return []
        return [_variant_from_dict(entry) for entry in data.get("variants", [])]

    # --- write side -------------------------------------------------------------

    def initialize(self, variant, pool=()) -> bool:
        """Install ``variant`` as active v1 (idempotent; audits ``init``).

        Returns True when the store was empty and is now initialised;
        False when an active policy already existed (nothing changes —
        restarts must not clobber a promoted policy with the boot default).
        A non-empty ``pool`` is installed only on first initialisation.
        """
        with self._mutex:
            if self._active is not None:
                return False
            record = {
                "version": 1,
                "state": "STABLE",
                "variant": _variant_to_dict(variant),
                "previous": None,
                "guard": None,
                "updated_at": self._clock(),
            }
            self._write_json(self._active_path, record)
            self._active = record
            self._audit("init", version=1, variant=variant.name)
            if pool:
                self.set_pool(pool)
            return True

    def set_pool(self, variants) -> None:
        """Replace the candidate pool (names must be unique)."""
        variants = list(variants)
        names = [v.name for v in variants]
        if len(names) != len(set(names)):
            raise ValidationError(f"pool variant names must be unique, got {names}")
        with self._mutex:
            self._write_json(
                self._pool_path, {"variants": [_variant_to_dict(v) for v in variants]}
            )
            self._audit("pool_update", variants=names)

    def record_shadow(self, summary: dict) -> None:
        """Append one shadow-evaluation outcome to the audit log."""
        self._audit("shadow", **summary)

    def _two_phase(self, op: str, new_record: dict) -> int:
        """Intent → flip → commit; the crash-safe version-bump core."""
        to_version = new_record["version"]
        self._audit(
            f"{op}_intent",
            to_version=to_version,
            variant=new_record["variant"]["name"],
            from_variant=(self._active or {}).get("variant", {}).get("name"),
        )
        hook = self.promote_hook
        if hook is not None:
            hook(op, new_record["variant"]["name"])
        self._write_json(self._active_path, new_record)
        self._active = new_record
        self._audit(op, version=to_version, variant=new_record["variant"]["name"])
        return to_version

    def promote(self, variant, guard: dict | None = None) -> int:
        """Make ``variant`` active under a guard window; returns the new version.

        Only legal from ``STABLE`` — a store in ``GUARD`` is still judging
        the last promotion, and stacking another would lose the rollback
        target.  The outgoing variant is retained as ``previous`` so
        :meth:`rollback` can restore it without consulting anything else.
        """
        with self._mutex:
            if self._active is None:
                raise ValidationError("initialize() the store before promote()")
            if self._active["state"] != "STABLE":
                raise ValidationError(
                    "cannot promote while a guard window is open (state GUARD)"
                )
            record = {
                "version": self._active["version"] + 1,
                "state": "GUARD",
                "variant": _variant_to_dict(variant),
                "previous": self._active["variant"],
                "guard": guard or {},
                "updated_at": self._clock(),
            }
            return self._two_phase("promote", record)

    def rollback(self, reason: str = "", metrics: dict | None = None) -> int:
        """Restore the pre-promotion variant; returns the new version.

        Only legal from ``GUARD``.  Audited as its own two-phase
        transition (``rollback_intent`` / ``rollback``) carrying the
        degradation evidence.
        """
        with self._mutex:
            if self._active is None or self._active["state"] != "GUARD":
                raise ValidationError("rollback() is only legal from GUARD state")
            previous = self._active.get("previous")
            if not previous:
                raise ValidationError("GUARD state has no previous variant to restore")
            record = {
                "version": self._active["version"] + 1,
                "state": "STABLE",
                "variant": previous,
                "previous": None,
                "guard": None,
                "updated_at": self._clock(),
            }
            self._audit("rollback_evidence", reason=reason, metrics=metrics or {})
            return self._two_phase("rollback", record)

    def confirm(self, metrics: dict | None = None) -> None:
        """Close the guard window: the promoted variant survives (``guard_pass``).

        The audit line lands *before* the state flip; :meth:`_recover`
        completes the flip if a crash separates the two, so the log and
        ``active.json`` always converge.
        """
        with self._mutex:
            if self._active is None or self._active["state"] != "GUARD":
                raise ValidationError("confirm() is only legal from GUARD state")
            self._audit(
                "guard_pass",
                version=self._active["version"],
                variant=self._active["variant"]["name"],
                metrics=metrics or {},
            )
            record = dict(self._active)
            record["state"] = "STABLE"
            record["previous"] = None
            record["guard"] = None
            record["updated_at"] = self._clock()
            self._write_json(self._active_path, record)
            self._active = record


# --- audit replay / verification ------------------------------------------------


@dataclass
class PromotionSummary:
    """Outcome of :func:`replay_promotions` / :func:`verify_promotions`."""

    events: int = 0
    promotions: int = 0
    rollbacks: int = 0
    guard_passes: int = 0
    shadows: int = 0
    aborts: int = 0
    final_version: int | None = None
    final_state: str | None = None
    final_variant: str | None = None
    #: Human-readable invariant violations (empty = clean history).
    violations: list = field(default_factory=list)


def read_promotions(store_dir: str | os.PathLike) -> list[dict]:
    """Parse a store's promotion audit log (missing log = empty)."""
    path = os.path.join(os.fspath(store_dir), PROMOTION_AUDIT_LOG)
    records: list[dict] = []
    try:
        with open(path, encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        return []
    return records


def replay_promotions(store_dir: str | os.PathLike) -> PromotionSummary:
    """Replay the audit log into the promotion state machine.

    Checks the structural invariants as it goes: versions bump by exactly
    one per commit, promotes only leave ``STABLE``, rollbacks and guard
    passes only leave ``GUARD``, every commit has a matching intent, and
    no intent is left dangling (recovery resolves those on store open).
    """
    summary = PromotionSummary()
    version: int | None = None
    state: str | None = None
    variant: str | None = None
    pending: dict | None = None
    for event in read_promotions(store_dir):
        summary.events += 1
        name = event.get("event", "")
        if name == "init":
            version = int(event.get("version", 1))
            state = "STABLE"
            variant = event.get("variant")
        elif name.endswith("_intent"):
            if pending is not None:
                summary.violations.append(
                    f"overlapping intents: {pending['event']} then {name}"
                )
            pending = event
        elif name.endswith("_abort"):
            summary.aborts += 1
            pending = None
        elif name in _COMMIT_EVENTS:
            to_version = event.get("version")
            if pending is None or pending.get("to_version") != to_version:
                summary.violations.append(
                    f"{name} v{to_version} has no matching intent"
                )
            pending = None
            if version is not None and to_version != version + 1:
                summary.violations.append(
                    f"{name} v{to_version} does not follow v{version}"
                )
            expected_from = "STABLE" if name == "promote" else "GUARD"
            if state is not None and state != expected_from:
                summary.violations.append(
                    f"{name} v{to_version} from state {state} (expected {expected_from})"
                )
            version = to_version
            variant = event.get("variant")
            if name == "promote":
                summary.promotions += 1
                state = "GUARD"
            else:
                summary.rollbacks += 1
                state = "STABLE"
        elif name == "guard_pass":
            summary.guard_passes += 1
            if state != "GUARD":
                summary.violations.append(
                    f"guard_pass v{event.get('version')} from state {state}"
                )
            state = "STABLE"
        elif name == "shadow":
            summary.shadows += 1
        # init/pool_update/rollback_evidence carry no state transition.
    if pending is not None:
        summary.violations.append(
            f"unresolved {pending['event']} to v{pending.get('to_version')} "
            "(store was never re-opened to recover)"
        )
    summary.final_version = version
    summary.final_state = state
    summary.final_variant = variant
    return summary


def verify_promotions(store_dir: str | os.PathLike) -> PromotionSummary:
    """Replay the audit log *and* check it agrees with ``active.json``.

    The promotion analogue of :func:`~repro.core.locks.verify_audit`: the
    daemon soak and crash-recovery suites gate on an empty
    ``violations`` list.
    """
    summary = replay_promotions(store_dir)
    active = PolicyStore._read_json(
        os.path.join(os.fspath(store_dir), ACTIVE_FILE)
    )
    if active is None:
        if summary.final_version is not None:
            summary.violations.append(
                "audit log has history but active.json is missing"
            )
        return summary
    if active.get("version") != summary.final_version:
        summary.violations.append(
            f"active.json v{active.get('version')} != replayed v{summary.final_version}"
        )
    if active.get("state") != summary.final_state:
        summary.violations.append(
            f"active.json state {active.get('state')} != replayed {summary.final_state}"
        )
    name = active.get("variant", {}).get("name")
    if name != summary.final_variant:
        summary.violations.append(
            f"active.json variant {name!r} != replayed {summary.final_variant!r}"
        )
    return summary


# --- applying a variant to live pipelines ----------------------------------------


def _apply_to_pipeline(pipeline, variant) -> None:
    pipeline.policy = variant.build_policy()
    pipeline.selector = variant.build_selector()
    pipeline.scheduler = variant.build_scheduler()
    pipeline.generation = variant.generation
    # Replace only the policy-owned filters; deployment-owned ones (e.g.
    # the recent-table age window) stay where the operator put them.
    filters = [
        f
        for f in pipeline.stats_filters
        if not isinstance(f, (MinSmallFileCountFilter, QuiescenceFilter))
    ]
    filters.append(MinSmallFileCountFilter(variant.min_small_files))
    if variant.quiesce_days > 0:
        filters.append(QuiescenceFilter(variant.quiesce_days * DAY))
    pipeline.stats_filters = filters


def apply_variant(pipeline, variant):
    """Reconfigure a live pipeline (plain or sharded) to run ``variant``.

    The write side of the :class:`PolicyStore` seam: policy, selector,
    scheduler, generation strategy and the policy-owned statistics filters
    (min-small-files, quiescence) are swapped in place — connectors,
    backends, caches, act gates, taps and feedback hooks are untouched, so
    a promotion never drops daemon gates or recorded history.  On a
    :class:`~repro.core.sharding.ShardedPipeline` every shard is updated
    and the coordinator's fleet-level decide state (including local-mode
    split selectors) is rebuilt to match.

    Returns the pipeline, reconfigured.
    """
    shards = getattr(pipeline, "shards", None)
    if shards:
        for shard in shards:
            _apply_to_pipeline(shard, variant)
        pipeline.policy = shards[0].policy
        pipeline.selector = shards[0].selector
        pipeline.generation = shards[0].generation
        if getattr(pipeline, "_local_selectors", None) is not None:
            from repro.core.sharding import split_selector

            pipeline._local_selectors = split_selector(
                pipeline.selector, len(shards)
            )
    else:
        _apply_to_pipeline(pipeline, variant)
    return pipeline


# --- the control loop ------------------------------------------------------------


class PolicyPromoter:
    """Shadow-evaluate, promote behind a guardrail, roll back on degradation.

    Lifecycle (see the README's "Self-driving policy" section for the
    operator view)::

                    shadow eval (step)            N live cycles
        STABLE ────────────────────────▶ GUARD ────────────────▶ STABLE
           ▲        clear winner?                 degraded?        │
           │              no → hold                  yes           │
           └──────────────────────────── rollback ◀────────────────┘

    :meth:`step` is the scheduled entry point (the daemon drives it on its
    own cadence): while ``STABLE`` it replays the candidate pool over the
    service's history ring and promotes only a *clear* winner — one that
    beats the active variant's own shadow score by ``promote_margin``.  No
    clear winner means a ``hold``: the active policy is never churned on
    noise.  While ``GUARD`` it promotes nothing; instead
    :meth:`observe_cycle` (registered on the service's ``cycle_hooks``)
    accumulates live-cycle metrics until ``guard_cycles`` of them exist,
    then compares their means against the pre-promotion baseline captured
    at promotion time: efficiency may not drop, write amplification and
    GBHr may not rise, each beyond ``guard_tolerance`` — one degraded
    metric triggers :meth:`PolicyStore.rollback`, otherwise
    :meth:`PolicyStore.confirm` closes the window.

    Feedback: every shadow report refreshes :attr:`warm_start` (for
    :meth:`~repro.core.autotune.Optimizer.optimize`) and streams its
    ranked efficiencies into the optional ``learner``
    (:meth:`~repro.core.weight_learning.WeightLearner.absorb_priors`);
    a guard pass additionally feeds the *realised* guarded efficiency.

    Args:
        store: the policy plane's durable state (shared with the service).
        window: history-ring segments to replay per shadow eval (None =
            the whole ring).
        rank_by: shadow-report ranking key (``efficiency`` /
            ``files_reduced`` / ``gbhr``).
        guard_cycles: live cycles watched after a promotion.
        promote_margin: fractional lead over the active variant's shadow
            score a challenger needs (0.05 = 5% better).
        guard_tolerance: fractional degradation the guard window allows
            before rolling back.
        min_history_cycles: recorded cycle markers required before any
            shadow evaluation (too-short history ranks on noise).
        eval_workers: replays in flight per shadow evaluation.
        perturb: optional :class:`~repro.replay.perturb.Perturbation`
            applied to every shadow replay — e.g. per-database growth
            skews, so promotion decisions anticipate tenant growth.
        learner: optional :class:`~repro.core.weight_learning.WeightLearner`
            absorbing shadow/guard efficiencies as priors.
        tracer: optional :class:`~repro.obs.tracing.Tracer` for
            ``promoter.step`` spans (falls back to the pipeline's).
    """

    def __init__(
        self,
        store: PolicyStore,
        window: int | None = None,
        rank_by: str = "efficiency",
        guard_cycles: int = 3,
        promote_margin: float = 0.05,
        guard_tolerance: float = 0.25,
        min_history_cycles: int = 2,
        eval_workers: int = 1,
        perturb=None,
        learner=None,
        tracer=None,
    ) -> None:
        if guard_cycles <= 0:
            raise ValidationError("guard_cycles must be positive")
        if promote_margin < 0:
            raise ValidationError("promote_margin must be >= 0")
        if guard_tolerance <= 0:
            raise ValidationError("guard_tolerance must be positive")
        if min_history_cycles < 1:
            raise ValidationError("min_history_cycles must be >= 1")
        if eval_workers <= 0:
            raise ValidationError("eval_workers must be positive")
        self.store = store
        self.window = window
        self.rank_by = rank_by
        self.guard_cycles = guard_cycles
        self.promote_margin = promote_margin
        self.guard_tolerance = guard_tolerance
        self.min_history_cycles = min_history_cycles
        self.eval_workers = eval_workers
        self.perturb = perturb
        self.learner = learner
        self.tracer = tracer
        self.service = None
        #: The latest shadow report's winner knobs — feed to
        #: :meth:`~repro.core.autotune.Optimizer.optimize` as ``warm_start``.
        self.warm_start: dict = {}
        self.shadow_evals = 0
        self.promotions = 0
        self.rollbacks = 0
        self.guard_passes = 0
        self.holds = 0
        self.step_errors = 0
        self.last_decision: dict | None = None
        self._live: deque = deque(maxlen=max(guard_cycles, 8))
        self._guard_window: list[dict] = []
        self._ingest_lock = threading.Lock()
        self._ingested_bytes = 0

    # --- wiring -----------------------------------------------------------------

    def attach(self, service) -> "PolicyPromoter":
        """Wire the promoter into a service (idempotent for the same one).

        Enables the service's history ring, points the service at this
        promoter's :class:`PolicyStore` (so the next cycle resolves the
        live policy through it), subscribes to ``table_commit`` taps for
        ingest accounting, and registers :meth:`observe_cycle` on the
        service's ``cycle_hooks``.  The store itself is *not* seeded here:
        call :meth:`PolicyStore.initialize` once with the deployment's
        boot variant and pool — it is idempotent, so a restart never
        clobbers a promoted policy, and an uninitialised store simply
        leaves cycles on the pipeline's constructed policy until then
        (:meth:`step` refuses to run on one).
        """
        if self.service is service:
            return self
        if self.service is not None:
            raise ValidationError("promoter is already attached to a service")
        self.service = service
        service.use_policy_store(self.store)
        service.enable_history()
        taps = service._history_taps
        if taps is not None:
            taps.subscribe("table_commit", self._on_commit)
        if self.observe_cycle not in service.cycle_hooks:
            service.cycle_hooks.append(self.observe_cycle)
        if self.tracer is None:
            self.tracer = getattr(service.pipeline, "tracer", None)
        return self

    def _telemetry(self):
        service = self.service
        return getattr(service.pipeline, "telemetry", None) if service else None

    def _count(self, name: str, series_version: bool = True) -> None:
        telemetry = self._telemetry()
        if telemetry is None:
            return
        telemetry.increment(f"autocomp.promoter.{name}")
        if series_version and self.store.version is not None:
            telemetry.record(
                "autocomp.promoter.active_version", time.time(), self.store.version
            )

    def _on_commit(self, kind: str, event: dict) -> None:
        if event.get("op") == "replace":
            return  # compaction output, not workload ingest
        added = event.get("added") or ()
        total = sum(size for _partition, size in added)
        with self._ingest_lock:
            self._ingested_bytes += total

    def _drain_ingested(self) -> int:
        with self._ingest_lock:
            total, self._ingested_bytes = self._ingested_bytes, 0
        return total

    # --- live-cycle observation (the guard window) ------------------------------

    def observe_cycle(self, report) -> None:
        """Service cycle hook: fold one live cycle into the guard metrics.

        Idle cycles (no candidates generated, no results) are skipped —
        they carry no evidence either way.  When a guard window is open
        and ``guard_cycles`` observations have accumulated, the window is
        judged immediately (confirm or rollback), so guard outcomes land
        on cycle cadence rather than waiting for the next promoter tick.
        """
        merged = getattr(report, "report", report)
        ingested = self._drain_ingested()
        if merged.candidates_generated == 0 and not merged.results:
            return
        reduced = merged.total_files_reduced
        gbhr = merged.total_gbhr
        rewritten = sum(r.rewritten_bytes for r in merged.results)
        metrics = {
            "files_reduced": int(reduced),
            "gbhr": float(gbhr),
            "efficiency": reduction_efficiency(max(0, reduced), gbhr)
            if gbhr > 0
            else 0.0,
            "write_amplification": write_amplification(rewritten, ingested),
        }
        self._live.append(metrics)
        if self.store.state == "GUARD":
            self._guard_window.append(metrics)
            guard = self.store.guard or {}
            needed = int(guard.get("cycles", self.guard_cycles))
            if len(self._guard_window) >= needed:
                self._finish_guard()

    @staticmethod
    def _means(window: list[dict]) -> dict:
        keys = ("efficiency", "write_amplification", "gbhr", "files_reduced")
        n = max(len(window), 1)
        return {key: sum(m[key] for m in window) / n for key in keys}

    def _finish_guard(self) -> None:
        guard = self.store.guard or {}
        baseline = guard.get("baseline")
        means = self._means(self._guard_window)
        self._guard_window = []
        degraded: list[str] = []
        if baseline:
            tol = self.guard_tolerance
            base_eff = baseline.get("efficiency", 0.0)
            if base_eff > 0 and means["efficiency"] < base_eff * (1 - tol):
                degraded.append(
                    f"efficiency {means['efficiency']:.4g} < "
                    f"{base_eff:.4g} - {tol:.0%}"
                )
            base_wamp = baseline.get("write_amplification", 0.0)
            if base_wamp > 0 and means["write_amplification"] > base_wamp * (1 + tol):
                degraded.append(
                    f"write_amplification {means['write_amplification']:.4g} > "
                    f"{base_wamp:.4g} + {tol:.0%}"
                )
            base_gbhr = baseline.get("gbhr", 0.0)
            if base_gbhr > 0 and means["gbhr"] > base_gbhr * (1 + tol):
                degraded.append(
                    f"gbhr {means['gbhr']:.4g} > {base_gbhr:.4g} + {tol:.0%}"
                )
        if degraded:
            self.store.rollback(reason="; ".join(degraded), metrics=means)
            self.rollbacks += 1
            self._count("rollbacks")
            self.last_decision = {
                "action": "rollback",
                "version": self.store.version,
                "degraded": degraded,
                "metrics": means,
            }
        else:
            self.store.confirm(metrics=means)
            self.guard_passes += 1
            self._count("guard_passes")
            if self.learner is not None and means["efficiency"] > 0:
                self.learner.absorb_priors([means["efficiency"]])
            self.last_decision = {
                "action": "guard_pass",
                "version": self.store.version,
                "metrics": means,
            }

    # --- the scheduled step -----------------------------------------------------

    def _history_cycles(self) -> int:
        trace = self.service._history.trace(self.window)
        return sum(1 for event in trace.events if event["kind"] == "cycle")

    def _clear_winner(self, best, active_score) -> bool:
        margin = self.promote_margin
        if self.rank_by == "gbhr":
            # Lower is better; a zero-cost incumbent cannot be beaten.
            return active_score.gbhr > 0 and best.gbhr < active_score.gbhr * (1 - margin)
        attribute = "files_reduced" if self.rank_by == "files_reduced" else "efficiency"
        best_value = getattr(best, attribute)
        active_value = getattr(active_score, attribute)
        if active_value <= 0:
            return best_value > 0
        return best_value > active_value * (1 + margin)

    def _hold(self, reason: str, **extra) -> dict:
        self.holds += 1
        self._count("holds")
        decision = {"action": "hold", "reason": reason, **extra}
        self.last_decision = decision
        return decision

    def step(self, now: float | None = None) -> dict:
        """One promoter tick: shadow-evaluate and maybe promote.

        Returns a JSON-safe decision dict (``action`` is ``promote`` /
        ``hold`` / ``guard_wait``), also kept as :attr:`last_decision`
        for :meth:`status`.

        Raises:
            ValidationError: when not :meth:`attach`-ed, or the store was
                never initialised.
        """
        if self.service is None:
            raise ValidationError("attach() the promoter to a service before step()")
        tracer = self.tracer
        span = tracer.begin("promoter.step") if tracer is not None else None
        try:
            decision = self._step_inner()
        finally:
            if span is not None:
                tracer.end(span, action=(self.last_decision or {}).get("action"))
        return decision

    def _step_inner(self) -> dict:
        store = self.store
        active = store.active
        if active is None:
            raise ValidationError("initialize() the policy store before step()")
        if store.state == "GUARD":
            # Never promote during the guardrail window: the last
            # promotion is still on probation.
            self.holds += 1
            self._count("holds")
            decision = {
                "action": "guard_wait",
                "version": store.version,
                "guard_cycles_observed": len(self._guard_window),
            }
            self.last_decision = decision
            return decision
        pool = store.pool()
        challengers = [v for v in pool if v.name != active.name]
        if not challengers:
            return self._hold("empty_pool")
        if self._history_cycles() < self.min_history_cycles:
            return self._hold(
                "insufficient_history", cycles=self._history_cycles()
            )
        candidates = [active] + challengers
        start = time.perf_counter()
        report = self.service.evaluate_recent(
            candidates,
            window=self.window,
            rank_by=self.rank_by,
            workers=self.eval_workers,
            perturb=self.perturb,
        )
        elapsed = time.perf_counter() - start
        telemetry = self._telemetry()
        if telemetry is not None:
            telemetry.observe("autocomp.hist.promoter_eval_wall_s", elapsed)
        self.shadow_evals += 1
        self._count("shadow_evals")
        self.warm_start = report.to_priors()
        if self.learner is not None:
            priors = [e for e in report.prior_efficiencies() if e > 0]
            if priors:
                self.learner.absorb_priors(priors)
        ranked = report.ranked()
        best = ranked[0]
        active_score = next(
            score for score in report.scores if score.variant.name == active.name
        )
        scores_summary = {
            score.variant.name: round(getattr(score, "efficiency"), 6)
            for score in ranked
        }
        if best.variant.name == active.name or not self._clear_winner(
            best, active_score
        ):
            store.record_shadow(
                {"decision": "hold", "best": best.variant.name, "scores": scores_summary}
            )
            return self._hold(
                "no_clear_winner", best=best.variant.name, scores=scores_summary
            )
        baseline = self._means(list(self._live)[-self.guard_cycles :]) if self._live else None
        store.record_shadow(
            {"decision": "promote", "best": best.variant.name, "scores": scores_summary}
        )
        version = store.promote(
            best.variant,
            guard={
                "cycles": self.guard_cycles,
                "baseline": baseline,
                "shadow": {
                    "winner": round(best.efficiency, 6),
                    "active": round(active_score.efficiency, 6),
                },
            },
        )
        self._guard_window = []
        self.promotions += 1
        self._count("promotions")
        decision = {
            "action": "promote",
            "version": version,
            "variant": best.variant.name,
            "over": active.name,
            "scores": scores_summary,
        }
        self.last_decision = decision
        return decision

    # --- observability ----------------------------------------------------------

    def status(self) -> dict:
        """A JSON-safe snapshot for the daemon's ``status.json``."""
        return {
            "attached": self.service is not None,
            "store": self.store.snapshot(),
            "shadow_evals": self.shadow_evals,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "guard_passes": self.guard_passes,
            "holds": self.holds,
            "step_errors": self.step_errors,
            "guard_cycles_observed": len(self._guard_window),
            "warm_start": dict(self.warm_start),
            "last_decision": self.last_decision,
        }
