"""Pareto-frontier candidate selection (§8 "Navigating Multi-Objective
Trade-offs").

The paper's deployed ranking collapses benefit and cost into one weighted
score, which "inherently risks overemphasizing one metric at the expense of
the other".  Its proposed future direction — implemented here — is to keep
the full Pareto frontier instead:

* :func:`pareto_front` computes the non-dominated set over any mix of
  maximised and minimised traits;
* :class:`ParetoFrontPolicy` is a drop-in :class:`RankingPolicy` that ranks
  frontier candidates first (ordered by a tie-breaking scalarisation) and
  can either drop dominated candidates or queue them behind the frontier;
* :func:`knee_point` picks the frontier's balance point (the candidate
  closest to the utopia point after normalisation) for deployments that
  still need a single answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.core.ranking import Objective, RankingPolicy, _sort_scored, min_max_normalize
from repro.errors import ValidationError


@dataclass(frozen=True)
class ParetoObjective:
    """One axis of the Pareto comparison."""

    trait_name: str
    maximize: bool = True


def _dominates(a: list[float], b: list[float]) -> bool:
    """True when point ``a`` dominates ``b`` (all >=, at least one >).

    Points are pre-oriented so larger is always better.
    """
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def _oriented_points(
    candidates: list[Candidate], objectives: list[ParetoObjective]
) -> list[list[float]]:
    return [
        [
            candidate.trait(o.trait_name) * (1.0 if o.maximize else -1.0)
            for o in objectives
        ]
        for candidate in candidates
    ]


def pareto_front(
    candidates: list[Candidate], objectives: list[ParetoObjective]
) -> list[Candidate]:
    """The non-dominated subset of ``candidates``.

    A candidate is on the frontier iff no other candidate is at least as
    good on every objective and strictly better on one — improving any
    frontier member's objective necessarily worsens another (§8).

    Args:
        candidates: candidates with all objective traits computed.
        objectives: the axes of comparison.

    Returns:
        Frontier members in their input order.
    """
    if not objectives:
        raise ValidationError("need at least one objective")
    points = _oriented_points(candidates, objectives)
    frontier = []
    for i, candidate in enumerate(candidates):
        if not any(
            _dominates(points[j], points[i]) for j in range(len(candidates)) if j != i
        ):
            frontier.append(candidate)
    return frontier


def knee_point(
    candidates: list[Candidate], objectives: list[ParetoObjective]
) -> Candidate | None:
    """The frontier candidate closest to the (normalised) utopia point.

    The utopia point scores 1.0 on every (oriented, min-max-normalised)
    objective; the knee is the frontier member with the smallest Euclidean
    distance to it — the "best balanced" trade-off.

    Returns:
        None for an empty candidate list.
    """
    if not candidates:
        return None
    frontier = pareto_front(candidates, objectives)
    points = _oriented_points(frontier, objectives)
    columns = list(zip(*points))
    normalized_columns = [min_max_normalize(list(column)) for column in columns]
    best_candidate = None
    best_distance = float("inf")
    for index, candidate in enumerate(frontier):
        distance = sum(
            (1.0 - normalized_columns[axis][index]) ** 2
            for axis in range(len(objectives))
        )
        if distance < best_distance or (
            distance == best_distance
            and str(candidate.key) < str(best_candidate.key)  # deterministic ties
        ):
            best_candidate = candidate
            best_distance = distance
    return best_candidate


class ParetoFrontPolicy(RankingPolicy):
    """Rank the Pareto frontier first; optionally keep dominated candidates.

    Frontier members are ordered by a scalarised tie-break (equal-weight
    normalised sum by default) so downstream top-k / budget selectors still
    receive a deterministic total order; dominated candidates either follow
    the frontier (``keep_dominated=True``) or are dropped.

    Args:
        objectives: Pareto axes.
        keep_dominated: whether dominated candidates trail the frontier.
    """

    def __init__(
        self, objectives: list[ParetoObjective], keep_dominated: bool = False
    ) -> None:
        if not objectives:
            raise ValidationError("need at least one objective")
        self.objectives = list(objectives)
        self.keep_dominated = keep_dominated
        weight = 1.0 / len(objectives)
        self._tiebreak = [
            Objective(o.trait_name, weight, maximize=o.maximize) for o in objectives
        ]

    def _scalarize(self, candidates: list[Candidate]) -> None:
        if not candidates:
            return
        normalized: dict[str, list[float]] = {}
        for objective in self._tiebreak:
            raw = [c.trait(objective.trait_name) for c in candidates]
            normalized[objective.trait_name] = min_max_normalize(raw)
        for index, candidate in enumerate(candidates):
            score = 0.0
            for objective in self._tiebreak:
                direction = 1.0 if objective.maximize else -1.0
                score += objective.weight * normalized[objective.trait_name][index] * direction
            candidate.score = score

    def rank(self, candidates: list[Candidate]) -> list[Candidate]:
        if not candidates:
            return []
        frontier = pareto_front(candidates, self.objectives)
        frontier_keys = {str(c.key) for c in frontier}
        self._scalarize(list(candidates))
        ranked_front = _sort_scored(frontier)
        if not self.keep_dominated:
            return ranked_front
        dominated = [c for c in candidates if str(c.key) not in frontier_keys]
        return ranked_front + _sort_scored(dominated)
