"""AutoComp core: the paper's contribution.

The OODA-structured automatic-compaction framework (§3–§5):

* **generate** — :mod:`repro.core.candidates` (scopes, keys, statistics);
* **observe** — :class:`~repro.core.connectors.Connector` implementations;
* **orient** — :mod:`repro.core.traits` (ΔF_c, file entropy, GBHr);
* **decide** — :mod:`repro.core.ranking` (threshold & MOOP policies) and
  :mod:`repro.core.selection` (top-k / budget);
* **act** — :mod:`repro.core.scheduling` (backends & schedulers);
* **triggers** — periodic and optimize-after-write (:mod:`repro.core.triggers`);
* **auto-tuning** — :mod:`repro.core.autotune` (threshold optimisers);
* **assembly** — :func:`~repro.core.service.openhouse_pipeline` and
  :class:`~repro.core.service.AutoCompService`;
* **scale-out** — :mod:`repro.core.sharding` (sharded parallel OODA
  cycles), :mod:`repro.core.workers` (process-based shard workers behind
  picklable work contracts) and :mod:`repro.core.statscache` (incremental
  observation);
* **daemonization** — :mod:`repro.core.daemon` (scheduled multi-tenant
  cycles with crash-safe resume), :mod:`repro.core.cron` (calendar
  cadence specs), :mod:`repro.core.locks` (per-table lock files + audit)
  and :mod:`repro.core.fairness` (per-database admission quotas);
* **self-driving policy** — :mod:`repro.core.promoter` (crash-safe
  :class:`~repro.core.promoter.PolicyStore` + guarded
  :class:`~repro.core.promoter.PolicyPromoter` shadow-evaluate /
  promote / watch / roll-back loop).
"""

from repro.core.candidates import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
)
from repro.core.connectors import Connector, LstConnector
from repro.core.cron import CronSchedule, as_schedule
from repro.core.daemon import AutoCompDaemon, ResumableStateMachine
from repro.core.fairness import AdmissionController
from repro.core.locks import (
    AuditSummary,
    LockInfo,
    LockManager,
    read_audit,
    verify_audit,
)
from repro.core.filters import (
    CandidateFilter,
    MaxTraitFilter,
    MinFileCountFilter,
    MinSmallFileCountFilter,
    MinTableAgeFilter,
    MinTotalBytesFilter,
    MinTraitFilter,
    QuiescenceFilter,
)
from repro.core.pipeline import AutoCompPipeline, CycleReport
from repro.core.ranking import (
    Objective,
    QuotaAwareWeightedSumPolicy,
    RankingPolicy,
    ThresholdPolicy,
    WeightedSumPolicy,
    min_max_normalize,
)
from repro.core.autotune import (
    CostFrugalOptimizer,
    Parameter,
    RandomSearchOptimizer,
    TuningResult,
)
from repro.core.pareto import (
    ParetoFrontPolicy,
    ParetoObjective,
    knee_point,
    pareto_front,
)
from repro.core.promoter import (
    PolicyPromoter,
    PolicyStore,
    PromotionSummary,
    apply_variant,
    read_promotions,
    replay_promotions,
    verify_promotions,
)
from repro.core.weight_learning import WeightLearner
from repro.core.scheduling import (
    CompactionTask,
    ConcurrentScheduler,
    ExecutionBackend,
    ExecutionResult,
    LstExecutionBackend,
    OffPeakScheduler,
    ParallelScheduler,
    PartitionSerialScheduler,
    Scheduler,
    SequentialScheduler,
)
from repro.core.selection import AllSelector, BudgetSelector, Selector, TopKSelector
from repro.core.service import (
    AutoCompService,
    openhouse_pipeline,
    openhouse_sharded_pipeline,
)
from repro.core.sharding import (
    PIPELINE_WORKER_MODES,
    ShardedCycleReport,
    ShardedPipeline,
    shard_for_key,
    split_selector,
)
from repro.core.statscache import IndexedCandidateCache, StatsCache
from repro.core.workers import (
    WORKER_MODES,
    CacheDelta,
    ShardCycleResult,
    ShardDecideSpec,
    ShardDecision,
    ShardWorkSpec,
    WorkerPool,
    process_workers_available,
    run_shard_work,
)
from repro.core.traits import (
    BENEFIT,
    COST,
    ComputeCostTrait,
    DeleteFileCountTrait,
    FileCountReductionTrait,
    FileEntropyTrait,
    RelativeFileCountReductionTrait,
    SmallFileBytesTrait,
    Trait,
    TraitRegistry,
)
from repro.core.triggers import OptimizeAfterWriteHook, PeriodicTrigger

__all__ = [
    "AdmissionController",
    "AllSelector",
    "AuditSummary",
    "AutoCompDaemon",
    "AutoCompPipeline",
    "AutoCompService",
    "BENEFIT",
    "BudgetSelector",
    "COST",
    "Candidate",
    "CandidateFilter",
    "CandidateKey",
    "CandidateScope",
    "CacheDelta",
    "CandidateStatistics",
    "CompactionTask",
    "ComputeCostTrait",
    "ConcurrentScheduler",
    "Connector",
    "CostFrugalOptimizer",
    "CronSchedule",
    "CycleReport",
    "DeleteFileCountTrait",
    "ExecutionBackend",
    "ExecutionResult",
    "FileCountReductionTrait",
    "FileEntropyTrait",
    "IndexedCandidateCache",
    "LockInfo",
    "LockManager",
    "LstConnector",
    "LstExecutionBackend",
    "MaxTraitFilter",
    "MinFileCountFilter",
    "MinSmallFileCountFilter",
    "MinTableAgeFilter",
    "MinTotalBytesFilter",
    "MinTraitFilter",
    "Objective",
    "OffPeakScheduler",
    "OptimizeAfterWriteHook",
    "PIPELINE_WORKER_MODES",
    "ParallelScheduler",
    "Parameter",
    "ParetoFrontPolicy",
    "ParetoObjective",
    "PartitionSerialScheduler",
    "PeriodicTrigger",
    "PolicyPromoter",
    "PolicyStore",
    "PromotionSummary",
    "QuiescenceFilter",
    "QuotaAwareWeightedSumPolicy",
    "RandomSearchOptimizer",
    "RankingPolicy",
    "RelativeFileCountReductionTrait",
    "ResumableStateMachine",
    "Scheduler",
    "Selector",
    "SequentialScheduler",
    "ShardCycleResult",
    "ShardDecideSpec",
    "ShardDecision",
    "ShardWorkSpec",
    "ShardedCycleReport",
    "ShardedPipeline",
    "SmallFileBytesTrait",
    "StatsCache",
    "ThresholdPolicy",
    "TopKSelector",
    "Trait",
    "TraitRegistry",
    "TuningResult",
    "WORKER_MODES",
    "WeightLearner",
    "WeightedSumPolicy",
    "WorkerPool",
    "apply_variant",
    "as_schedule",
    "knee_point",
    "min_max_normalize",
    "openhouse_pipeline",
    "openhouse_sharded_pipeline",
    "pareto_front",
    "process_workers_available",
    "read_audit",
    "read_promotions",
    "replay_promotions",
    "run_shard_work",
    "shard_for_key",
    "split_selector",
    "verify_audit",
    "verify_promotions",
]
