"""Ranking policies: the decide phase (§4.3).

Two families, matching the paper's two scenarios:

* **Unconstrained resources** — :class:`ThresholdPolicy`: a decision
  function that passes candidates whose trigger trait exceeds a threshold,
  ordered by that trait (e.g. "compact when estimated file-count reduction
  reaches 10%").
* **Resource-constrained** — :class:`WeightedSumPolicy`: the MOOP
  scalarisation.  Each trait is min-max normalised across the candidate
  pool, then combined as ``S_c = Σᵢ wᵢ·T′ᵢ,c·dᵢ`` where ``dᵢ`` is +1 for
  benefit traits and −1 for cost traits and ``Σ|wᵢ| = 1``.
  :class:`QuotaAwareWeightedSumPolicy` is the production variant whose
  benefit weight scales with the tenant's quota pressure:
  ``w₁ = 0.5 × (1 + UsedQuota/TotalQuota)`` (§7).

All policies are deterministic: equal inputs produce equal rankings, with
ties broken by candidate key (NFR2).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import Candidate
from repro.errors import ValidationError

#: Weights must sum to 1 within this tolerance.
WEIGHT_SUM_TOLERANCE = 1e-9


def min_max_normalize(values: list[float]) -> list[float]:
    """The paper's normalisation: ``(v − min) / (max − min)``, into [0, 1].

    A constant column (max == min) normalises to all zeros, which drops the
    trait's influence for that cycle instead of dividing by zero.
    """
    if not values:
        return []
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0 or not math.isfinite(span):
        return [0.0] * len(values)
    return [(v - low) / span for v in values]


def _sort_key(candidate: Candidate) -> tuple[float, str]:
    # Direct read of the key's memoised string form (see CandidateKey):
    # this runs once per ranked candidate per cycle.
    return (-(candidate.score or 0.0), candidate.key._str)  # type: ignore[attr-defined]


def _sort_scored(candidates: list[Candidate]) -> list[Candidate]:
    """Descending score; ties broken by candidate key string (determinism)."""
    return sorted(candidates, key=_sort_key)


def _normalize_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorised :func:`min_max_normalize` (bit-identical elementwise)."""
    low = values.min()
    span = values.max() - low
    if span == 0 or not math.isfinite(span):
        return np.zeros_like(values)
    return (values - low) / span


def _sort_scored_array(candidates: list[Candidate], scores: "np.ndarray") -> list[Candidate]:
    """:func:`_sort_scored` via a stable argsort on precomputed scores.

    A stable descending argsort leaves equal-score runs in input order;
    re-sorting each run by key string restores the exact
    ``(-score, key-string)`` total order at a fraction of the tuple-sort
    cost (ties are rare relative to fleet size).
    """
    order = np.argsort(-scores, kind="stable")
    ranked = [candidates[i] for i in order.tolist()]
    sorted_scores = scores[order]
    ties = np.nonzero(np.diff(sorted_scores) == 0)[0]
    if ties.size:
        run_start = None
        previous = None
        spans: list[tuple[int, int]] = []
        for t in ties.tolist():
            if previous is not None and t == previous + 1:
                previous = t
                continue
            if run_start is not None:
                spans.append((run_start, previous + 2))
            run_start, previous = t, t
        spans.append((run_start, previous + 2))
        for start, end in spans:
            ranked[start:end] = sorted(
                ranked[start:end],
                key=lambda c: c.key._str,  # type: ignore[attr-defined]
            )
    return ranked


def _trait_column(candidates: list[Candidate], name: str) -> list[float]:
    """One trait across all candidates (with the usual missing-trait error)."""
    try:
        return [c.traits[name] for c in candidates]
    except KeyError:
        # Re-raise through the slow path for the diagnostic message.
        return [c.trait(name) for c in candidates]


class RankingPolicy(abc.ABC):
    """Assigns scores and returns candidates in descending priority."""

    @abc.abstractmethod
    def rank(self, candidates: list[Candidate]) -> list[Candidate]:
        """Score candidates (setting ``candidate.score``) and sort them.

        Candidates a policy deems ineligible are omitted from the result.
        """


class ThresholdPolicy(RankingPolicy):
    """Unconstrained-scenario decision function.

    Args:
        trait_name: trigger trait (e.g. ``relative_file_count_reduction``).
        threshold: minimum trait value to qualify for compaction.
    """

    def __init__(self, trait_name: str, threshold: float) -> None:
        self.trait_name = trait_name
        self.threshold = threshold

    def rank(self, candidates: list[Candidate]) -> list[Candidate]:
        eligible = []
        for candidate in candidates:
            value = candidate.trait(self.trait_name)
            if value >= self.threshold:
                candidate.score = value
                eligible.append(candidate)
        return _sort_scored(eligible)


@dataclass(frozen=True)
class Objective:
    """One term of the scalarised MOOP function."""

    trait_name: str
    weight: float
    maximize: bool = True

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValidationError(
                f"weights must be non-negative (direction comes from maximize=), "
                f"got {self.weight}"
            )


class WeightedSumPolicy(RankingPolicy):
    """MOOP scalarisation with min-max-normalised traits (§4.3).

    Args:
        objectives: trait/weight/direction terms; weights must sum to 1.

    Example — the paper's §6 configuration (0.7 file-count reduction,
    0.3 compute cost)::

        WeightedSumPolicy([
            Objective("file_count_reduction", 0.7, maximize=True),
            Objective("compute_cost_gbhr", 0.3, maximize=False),
        ])
    """

    def __init__(self, objectives: list[Objective]) -> None:
        if not objectives:
            raise ValidationError("need at least one objective")
        names = [o.trait_name for o in objectives]
        if len(names) != len(set(names)):
            raise ValidationError(f"duplicate objective traits: {names}")
        total = sum(o.weight for o in objectives)
        if abs(total - 1.0) > 1e-6:
            raise ValidationError(f"objective weights must sum to 1, got {total}")
        self.objectives = list(objectives)

    def rank(self, candidates: list[Candidate]) -> list[Candidate]:
        if not candidates:
            return []
        normalized: dict[str, list[float]] = {}
        for objective in self.objectives:
            raw = _trait_column(candidates, objective.trait_name)
            normalized[objective.trait_name] = min_max_normalize(raw)
        for index, candidate in enumerate(candidates):
            score = 0.0
            for objective in self.objectives:
                direction = 1.0 if objective.maximize else -1.0
                score += objective.weight * normalized[objective.trait_name][index] * direction
            candidate.score = score
        return _sort_scored(list(candidates))


class QuotaAwareWeightedSumPolicy(RankingPolicy):
    """The LinkedIn production ranking (§7): per-candidate dynamic weights.

    The benefit weight grows with the owning database's namespace-quota
    pressure, making tenants close to quota breach jump the queue:

        ``w₁ = 0.5 × (1 + UsedQuota/TotalQuota)``,  ``w₂ = 1 − w₁``

    so w₁ ranges from 0.5 (idle tenant) to 1.0 (tenant at quota).

    Args:
        benefit_trait: maximised trait (default ΔF_c).
        cost_trait: minimised trait (default GBHr).
    """

    def __init__(
        self,
        benefit_trait: str = "file_count_reduction",
        cost_trait: str = "compute_cost_gbhr",
    ) -> None:
        self.benefit_trait = benefit_trait
        self.cost_trait = cost_trait

    @staticmethod
    def benefit_weight(quota_utilization: float) -> float:
        """``w₁ = 0.5 × (1 + UsedQuota/TotalQuota)``, clamped to [0.5, 1]."""
        utilization = min(max(quota_utilization, 0.0), 1.0)
        return 0.5 * (1.0 + utilization)

    def rank(self, candidates: list[Candidate]) -> list[Candidate]:
        if not candidates:
            return []
        # Vectorised scoring: this is the fleet deployment's per-cycle hot
        # path.  Elementwise float64 arithmetic matches the scalar formula
        # bit for bit, and the tie-repaired stable argsort reproduces
        # _sort_scored's (-score, key-string) total order exactly.
        benefit = np.asarray(_trait_column(candidates, self.benefit_trait), dtype=np.float64)
        cost = np.asarray(_trait_column(candidates, self.cost_trait), dtype=np.float64)
        benefit = _normalize_array(benefit)
        cost = _normalize_array(cost)
        utilization = [
            c.statistics.quota_utilization if c.statistics is not None else 0.0
            for c in candidates
        ]
        # ``self.benefit_weight`` resolves instance- and subclass-level
        # overrides alike (it is a staticmethod, so the comparison is
        # against the plain underlying function).
        if self.benefit_weight is QuotaAwareWeightedSumPolicy.benefit_weight:
            w1 = 0.5 * (1.0 + np.clip(np.asarray(utilization, dtype=np.float64), 0.0, 1.0))
        else:
            # Honour the overridden benefit_weight with a per-candidate call.
            w1 = np.asarray([self.benefit_weight(u) for u in utilization], dtype=np.float64)
        scores = w1 * benefit - (1.0 - w1) * cost
        for candidate, score in zip(candidates, scores.tolist()):
            candidate.score = score
        return _sort_scored_array(candidates, scores)
