"""The act phase: execution backends and compaction schedulers (§4.4).

AutoComp separates *what* to compact (decide) from *how/when* to run it
(act).  The act phase is parameterised twice:

* an :class:`ExecutionBackend` turns a selected candidate into a runnable
  job on the deployment platform (live LST tables here; the fleet model in
  :mod:`repro.fleet` provides another backend), and
* a :class:`Scheduler` decides ordering and concurrency.  The paper found
  that with Iceberg v1.2.0 even compactions of *distinct partitions*
  conflict, so its deployment compacts tables in parallel but partitions
  of one table sequentially — :class:`PartitionSerialScheduler` encodes
  exactly that, while :class:`ParallelScheduler` exists to demonstrate the
  conflict storm you get without it (Table 1's cluster-side column).
  :class:`ConcurrentScheduler` is the scale-out generalisation: independent
  chains run concurrently under an explicit parallelism cap while ordered
  work stays ordered — per table with ``table_serial=True`` (safe on the
  Iceberg v1.2.0 profile), or per partition by default (Delta-profile
  granularity).

Schedulers run in two modes: synchronous (no simulator — jobs execute
back-to-back with no simulated time passing, for examples and fleet steps)
and event-driven (a simulator is provided — jobs occupy simulated time and
can race concurrent user writes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.candidates import Candidate, CandidateKey, CandidateScope
from repro.core.connectors import LstConnector
from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.engine.jobs import CompactionJob, CompactionOutcome
from repro.errors import SchedulingError, ValidationError
from repro.lst.maintenance import plan_table_rewrite
from repro.simulation.simulator import Simulator
from repro.units import HOUR


@dataclass(frozen=True)
class CompactionTask:
    """A selected candidate plus its decide-phase estimates."""

    candidate: Candidate
    estimated_gbhr: float = 0.0
    estimated_reduction: float = 0.0

    @classmethod
    def from_candidate(cls, candidate: Candidate) -> "CompactionTask":
        """Build a task, pulling estimates from traits when present."""
        return cls(
            candidate=candidate,
            estimated_gbhr=candidate.traits.get("compute_cost_gbhr", 0.0),
            estimated_reduction=candidate.traits.get("file_count_reduction", 0.0),
        )


@dataclass(frozen=True)
class ExecutionResult:
    """Backend-agnostic outcome of one act-phase job."""

    candidate: CandidateKey
    success: bool
    skipped: bool
    conflict_reason: str | None
    started_at: float
    finished_at: float
    duration_s: float
    gbhr: float
    files_before: int
    files_after: int
    estimated_reduction: float
    actual_reduction: int
    rewritten_bytes: int
    estimated_gbhr: float = 0.0

    @classmethod
    def skipped_result(cls, task: CompactionTask, now: float) -> "ExecutionResult":
        """Result for a candidate whose rewrite plan turned out empty."""
        return cls(
            candidate=task.candidate.key,
            success=False,
            skipped=True,
            conflict_reason=None,
            started_at=now,
            finished_at=now,
            duration_s=0.0,
            gbhr=0.0,
            files_before=0,
            files_after=0,
            estimated_reduction=task.estimated_reduction,
            actual_reduction=0,
            rewritten_bytes=0,
            estimated_gbhr=task.estimated_gbhr,
        )


class PreparedJob(abc.ABC):
    """A backend job ready to run, with an explicit start/finish window."""

    @abc.abstractmethod
    def start(self) -> float:
        """Begin the job at the current simulated time; returns duration."""

    @abc.abstractmethod
    def finish(self) -> ExecutionResult:
        """Complete the job at the current simulated time."""


class ExecutionBackend(abc.ABC):
    """Turns candidates into runnable jobs on the deployment platform."""

    @abc.abstractmethod
    def prepare(self, task: CompactionTask) -> PreparedJob | None:
        """A runnable job, or None when there is nothing worth rewriting."""


class _LstPreparedJob(PreparedJob):
    def __init__(self, job: CompactionJob, task: CompactionTask) -> None:
        self._job = job
        self._task = task

    def start(self) -> float:
        return self._job.start()

    def finish(self) -> ExecutionResult:
        outcome: CompactionOutcome = self._job.finish()
        return ExecutionResult(
            candidate=self._task.candidate.key,
            success=outcome.success,
            skipped=False,
            conflict_reason=outcome.conflict_reason,
            started_at=outcome.started_at,
            finished_at=outcome.finished_at,
            duration_s=outcome.duration_s,
            gbhr=outcome.gbhr,
            files_before=outcome.files_before,
            files_after=outcome.files_after,
            estimated_reduction=self._task.estimated_reduction,
            actual_reduction=outcome.actual_reduction,
            rewritten_bytes=outcome.rewritten_bytes,
            estimated_gbhr=self._task.estimated_gbhr,
        )


class LstExecutionBackend(ExecutionBackend):
    """Runs compaction jobs against live catalog tables.

    Args:
        connector: resolves candidate keys to tables.
        cluster: the (dedicated) compaction cluster.
        cost_model: duration/GBHr model; defaults to :class:`CostModel`.
        min_input_files: partitions with fewer small files are not rewritten.
    """

    def __init__(
        self,
        connector: LstConnector,
        cluster: Cluster,
        cost_model: CostModel | None = None,
        min_input_files: int = 2,
    ) -> None:
        self.connector = connector
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.min_input_files = min_input_files

    def prepare(self, task: CompactionTask) -> PreparedJob | None:
        key = task.candidate.key
        table = self.connector.table_for(key)
        if key.scope is CandidateScope.SNAPSHOT:
            # Snapshot scope: rewrite only the files added since the base
            # snapshot (the fresh-data subset).
            from repro.lst.maintenance import plan_rewrite

            plan = plan_rewrite(
                self.connector.files_for(key),
                target_file_size=table.target_file_size,
                table=str(table.identifier),
                min_input_files=self.min_input_files,
            )
        else:
            partitions = (
                [key.partition] if key.scope is CandidateScope.PARTITION else None
            )
            plan = plan_table_rewrite(
                table, partitions=partitions, min_input_files=self.min_input_files
            )
        if plan.is_empty:
            return None
        job = CompactionJob(
            table,
            plan,
            self.cluster,
            cost_model=self.cost_model,
            telemetry=table.telemetry,
            clock=table.clock,
        )
        return _LstPreparedJob(job, task)


class Scheduler(abc.ABC):
    """Orders and (optionally) parallelises act-phase jobs."""

    @abc.abstractmethod
    def schedule(
        self,
        tasks: list[CompactionTask],
        backend: ExecutionBackend,
        simulator: Simulator | None = None,
        on_result=None,
    ) -> list[ExecutionResult]:
        """Run (or enqueue) the tasks.

        Args:
            tasks: selected candidates in priority order.
            backend: platform executor.
            simulator: when given, jobs are scheduled as simulated events
                and the return value is empty — results flow through
                ``on_result`` as the events complete.  When None, jobs run
                synchronously and results are returned.
            on_result: optional callback invoked with each
                :class:`ExecutionResult`.
        """

    @staticmethod
    def _run_sync(
        tasks: list[CompactionTask], backend: ExecutionBackend, now: float, on_result
    ) -> list[ExecutionResult]:
        results = []
        for task in tasks:
            job = backend.prepare(task)
            if job is None:
                result = ExecutionResult.skipped_result(task, now)
            else:
                job.start()
                result = job.finish()
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    @staticmethod
    def _run_chain(
        tasks: list[CompactionTask],
        backend: ExecutionBackend,
        simulator: Simulator,
        on_result,
        on_done=None,
    ) -> None:
        """Run tasks back-to-back as simulated events.

        ``on_done`` (when given) fires once the whole chain has drained —
        concurrency-capped schedulers use it to launch the next chain.
        """
        queue = list(tasks)

        def start_next() -> None:
            while queue:
                task = queue.pop(0)
                job = backend.prepare(task)
                if job is None:
                    result = ExecutionResult.skipped_result(task, simulator.now)
                    if on_result is not None:
                        on_result(result)
                    continue
                duration = job.start()

                def finish(job=job) -> None:
                    result = job.finish()
                    if on_result is not None:
                        on_result(result)
                    start_next()

                simulator.after(duration, finish, name="compaction-finish")
                return
            if on_done is not None:
                on_done()

        start_next()


class SequentialScheduler(Scheduler):
    """All tasks back-to-back on the compaction cluster.

    The safest ordering for formats where any concurrency risks conflicts;
    used when compaction shares a cluster with user queries ("scheduled
    sequentially to mitigate resource contention", §4.4).
    """

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            return self._run_sync(tasks, backend, 0.0, on_result)
        self._run_chain(tasks, backend, simulator, on_result)
        return []


class ParallelScheduler(Scheduler):
    """All tasks start immediately, fully concurrent.

    With the Iceberg v1.2.0 profile this deliberately reproduces the
    cluster-side conflict storm of Table 1; with the Delta profile (file-
    granularity validation) it is safe for disjoint candidates.
    """

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            # Without a simulator there is no concurrency; degrade to sync.
            return self._run_sync(tasks, backend, 0.0, on_result)
        for task in tasks:
            self._run_chain([task], backend, simulator, on_result)
        return []


class PartitionSerialScheduler(Scheduler):
    """Tables in parallel, partitions of one table sequentially (§6).

    This is the paper's hybrid-strategy scheduler: partition-scope tasks
    belonging to the same table are chained (avoiding the v1.2.0 rewrite-
    vs-rewrite conflict), while different tables proceed concurrently.
    """

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            return self._run_sync(tasks, backend, 0.0, on_result)
        by_table: dict[str, list[CompactionTask]] = {}
        for task in tasks:
            by_table.setdefault(task.candidate.key.qualified_table, []).append(task)
        for chain in by_table.values():
            self._run_chain(chain, backend, simulator, on_result)
        return []


class ConcurrentScheduler(Scheduler):
    """Independent chains in parallel under a concurrency cap (scale-out act).

    Tasks are grouped into *chains* of work that must stay ordered:

    * by ``(table, partition)`` by default — two tasks touching the same
      partition never overlap, but distinct partitions of one table *do*
      run concurrently.  That is finer-grained than
      :class:`PartitionSerialScheduler` (which chains all of a table's
      partitions) and is only conflict-free on formats with
      file-granularity commit validation (the Delta profile);
    * by table when ``table_serial=True`` — the grouping matching
      :class:`PartitionSerialScheduler`'s guarantee, required for formats
      where even distinct-partition rewrites of one table conflict (the
      Iceberg v1.2.0 profile of Table 1, this repo's default table
      profile).

    Args:
        max_parallelism: simulator mode: at most this many chains run
            concurrently; the next chain launches as one finishes.  None
            means all chains start immediately.
        workers: sync mode: thread-pool width for running chains of a
            thread-safe backend concurrently; None or <=1 degrades to
            sequential execution.  Results (and ``on_result`` calls) are
            always delivered in deterministic chain order regardless of
            completion order.
        table_serial: chain by table instead of by partition.
    """

    def __init__(
        self,
        max_parallelism: int | None = None,
        workers: int | None = None,
        table_serial: bool = False,
    ) -> None:
        if max_parallelism is not None and max_parallelism <= 0:
            raise ValidationError("max_parallelism must be positive")
        if workers is not None and workers <= 0:
            raise ValidationError("workers must be positive")
        self.max_parallelism = max_parallelism
        self.workers = workers
        self.table_serial = table_serial

    def _chains(self, tasks: list[CompactionTask]) -> list[list[CompactionTask]]:
        """Group tasks into ordered chains, preserving arrival order.

        A table-scope (or snapshot-scope) task touches every partition, so
        any table with a non-partition-scope task collapses to a single
        chain — partition-granular concurrency only applies to tables whose
        tasks are all partition-scoped.
        """
        whole_table: set[str] = set()
        if not self.table_serial:
            for task in tasks:
                key = task.candidate.key
                if key.scope is not CandidateScope.PARTITION:
                    whole_table.add(key.qualified_table)
        chains: dict[tuple, list[CompactionTask]] = {}
        for task in tasks:
            key = task.candidate.key
            table = key.qualified_table
            partition = (
                None
                if self.table_serial or table in whole_table
                else key.partition
            )
            chains.setdefault((table, partition), []).append(task)
        return list(chains.values())

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        chains = self._chains(tasks)
        if simulator is None:
            return self._run_sync_chains(chains, backend, on_result)
        if self.max_parallelism is None:
            for chain in chains:
                self._run_chain(chain, backend, simulator, on_result)
            return []
        pending = list(chains)
        # Trampoline: a chain whose jobs all skip completes synchronously
        # and re-enters launch_next from its on_done — loop on a wake
        # counter instead of recursing, so a long run of empty chains
        # cannot overflow the stack.
        state = {"active": False, "wake": 0}

        def launch_next() -> None:
            state["wake"] += 1
            if state["active"]:
                return
            state["active"] = True
            try:
                while state["wake"] > 0 and pending:
                    state["wake"] -= 1
                    chain = pending.pop(0)
                    self._run_chain(
                        chain, backend, simulator, on_result, on_done=launch_next
                    )
                state["wake"] = 0
            finally:
                state["active"] = False

        for _ in range(min(self.max_parallelism, len(pending))):
            launch_next()
        return []

    def _run_sync_chains(self, chains, backend, on_result) -> list[ExecutionResult]:
        if not chains:
            return []
        if self.workers is None or self.workers <= 1 or len(chains) == 1:
            results: list[ExecutionResult] = []
            for chain in chains:
                results.extend(self._run_sync(chain, backend, 0.0, on_result))
            return results
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(self.workers, len(chains))) as pool:
            futures = [
                pool.submit(self._run_sync, chain, backend, 0.0, None)
                for chain in chains
            ]
            per_chain = [future.result() for future in futures]
        results = []
        for chain_results in per_chain:
            results.extend(chain_results)
            if on_result is not None:
                for result in chain_results:
                    on_result(result)
        return results


class OffPeakScheduler(Scheduler):
    """Defer an inner scheduler to the next off-peak window.

    Args:
        inner: scheduler to run once the window opens.
        window_start_hour: daily window start (0–24, simulated hours).
        window_end_hour: daily window end; may wrap past midnight.
    """

    def __init__(
        self,
        inner: Scheduler,
        window_start_hour: float = 1.0,
        window_end_hour: float = 5.0,
    ) -> None:
        if not 0 <= window_start_hour < 24 or not 0 <= window_end_hour < 24:
            raise ValidationError("window hours must be in [0, 24)")
        self.inner = inner
        self.window_start_hour = window_start_hour
        self.window_end_hour = window_end_hour

    def seconds_until_window(self, now: float) -> float:
        """Delay from ``now`` until the next window opening (0 if inside)."""
        hour_of_day = (now % (24 * HOUR)) / HOUR
        start, end = self.window_start_hour, self.window_end_hour
        if start <= end:
            inside = start <= hour_of_day < end
        else:  # window wraps midnight
            inside = hour_of_day >= start or hour_of_day < end
        if inside:
            return 0.0
        delta_hours = (start - hour_of_day) % 24
        return delta_hours * HOUR

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            raise SchedulingError("OffPeakScheduler requires a simulator")
        delay = self.seconds_until_window(simulator.now)
        if delay == 0:
            return self.inner.schedule(tasks, backend, simulator, on_result)
        simulator.after(
            delay,
            lambda: self.inner.schedule(tasks, backend, simulator, on_result),
            name="offpeak-window",
        )
        return []
