"""The act phase: execution backends and compaction schedulers (§4.4).

AutoComp separates *what* to compact (decide) from *how/when* to run it
(act).  The act phase is parameterised twice:

* an :class:`ExecutionBackend` turns a selected candidate into a runnable
  job on the deployment platform (live LST tables here; the fleet model in
  :mod:`repro.fleet` provides another backend), and
* a :class:`Scheduler` decides ordering and concurrency.  The paper found
  that with Iceberg v1.2.0 even compactions of *distinct partitions*
  conflict, so its deployment compacts tables in parallel but partitions
  of one table sequentially — :class:`PartitionSerialScheduler` encodes
  exactly that, while :class:`ParallelScheduler` exists to demonstrate the
  conflict storm you get without it (Table 1's cluster-side column).

Schedulers run in two modes: synchronous (no simulator — jobs execute
back-to-back with no simulated time passing, for examples and fleet steps)
and event-driven (a simulator is provided — jobs occupy simulated time and
can race concurrent user writes).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.candidates import Candidate, CandidateKey, CandidateScope
from repro.core.connectors import LstConnector
from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.engine.jobs import CompactionJob, CompactionOutcome
from repro.errors import SchedulingError, ValidationError
from repro.lst.maintenance import plan_table_rewrite
from repro.simulation.simulator import Simulator
from repro.units import HOUR


@dataclass(frozen=True)
class CompactionTask:
    """A selected candidate plus its decide-phase estimates."""

    candidate: Candidate
    estimated_gbhr: float = 0.0
    estimated_reduction: float = 0.0

    @classmethod
    def from_candidate(cls, candidate: Candidate) -> "CompactionTask":
        """Build a task, pulling estimates from traits when present."""
        return cls(
            candidate=candidate,
            estimated_gbhr=candidate.traits.get("compute_cost_gbhr", 0.0),
            estimated_reduction=candidate.traits.get("file_count_reduction", 0.0),
        )


@dataclass(frozen=True)
class ExecutionResult:
    """Backend-agnostic outcome of one act-phase job."""

    candidate: CandidateKey
    success: bool
    skipped: bool
    conflict_reason: str | None
    started_at: float
    finished_at: float
    duration_s: float
    gbhr: float
    files_before: int
    files_after: int
    estimated_reduction: float
    actual_reduction: int
    rewritten_bytes: int
    estimated_gbhr: float = 0.0

    @classmethod
    def skipped_result(cls, task: CompactionTask, now: float) -> "ExecutionResult":
        """Result for a candidate whose rewrite plan turned out empty."""
        return cls(
            candidate=task.candidate.key,
            success=False,
            skipped=True,
            conflict_reason=None,
            started_at=now,
            finished_at=now,
            duration_s=0.0,
            gbhr=0.0,
            files_before=0,
            files_after=0,
            estimated_reduction=task.estimated_reduction,
            actual_reduction=0,
            rewritten_bytes=0,
            estimated_gbhr=task.estimated_gbhr,
        )


class PreparedJob(abc.ABC):
    """A backend job ready to run, with an explicit start/finish window."""

    @abc.abstractmethod
    def start(self) -> float:
        """Begin the job at the current simulated time; returns duration."""

    @abc.abstractmethod
    def finish(self) -> ExecutionResult:
        """Complete the job at the current simulated time."""


class ExecutionBackend(abc.ABC):
    """Turns candidates into runnable jobs on the deployment platform."""

    @abc.abstractmethod
    def prepare(self, task: CompactionTask) -> PreparedJob | None:
        """A runnable job, or None when there is nothing worth rewriting."""


class _LstPreparedJob(PreparedJob):
    def __init__(self, job: CompactionJob, task: CompactionTask) -> None:
        self._job = job
        self._task = task

    def start(self) -> float:
        return self._job.start()

    def finish(self) -> ExecutionResult:
        outcome: CompactionOutcome = self._job.finish()
        return ExecutionResult(
            candidate=self._task.candidate.key,
            success=outcome.success,
            skipped=False,
            conflict_reason=outcome.conflict_reason,
            started_at=outcome.started_at,
            finished_at=outcome.finished_at,
            duration_s=outcome.duration_s,
            gbhr=outcome.gbhr,
            files_before=outcome.files_before,
            files_after=outcome.files_after,
            estimated_reduction=self._task.estimated_reduction,
            actual_reduction=outcome.actual_reduction,
            rewritten_bytes=outcome.rewritten_bytes,
            estimated_gbhr=self._task.estimated_gbhr,
        )


class LstExecutionBackend(ExecutionBackend):
    """Runs compaction jobs against live catalog tables.

    Args:
        connector: resolves candidate keys to tables.
        cluster: the (dedicated) compaction cluster.
        cost_model: duration/GBHr model; defaults to :class:`CostModel`.
        min_input_files: partitions with fewer small files are not rewritten.
    """

    def __init__(
        self,
        connector: LstConnector,
        cluster: Cluster,
        cost_model: CostModel | None = None,
        min_input_files: int = 2,
    ) -> None:
        self.connector = connector
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.min_input_files = min_input_files

    def prepare(self, task: CompactionTask) -> PreparedJob | None:
        key = task.candidate.key
        table = self.connector.table_for(key)
        if key.scope is CandidateScope.SNAPSHOT:
            # Snapshot scope: rewrite only the files added since the base
            # snapshot (the fresh-data subset).
            from repro.lst.maintenance import plan_rewrite

            plan = plan_rewrite(
                self.connector.files_for(key),
                target_file_size=table.target_file_size,
                table=str(table.identifier),
                min_input_files=self.min_input_files,
            )
        else:
            partitions = (
                [key.partition] if key.scope is CandidateScope.PARTITION else None
            )
            plan = plan_table_rewrite(
                table, partitions=partitions, min_input_files=self.min_input_files
            )
        if plan.is_empty:
            return None
        job = CompactionJob(
            table,
            plan,
            self.cluster,
            cost_model=self.cost_model,
            telemetry=table.telemetry,
            clock=table.clock,
        )
        return _LstPreparedJob(job, task)


class Scheduler(abc.ABC):
    """Orders and (optionally) parallelises act-phase jobs."""

    @abc.abstractmethod
    def schedule(
        self,
        tasks: list[CompactionTask],
        backend: ExecutionBackend,
        simulator: Simulator | None = None,
        on_result=None,
    ) -> list[ExecutionResult]:
        """Run (or enqueue) the tasks.

        Args:
            tasks: selected candidates in priority order.
            backend: platform executor.
            simulator: when given, jobs are scheduled as simulated events
                and the return value is empty — results flow through
                ``on_result`` as the events complete.  When None, jobs run
                synchronously and results are returned.
            on_result: optional callback invoked with each
                :class:`ExecutionResult`.
        """

    @staticmethod
    def _run_sync(
        tasks: list[CompactionTask], backend: ExecutionBackend, now: float, on_result
    ) -> list[ExecutionResult]:
        results = []
        for task in tasks:
            job = backend.prepare(task)
            if job is None:
                result = ExecutionResult.skipped_result(task, now)
            else:
                job.start()
                result = job.finish()
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    @staticmethod
    def _run_chain(
        tasks: list[CompactionTask],
        backend: ExecutionBackend,
        simulator: Simulator,
        on_result,
    ) -> None:
        """Run tasks back-to-back as simulated events."""
        queue = list(tasks)

        def start_next() -> None:
            while queue:
                task = queue.pop(0)
                job = backend.prepare(task)
                if job is None:
                    result = ExecutionResult.skipped_result(task, simulator.now)
                    if on_result is not None:
                        on_result(result)
                    continue
                duration = job.start()

                def finish(job=job) -> None:
                    result = job.finish()
                    if on_result is not None:
                        on_result(result)
                    start_next()

                simulator.after(duration, finish, name="compaction-finish")
                return

        start_next()


class SequentialScheduler(Scheduler):
    """All tasks back-to-back on the compaction cluster.

    The safest ordering for formats where any concurrency risks conflicts;
    used when compaction shares a cluster with user queries ("scheduled
    sequentially to mitigate resource contention", §4.4).
    """

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            return self._run_sync(tasks, backend, 0.0, on_result)
        self._run_chain(tasks, backend, simulator, on_result)
        return []


class ParallelScheduler(Scheduler):
    """All tasks start immediately, fully concurrent.

    With the Iceberg v1.2.0 profile this deliberately reproduces the
    cluster-side conflict storm of Table 1; with the Delta profile (file-
    granularity validation) it is safe for disjoint candidates.
    """

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            # Without a simulator there is no concurrency; degrade to sync.
            return self._run_sync(tasks, backend, 0.0, on_result)
        for task in tasks:
            self._run_chain([task], backend, simulator, on_result)
        return []


class PartitionSerialScheduler(Scheduler):
    """Tables in parallel, partitions of one table sequentially (§6).

    This is the paper's hybrid-strategy scheduler: partition-scope tasks
    belonging to the same table are chained (avoiding the v1.2.0 rewrite-
    vs-rewrite conflict), while different tables proceed concurrently.
    """

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            return self._run_sync(tasks, backend, 0.0, on_result)
        by_table: dict[str, list[CompactionTask]] = {}
        for task in tasks:
            by_table.setdefault(task.candidate.key.qualified_table, []).append(task)
        for chain in by_table.values():
            self._run_chain(chain, backend, simulator, on_result)
        return []


class OffPeakScheduler(Scheduler):
    """Defer an inner scheduler to the next off-peak window.

    Args:
        inner: scheduler to run once the window opens.
        window_start_hour: daily window start (0–24, simulated hours).
        window_end_hour: daily window end; may wrap past midnight.
    """

    def __init__(
        self,
        inner: Scheduler,
        window_start_hour: float = 1.0,
        window_end_hour: float = 5.0,
    ) -> None:
        if not 0 <= window_start_hour < 24 or not 0 <= window_end_hour < 24:
            raise ValidationError("window hours must be in [0, 24)")
        self.inner = inner
        self.window_start_hour = window_start_hour
        self.window_end_hour = window_end_hour

    def seconds_until_window(self, now: float) -> float:
        """Delay from ``now`` until the next window opening (0 if inside)."""
        hour_of_day = (now % (24 * HOUR)) / HOUR
        start, end = self.window_start_hour, self.window_end_hour
        if start <= end:
            inside = start <= hour_of_day < end
        else:  # window wraps midnight
            inside = hour_of_day >= start or hour_of_day < end
        if inside:
            return 0.0
        delta_hours = (start - hour_of_day) % 24
        return delta_hours * HOUR

    def schedule(self, tasks, backend, simulator=None, on_result=None):
        if simulator is None:
            raise SchedulingError("OffPeakScheduler requires a simulator")
        delay = self.seconds_until_window(simulator.now)
        if delay == 0:
            return self.inner.schedule(tasks, backend, simulator, on_result)
        simulator.after(
            delay,
            lambda: self.inner.schedule(tasks, backend, simulator, on_result),
            name="offpeak-window",
        )
        return []
