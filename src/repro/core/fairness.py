"""Admission control with per-database fairness quotas.

A multi-tenant AutoComp deployment (paper §7) compacts tables from many
databases in one cycle, and the ranked candidate list is global — so one
hot tenant whose tables dominate the ranking can consume every execution
slot cycle after cycle, starving the rest of the fleet.
:class:`AdmissionController` sits between selection and execution as an
**act gate** (:attr:`repro.core.pipeline.AutoCompPipeline.act_gates`):
each cycle it admits candidates in rank order subject to a per-database
cap and an optional global cap, and when the global cap binds it spreads
the remaining slots across databases by deficit round-robin so deferred
tenants accumulate priority instead of losing it.

The controller's per-cycle counters are shared across every gate call in
the cycle — a :class:`~repro.core.sharding.ShardedPipeline` invokes the
gate once per shard, and the quota must hold fleet-wide, not per shard —
so the daemon calls :meth:`AdmissionController.begin_cycle` once per
scheduled cycle before any shard acts.
"""

from __future__ import annotations

import threading

from repro.errors import ValidationError


class AdmissionController:
    """Per-database fairness quotas over selected candidates.

    Args:
        max_per_database: most candidates admitted per database per cycle
            (``None`` = unlimited).
        max_total: most candidates admitted in total per cycle across all
            gate calls (``None`` = unlimited).
        telemetry: optional :class:`repro.simulation.Telemetry`; admitted
            and deferred counts are recorded under
            ``autocomp.admission.admitted`` / ``autocomp.admission.deferred``.

    Deferred candidates are not lost: each deferral increments the
    database's *deficit*, and when ``max_total`` forces a choice between
    databases, higher-deficit databases are admitted first (deficit
    round-robin), so a tenant starved in cycle *n* moves up in cycle
    *n + 1*.
    """

    def __init__(
        self,
        max_per_database: int | None = None,
        max_total: int | None = None,
        telemetry=None,
    ) -> None:
        if max_per_database is not None and max_per_database < 1:
            raise ValidationError("max_per_database must be >= 1")
        if max_total is not None and max_total < 1:
            raise ValidationError("max_total must be >= 1")
        self.max_per_database = max_per_database
        self.max_total = max_total
        self.telemetry = telemetry
        self.admitted_total = 0
        self.deferred_total = 0
        self._mutex = threading.Lock()
        self._cycle_by_db: dict[str, int] = {}
        self._cycle_admitted = 0
        self._deficit: dict[str, int] = {}

    def begin_cycle(self) -> None:
        """Reset the per-cycle counters (call once per scheduled cycle)."""
        with self._mutex:
            self._cycle_by_db = {}
            self._cycle_admitted = 0

    def deficits(self) -> dict[str, int]:
        """Current per-database deficits (starved tenants rank higher)."""
        with self._mutex:
            return {db: d for db, d in self._deficit.items() if d > 0}

    def admit(self, candidates: list) -> list:
        """Filter ranked candidates through the quotas; order-preserving.

        Candidates are considered in the given (rank) order.  A candidate
        is deferred when its database hit ``max_per_database`` this cycle,
        or when ``max_total`` is exhausted — except that under a binding
        global cap, candidates from higher-deficit databases are pulled
        forward ahead of lower-deficit ones (then by rank), so the cap is
        shared rather than first-come-first-served.  The admitted list
        preserves the original relative order.
        """
        if not candidates:
            return candidates
        with self._mutex:
            order = list(enumerate(candidates))
            if self.max_total is not None:
                remaining = self.max_total - self._cycle_admitted
                if remaining < len(candidates):
                    # Global cap binds: consider starved databases first.
                    order.sort(
                        key=lambda pair: (
                            -self._deficit.get(self._db_of(pair[1]), 0),
                            pair[0],
                        )
                    )
            admitted_idx = []
            deferred_dbs = []
            for index, candidate in order:
                db = self._db_of(candidate)
                per_db = self._cycle_by_db.get(db, 0)
                over_db = (
                    self.max_per_database is not None and per_db >= self.max_per_database
                )
                over_total = (
                    self.max_total is not None and self._cycle_admitted >= self.max_total
                )
                if over_db or over_total:
                    deferred_dbs.append(db)
                    continue
                self._cycle_by_db[db] = per_db + 1
                self._cycle_admitted += 1
                admitted_idx.append(index)
                if self._deficit.get(db, 0) > 0:
                    self._deficit[db] -= 1
            for db in deferred_dbs:
                self._deficit[db] = self._deficit.get(db, 0) + 1
            self.admitted_total += len(admitted_idx)
            self.deferred_total += len(deferred_dbs)
            if self.telemetry is not None:
                if admitted_idx:
                    self.telemetry.increment(
                        "autocomp.admission.admitted", len(admitted_idx)
                    )
                if deferred_dbs:
                    self.telemetry.increment(
                        "autocomp.admission.deferred", len(deferred_dbs)
                    )
                # Per-decision distributions (duck-typed: plain sinks
                # without histogram support are still accepted here).
                observe = getattr(self.telemetry, "observe", None)
                if observe is not None:
                    from repro.simulation.telemetry import COUNT_BOUNDS

                    observe(
                        "autocomp.hist.admission_admitted",
                        len(admitted_idx),
                        bounds=COUNT_BOUNDS,
                    )
                    observe(
                        "autocomp.hist.admission_deferred",
                        len(deferred_dbs),
                        bounds=COUNT_BOUNDS,
                    )
            admitted_idx.sort()
            return [candidates[i] for i in admitted_idx]

    # The gate signature pipelines call: gate(selected) -> selected.
    __call__ = admit

    @staticmethod
    def _db_of(candidate) -> str:
        key = getattr(candidate, "key", candidate)
        return getattr(key, "database", str(key))
