"""Auto-tuning of compaction triggers (§6.3).

The paper tunes trigger thresholds (small-file count, file entropy) with
the FLAML optimizer inside MLOS, minimising end-to-end workload duration.
Neither is available offline, so this module provides two deterministic
optimisers with the same interface and convergence *shape*:

* :class:`RandomSearchOptimizer` — the baseline MLOS would compare against;
* :class:`CostFrugalOptimizer` — a FLAML-CFO-style local search: start
  from the low-cost end of the space, move to a random neighbour when it
  improves, shrink the step size after repeated failures.

Objectives are plain callables ``params -> float`` (lower is better), so
the same tuner drives any experiment that can score a parameter dict —
the Figure 9 benches score a full simulated LST-Bench run per iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError
from repro.simulation.rng import derive_rng


@dataclass(frozen=True)
class Parameter:
    """One tunable dimension of the search space."""

    name: str
    low: float
    high: float
    #: Sample/step on a log scale (for thresholds spanning decades).
    log: bool = False
    #: Round values to integers (e.g. file-count thresholds).
    integer: bool = False

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ValidationError(f"{self.name}: high must exceed low")
        if self.log and self.low <= 0:
            raise ValidationError(f"{self.name}: log scale requires low > 0")

    def clip(self, value: float) -> float:
        """Clamp into range and round if integer-valued."""
        value = min(max(value, self.low), self.high)
        return float(round(value)) if self.integer else value

    def sample(self, rng) -> float:
        """Uniform (or log-uniform) random value."""
        if self.log:
            value = math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        else:
            value = rng.uniform(self.low, self.high)
        return self.clip(value)

    def neighbor(self, value: float, step: float, rng) -> float:
        """A local move of relative size ``step`` from ``value``."""
        if self.log:
            factor = math.exp(rng.normal(0.0, step))
            return self.clip(value * factor)
        span = self.high - self.low
        return self.clip(value + rng.normal(0.0, step) * span)


@dataclass(frozen=True)
class Trial:
    """One objective evaluation."""

    params: dict[str, float]
    objective: float


@dataclass
class TuningResult:
    """Outcome of an optimisation run."""

    best_params: dict[str, float]
    best_objective: float
    trials: list[Trial] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of objective evaluations performed."""
        return len(self.trials)

    def objective_series(self) -> list[float]:
        """Objective value per iteration (the Figure 9 y-axis)."""
        return [t.objective for t in self.trials]

    def best_so_far_series(self) -> list[float]:
        """Running minimum of the objective (convergence curve)."""
        best = math.inf
        series = []
        for trial in self.trials:
            best = min(best, trial.objective)
            series.append(best)
        return series


class Optimizer:
    """Base class for threshold optimisers."""

    def optimize(
        self,
        objective: Callable[[dict[str, float]], float],
        parameters: list[Parameter],
        iterations: int,
        seed: int = 0,
        warm_start: dict[str, float] | None = None,
    ) -> TuningResult:
        """Minimise ``objective`` over ``parameters``.

        Args:
            objective: ``params -> score`` (lower is better); called once
                per iteration.
            parameters: search-space definition.
            iterations: evaluation budget.
            seed: determinism root.
            warm_start: optional offline prior — parameter values (e.g. the
                Policy Lab's :meth:`~repro.replay.whatif.WhatIfReport.to_priors`)
                used as the first evaluation point instead of a cold start.
                Values are clipped into range; keys outside the search
                space are ignored, missing keys fall back to the
                optimizer's cold-start rule.
        """
        raise NotImplementedError

    @staticmethod
    def _validate(parameters: list[Parameter], iterations: int) -> None:
        if not parameters:
            raise ValidationError("need at least one parameter")
        names = [p.name for p in parameters]
        if len(names) != len(set(names)):
            raise ValidationError(f"duplicate parameter names: {names}")
        if iterations <= 0:
            raise ValidationError("iterations must be positive")

    @staticmethod
    def _warm_point(
        parameters: list[Parameter],
        warm_start: dict[str, float],
        fallback: Callable[[Parameter], float],
    ) -> dict[str, float]:
        """The warm-start evaluation point: prior values clipped, rest cold."""
        return {
            p.name: p.clip(float(warm_start[p.name]))
            if p.name in warm_start
            else fallback(p)
            for p in parameters
        }


class RandomSearchOptimizer(Optimizer):
    """Independent uniform samples each iteration.

    With a ``warm_start``, the first evaluation is the prior point (missing
    dimensions sampled) and the remaining budget stays fully random.
    """

    def optimize(self, objective, parameters, iterations, seed=0, warm_start=None):
        self._validate(parameters, iterations)
        rng = derive_rng(seed, "random-search")
        trials: list[Trial] = []
        if warm_start is not None:
            params = self._warm_point(parameters, warm_start, lambda p: p.sample(rng))
            trials.append(Trial(params=params, objective=float(objective(params))))
        while len(trials) < iterations:
            params = {p.name: p.sample(rng) for p in parameters}
            trials.append(Trial(params=params, objective=float(objective(params))))
        best = min(trials, key=lambda t: t.objective)
        return TuningResult(
            best_params=dict(best.params), best_objective=best.objective, trials=trials
        )


class CostFrugalOptimizer(Optimizer):
    """FLAML-CFO-style local search.

    Starts at the low end of every parameter (the cheap-to-evaluate corner
    in FLAML's cost-frugal framing), proposes Gaussian neighbours of the
    incumbent, moves on improvement, and shrinks the step after
    ``patience`` consecutive failures.  Deterministic under a fixed seed.

    Args:
        initial_step: initial relative step size.
        shrink: multiplicative step decay on stagnation.
        patience: failures tolerated before shrinking.
        start_at_low: start at each parameter's low end (True, CFO-style)
            or at a random point.
    """

    def __init__(
        self,
        initial_step: float = 0.25,
        shrink: float = 0.6,
        patience: int = 3,
        start_at_low: bool = True,
    ) -> None:
        if not 0 < shrink < 1:
            raise ValidationError("shrink must be in (0, 1)")
        if initial_step <= 0:
            raise ValidationError("initial_step must be positive")
        if patience < 1:
            raise ValidationError("patience must be >= 1")
        self.initial_step = initial_step
        self.shrink = shrink
        self.patience = patience
        self.start_at_low = start_at_low

    def optimize(self, objective, parameters, iterations, seed=0, warm_start=None):
        self._validate(parameters, iterations)
        rng = derive_rng(seed, "cfo")
        if warm_start is not None:
            # An offline prior (e.g. a Policy Lab what-if winner) replaces
            # the cold corner as the incumbent the local search refines.
            cold = (lambda p: p.clip(p.low)) if self.start_at_low else (lambda p: p.sample(rng))
            incumbent = self._warm_point(parameters, warm_start, cold)
        elif self.start_at_low:
            incumbent = {p.name: p.clip(p.low) for p in parameters}
        else:
            incumbent = {p.name: p.sample(rng) for p in parameters}
        incumbent_score = float(objective(incumbent))
        trials = [Trial(params=dict(incumbent), objective=incumbent_score)]

        step = self.initial_step
        failures = 0
        for _ in range(iterations - 1):
            proposal = {
                p.name: p.neighbor(incumbent[p.name], step, rng) for p in parameters
            }
            score = float(objective(proposal))
            trials.append(Trial(params=dict(proposal), objective=score))
            if score < incumbent_score:
                incumbent, incumbent_score = proposal, score
                failures = 0
            else:
                failures += 1
                if failures >= self.patience:
                    step *= self.shrink
                    failures = 0
        return TuningResult(
            best_params=dict(incumbent), best_objective=incumbent_score, trials=trials
        )
