"""File-based per-table/partition compaction locks with crash-safe recovery.

The daemonized control plane (:mod:`repro.core.daemon`) may run several
AutoComp instances against one catalog — overlapping scheduled cycles in
one process, or independent daemon processes sharing a warehouse.  The
invariant they must uphold is the paper's §7 production rule: **no unit is
ever double-compacted**.  :class:`LockManager` enforces it with plain
lock *files* (the Arc compaction daemon's approach): a lock is an
``O_CREAT | O_EXCL`` file in a shared directory, so acquisition is atomic
across threads, processes and (on a shared filesystem) machines, and a
crashed daemon leaves evidence — a lock file whose owning pid is dead or
whose heartbeat mtime has gone stale — that :meth:`LockManager.recover_stale`
reclaims on the next startup.

Every lock transition is appended to a shared **audit log**
(``audit.jsonl`` in the lock directory): ``acquire`` / ``release`` /
``contend`` / ``reclaim``, plus ``compact_commit`` records written by the
catalog's lock hooks (:meth:`repro.catalog.catalog.Catalog.attach_locks`)
whenever a rewrite commits.  :func:`verify_audit` replays the log and
proves the invariant after the fact: every compaction committed under a
held lock, no key was ever held by two owners at once, and no
(key, context) pair was compacted twice — the check the daemon soak and
crash-recovery suites gate on.

Ordering discipline: ``acquire`` lines are appended *after* the lock file
is created, ``release``/``reclaim`` lines *before* it is removed.  Any
later acquisition of the same key can only create its file after the
previous holder removed it, so its audit line lands after the previous
holder's release line — the log's per-key event order is therefore
consistent even across racing processes (appends of one JSON line are
atomic on POSIX for ``O_APPEND`` writes under ``PIPE_BUF``).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ValidationError

#: File name of the shared audit log inside the lock directory.
AUDIT_LOG = "audit.jsonl"

#: Suffix of lock files inside the lock directory.
LOCK_SUFFIX = ".lock"

_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")

#: Per-process counter so several managers in one process (e.g. two daemon
#: instances in a soak test) get distinct owner identities.
_OWNER_COUNTER = threading.Lock(), [0]


def lock_slug(key: object) -> str:
    """A filesystem-safe, collision-resistant file stem for a lock key.

    Readable prefix (sanitised key string, truncated) plus a short content
    hash, so distinct keys can never alias after sanitisation.
    """
    text = str(key)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=6).hexdigest()
    prefix = _SLUG_UNSAFE.sub("_", text)[:80].strip("_") or "key"
    return f"{prefix}.{digest}"


def default_owner() -> str:
    """A distinct owner identity: ``pid<pid>.<per-process counter>``."""
    lock, counter = _OWNER_COUNTER
    with lock:
        counter[0] += 1
        return f"pid{os.getpid()}.{counter[0]}"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (best effort, POSIX)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


@dataclass(frozen=True)
class LockInfo:
    """Parsed contents of one lock file."""

    key: str
    table: str
    owner: str
    pid: int
    acquired_at: float
    context: str | None = None
    path: str = ""


@dataclass
class AuditSummary:
    """Outcome of :func:`verify_audit` over one lock directory."""

    events: int = 0
    acquires: int = 0
    releases: int = 0
    contends: int = 0
    reclaims: int = 0
    compact_commits: int = 0
    #: ``(key, context)`` pairs compacted more than once, with counts.
    double_compactions: dict = field(default_factory=dict)
    #: Human-readable invariant violations (empty = clean log).
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the log upholds every no-double-compaction invariant."""
        return not self.violations


class LockManager:
    """Per-key compaction locks over a shared directory.

    Args:
        lock_dir: shared directory holding lock files and the audit log
            (created if missing).  Concurrent daemons coordinating on one
            catalog must point at the *same* directory.
        owner: identity stamped into lock files and audit lines; defaults
            to a per-process-unique ``pid<pid>.<n>``.
        stale_after_s: a lock whose heartbeat mtime is older than this is
            reclaimable even when its pid looks alive (covers hung
            daemons and pid reuse); the holder's heartbeat must therefore
            beat faster than this.
        heartbeat_interval_s: cadence of the optional background
            heartbeat thread (defaults to ``stale_after_s / 3``).
        clock: wall-clock source for timestamps (monkeypatchable in tests).
        telemetry: optional metric sink; every audit event also bumps an
            ``autocomp.locks.<event>`` counter there, and acquire attempts
            feed the ``autocomp.hist.lock_wait_s`` wait histogram — so the
            exporter surfaces lock behavior without parsing the audit log.

    Attributes:
        context: free-form trigger/cycle identifier stamped into
            subsequently acquired locks and their audit lines — the daemon
            sets it per cycle (``cycle:<n>``) or per backfill unit, and
            :func:`verify_audit` uses it to prove at-most-once-per-trigger
            compaction.
    """

    def __init__(
        self,
        lock_dir: str | os.PathLike,
        owner: str | None = None,
        stale_after_s: float = 30.0,
        heartbeat_interval_s: float | None = None,
        clock=time.time,
        telemetry=None,
    ) -> None:
        if stale_after_s <= 0:
            raise ValidationError("stale_after_s must be positive")
        if heartbeat_interval_s is not None and heartbeat_interval_s <= 0:
            raise ValidationError("heartbeat_interval_s must be positive")
        self.lock_dir = os.fspath(lock_dir)
        os.makedirs(self.lock_dir, exist_ok=True)
        self.owner = owner if owner is not None else default_owner()
        self.stale_after_s = stale_after_s
        self.heartbeat_interval_s = (
            heartbeat_interval_s if heartbeat_interval_s is not None else stale_after_s / 3.0
        )
        self.context: str | None = None
        self.telemetry = telemetry
        self._clock = clock
        self._held: dict[str, str] = {}  # key string -> lock file path
        self._mutex = threading.Lock()
        self._hb_stop: threading.Event | None = None
        self._hb_thread: threading.Thread | None = None
        self.audit_path = os.path.join(self.lock_dir, AUDIT_LOG)

    # --- acquisition -----------------------------------------------------------

    def _path_for(self, key: object) -> str:
        return os.path.join(self.lock_dir, lock_slug(key) + LOCK_SUFFIX)

    def acquire(self, key: object, context: str | None = None) -> bool:
        """Try to take the lock for ``key``; never blocks.

        Returns ``True`` on success (the key is now held by this manager)
        and ``False`` when any holder — this manager included — already
        has it.  Contended attempts are audited, so the soak's lock audit
        shows how often concurrent daemons actually collided.
        """
        text = str(key)
        path = self._path_for(key)
        ctx = context if context is not None else self.context
        payload = {
            "key": text,
            "table": getattr(key, "qualified_table", text),
            "owner": self.owner,
            "pid": os.getpid(),
            "acquired_at": self._clock(),
            "context": ctx,
        }
        wait_start = time.perf_counter()
        try:
            with self._mutex:
                if text in self._held:
                    self._audit("contend", key=text, context=ctx)
                    return False
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    self._audit("contend", key=text, context=ctx)
                    return False
                with os.fdopen(fd, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                self._held[text] = path
                self._audit("acquire", key=text, context=ctx)
                return True
        finally:
            if self.telemetry is not None:
                # Mutex wait + lock-file creation: what a cycle actually
                # stalls on when sibling threads/daemons contend.
                self.telemetry.observe(
                    "autocomp.hist.lock_wait_s", time.perf_counter() - wait_start
                )

    def release(self, key: object) -> bool:
        """Release a held lock; returns whether this manager held it."""
        text = str(key)
        with self._mutex:
            path = self._held.pop(text, None)
            if path is None:
                return False
            # Audit *before* unlinking: the next acquirer's audit line can
            # then only land after ours (see module docstring).
            self._audit("release", key=text)
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            return True

    def release_all(self) -> int:
        """Release every lock this manager holds; returns the count."""
        with self._mutex:
            held = list(self._held)
        released = 0
        for key in held:
            released += bool(self.release(key))
        return released

    def held_keys(self) -> list[str]:
        """Key strings currently held by this manager, sorted."""
        with self._mutex:
            return sorted(self._held)

    def holds(self, key: object) -> bool:
        """Whether this manager currently holds ``key``."""
        with self._mutex:
            return str(key) in self._held

    # --- inspection / recovery -------------------------------------------------

    def _read_lock(self, path: str) -> LockInfo | None:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, json.JSONDecodeError):
            return None
        return LockInfo(
            key=str(data.get("key", "")),
            table=str(data.get("table", data.get("key", ""))),
            owner=str(data.get("owner", "")),
            pid=int(data.get("pid", 0)),
            acquired_at=float(data.get("acquired_at", 0.0)),
            context=data.get("context"),
            path=path,
        )

    def list_locks(self) -> list[LockInfo]:
        """Every lock file currently present in the directory, parsed."""
        infos = []
        try:
            names = sorted(os.listdir(self.lock_dir))
        except FileNotFoundError:
            return []
        for name in names:
            if not name.endswith(LOCK_SUFFIX):
                continue
            info = self._read_lock(os.path.join(self.lock_dir, name))
            if info is not None:
                infos.append(info)
        return infos

    def inspect_table(self, qualified_table: str) -> LockInfo | None:
        """The current lock (any scope, any owner) over ``db.table``, if any.

        Reads lock files from disk, so it sees locks held by *other*
        daemon instances too — the catalog's compaction-audit hook uses it
        to stamp each rewrite commit with the holder that covered it.
        """
        for info in self.list_locks():
            if info.table == qualified_table or info.key == qualified_table:
                return info
        return None

    def is_stale(self, info: LockInfo) -> bool:
        """Whether a lock file is reclaimable (dead pid or stale heartbeat)."""
        with self._mutex:
            held_by_us = info.key in self._held
        if held_by_us:
            return False  # never reclaim our own
        try:
            mtime = os.path.getmtime(info.path)
        except OSError:
            return False  # vanished — nothing to reclaim
        if not _pid_alive(info.pid):
            return True
        return (self._clock() - mtime) > self.stale_after_s

    def recover_stale(self) -> list[str]:
        """Reclaim crash-leftover locks; returns the reclaimed key strings.

        Run once on daemon startup (and safe to run any time): a lock is
        reclaimed when its owning pid is dead, or when its heartbeat mtime
        is older than ``stale_after_s`` — a live holder heartbeats faster
        than that, so only crashed or wedged owners lose their locks.
        """
        reclaimed = []
        for info in self.list_locks():
            if not self.is_stale(info):
                continue
            self._audit(
                "reclaim",
                key=info.key,
                stale_owner=info.owner,
                stale_pid=info.pid,
                context=info.context,
            )
            try:
                os.unlink(info.path)
            except FileNotFoundError:
                continue
            reclaimed.append(info.key)
        return reclaimed

    # --- heartbeat --------------------------------------------------------------

    def heartbeat(self) -> int:
        """Touch every held lock's mtime; returns how many were touched."""
        with self._mutex:
            paths = list(self._held.values())
        touched = 0
        for path in paths:
            try:
                os.utime(path)
                touched += 1
            except OSError:
                continue
        return touched

    def start_heartbeat(self) -> None:
        """Start the background heartbeat thread (idempotent).

        Keeps held locks' mtimes fresh so long-running cycles are never
        mistaken for crashes by a sibling daemon's staleness check.
        """
        if self._hb_thread is not None:
            return
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(self.heartbeat_interval_s):
                self.heartbeat()

        thread = threading.Thread(target=beat, name="lock-heartbeat", daemon=True)
        self._hb_stop = stop
        self._hb_thread = thread
        thread.start()

    def stop_heartbeat(self) -> None:
        """Stop the background heartbeat thread (idempotent)."""
        if self._hb_thread is None:
            return
        assert self._hb_stop is not None
        self._hb_stop.set()
        self._hb_thread.join(timeout=5.0)
        self._hb_thread = None
        self._hb_stop = None

    # --- audit ------------------------------------------------------------------

    def _audit(self, event: str, **payload: object) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(f"autocomp.locks.{event}")
        record = {
            "event": event,
            "owner": self.owner,
            "pid": os.getpid(),
            "ts": self._clock(),
            **payload,
        }
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        fd = os.open(self.audit_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def audit_compaction(self, qualified_table: str, version: int | None = None) -> None:
        """Record one rewrite commit against the current lock state.

        Called by the catalog's lock hook on every ``replace`` commit: the
        lock covering the table (held by *any* owner — read from disk) is
        looked up and stamped into a ``compact_commit`` audit line, which
        is what lets :func:`verify_audit` prove after the fact that every
        compaction ran under a lock and that no (key, context) pair was
        compacted twice.
        """
        info = self.inspect_table(qualified_table)
        self._audit(
            "compact_commit",
            key=qualified_table,
            held=info is not None,
            holder=info.owner if info is not None else None,
            context=info.context if info is not None else None,
            version=version,
        )

    def close(self) -> None:
        """Stop heartbeating and release everything this manager holds."""
        self.stop_heartbeat()
        self.release_all()

    def __enter__(self) -> "LockManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_audit(lock_dir: str | os.PathLike) -> list[dict]:
    """Parse the audit log of a lock directory (missing log = empty)."""
    path = os.path.join(os.fspath(lock_dir), AUDIT_LOG)
    records = []
    try:
        with open(path, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        return []
    return records


def verify_audit(lock_dir: str | os.PathLike) -> AuditSummary:
    """Replay an audit log and check the no-double-compaction invariants.

    Violations collected:

    * an ``acquire`` while the same key was still held by another owner
      (no intervening ``release``/``reclaim``);
    * a ``release``/``reclaim`` of a key held by a different owner than
      the releaser claims (reclaims are exempt — they name the stale
      owner explicitly);
    * a ``compact_commit`` with ``held == False`` (a rewrite committed
      outside any lock);
    * the same ``(key, context)`` compacted more than once — the
      "never twice for the same trigger" rule (commits with no context
      are exempt: they predate lock-hook coverage).
    """
    summary = AuditSummary()
    holder: dict[str, str] = {}
    compacted: dict[tuple, int] = {}
    for record in read_audit(lock_dir):
        summary.events += 1
        event = record.get("event")
        key = record.get("key", "")
        owner = record.get("owner", "")
        if event == "acquire":
            summary.acquires += 1
            if key in holder:
                summary.violations.append(
                    f"acquire of {key!r} by {owner!r} while held by {holder[key]!r}"
                )
            holder[key] = owner
        elif event == "release":
            summary.releases += 1
            current = holder.pop(key, None)
            if current is not None and current != owner:
                summary.violations.append(
                    f"release of {key!r} by {owner!r} but holder was {current!r}"
                )
        elif event == "reclaim":
            summary.reclaims += 1
            holder.pop(key, None)
        elif event == "contend":
            summary.contends += 1
        elif event == "compact_commit":
            summary.compact_commits += 1
            if not record.get("held", False):
                summary.violations.append(f"compaction of {key!r} committed without a lock")
            context = record.get("context")
            if context is not None:
                pair = (key, context)
                compacted[pair] = compacted.get(pair, 0) + 1
    for pair, count in sorted(compacted.items()):
        if count > 1:
            summary.double_compactions["/".join(pair)] = count
            summary.violations.append(
                f"{pair[0]!r} compacted {count}x for trigger {pair[1]!r}"
            )
    return summary
