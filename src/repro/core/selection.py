"""Selectors: pick the candidates that fit the budget (§4.3, §7).

After ranking, AutoComp selects the top-k candidates where k is either

* fixed (:class:`TopKSelector`) — LinkedIn's initial conservative rollout
  used k≈10 for predictable behaviour, or
* dynamic (:class:`BudgetSelector`) — the week-22 transition in Figure 10b:
  greedily admit ranked candidates while their estimated compute cost fits
  the allocated budget (226 TBHr in production, compacting ≈2500 tables
  per cycle).
"""

from __future__ import annotations

import abc

from repro.core.candidates import Candidate
from repro.errors import ValidationError


class Selector(abc.ABC):
    """Chooses which ranked candidates proceed to the act phase."""

    @abc.abstractmethod
    def select(self, ranked: list[Candidate]) -> list[Candidate]:
        """Subset of ``ranked`` to execute, preserving rank order."""


class TopKSelector(Selector):
    """Fixed-k selection.

    Args:
        k: number of candidates per cycle (``k <= 0`` selects none).
    """

    def __init__(self, k: int) -> None:
        self.k = k

    def select(self, ranked: list[Candidate]) -> list[Candidate]:
        if self.k <= 0:
            return []
        return ranked[: self.k]


class BudgetSelector(Selector):
    """Dynamic-k greedy budget packing.

    Walks the ranking in order, admitting each candidate whose estimated
    cost still fits the remaining budget — the paper's "reasonable greedy
    heuristic [...] fit as many high-priority compaction tasks as possible
    within the budget".

    Args:
        budget: total budget per cycle, in the cost trait's unit (GBHr).
        cost_trait: trait holding each candidate's estimated cost.
        max_candidates: optional hard cap on selected count.
        skip_unaffordable: if True (default), a too-expensive candidate is
            skipped and the walk continues with cheaper ones; if False the
            walk stops at the first overflow (strict priority order).
    """

    def __init__(
        self,
        budget: float,
        cost_trait: str = "compute_cost_gbhr",
        max_candidates: int | None = None,
        skip_unaffordable: bool = True,
    ) -> None:
        if budget < 0:
            raise ValidationError(f"budget must be >= 0, got {budget}")
        if max_candidates is not None and max_candidates < 0:
            raise ValidationError("max_candidates must be >= 0")
        self.budget = budget
        self.cost_trait = cost_trait
        self.max_candidates = max_candidates
        self.skip_unaffordable = skip_unaffordable

    def select(self, ranked: list[Candidate]) -> list[Candidate]:
        selected: list[Candidate] = []
        remaining = self.budget
        for candidate in ranked:
            if self.max_candidates is not None and len(selected) >= self.max_candidates:
                break
            cost = candidate.trait(self.cost_trait)
            if cost < 0:
                raise ValidationError(
                    f"negative cost {cost} for {candidate.key}; "
                    f"is {self.cost_trait!r} really a cost trait?"
                )
            if cost <= remaining:
                selected.append(candidate)
                remaining -= cost
            elif not self.skip_unaffordable:
                break
        return selected


class AllSelector(Selector):
    """Select everything the policy ranked (unconstrained scenario)."""

    def select(self, ranked: list[Candidate]) -> list[Candidate]:
        return list(ranked)
