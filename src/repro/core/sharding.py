"""Scale-out control plane: sharded parallel OODA cycles.

The paper's deployment (§7) onboards thousands of tables per month while
holding cycle cadence fixed, so cycle latency must not grow linearly with
fleet size.  This module shards one logical AutoComp instance across N
per-shard :class:`~repro.core.pipeline.AutoCompPipeline` instances:

* candidate keys are **consistent-hashed** across shards
  (:func:`shard_for_key` — a stable content hash, so a key lands on the
  same shard in every cycle and every process);
* each shard runs the expensive **observe/orient** phases over only its
  slice — inline, on a persistent thread pool, or (for connectors that can
  export picklable :class:`~repro.core.workers.ShardWorkSpec` snapshots)
  on a persistent **process pool** that sidesteps the GIL for CPU-bound
  observation — optionally backed by an incremental
  :class:`~repro.core.statscache.StatsCache`;
* the **decide** phase runs either globally (``selection="global"``:
  per-shard candidates are merged back into generation order and ranked
  once, making the merged cycle *exactly* equivalent to an unsharded one)
  or locally (``selection="local"``: each shard ranks and selects under a
  split budget — :func:`split_selector` — the fully independent
  multi-worker deployment mode);
* per-shard :class:`~repro.core.pipeline.CycleReport`\\ s are merged into a
  fleet-level report, and per-shard metrics land in scoped telemetry
  namespaces (``autocomp.shard00.…``).

Determinism (NFR2) is preserved in both modes: hashing is content-based,
merging follows generation order, and the act phase executes in a single
deterministic order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.candidates import Candidate, CandidateKey
from repro.core.pipeline import AutoCompPipeline, CycleReport
from repro.core.ranking import RankingPolicy
from repro.core.selection import AllSelector, BudgetSelector, Selector, TopKSelector
from repro.core.workers import (
    TRANSPORT_KINDS,
    ShardDecision,
    WorkerPool,
    process_workers_available,
    run_shard_work,
)
from repro.errors import ValidationError, WorkerError
from repro.obs.tracing import Tracer
from repro.simulation.simulator import Simulator
from repro.simulation.telemetry import RATIO_BOUNDS, Telemetry

#: Valid decide-phase placements.
SELECTION_MODES = ("global", "local")

#: Valid pipeline-level worker modes: the two pool modes plus ``auto``,
#: which probes both once and then picks per cycle from observed
#: observe-phase wall times (with hysteresis, so it does not flap).
PIPELINE_WORKER_MODES = ("threads", "processes", "auto")


def shard_for_key(key: CandidateKey, n_shards: int) -> int:
    """The shard owning ``key``: a stable content hash mod ``n_shards``.

    Uses BLAKE2b over the key's canonical string form, so assignment is
    independent of Python's per-process hash randomisation — the same key
    maps to the same shard across cycles, processes and machines.
    """
    if n_shards <= 0:
        raise ValidationError(f"n_shards must be positive, got {n_shards}")
    digest = hashlib.blake2b(str(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


def _split_count(total: int, n_shards: int) -> list[int]:
    base, extra = divmod(max(total, 0), n_shards)
    return [base + (1 if i < extra else 0) for i in range(n_shards)]


def split_selector(selector: Selector, n_shards: int) -> list[Selector]:
    """Split one selection budget into ``n_shards`` per-shard selectors.

    Top-k budgets distribute the k as evenly as possible (earlier shards
    take the remainder); GBHr budgets divide evenly.  Used by the local
    selection mode, where shards decide independently.

    Raises:
        ValidationError: for selector types without a known split rule —
            pass per-shard selectors explicitly instead.
    """
    if n_shards <= 0:
        raise ValidationError(f"n_shards must be positive, got {n_shards}")
    if isinstance(selector, TopKSelector):
        return [TopKSelector(k) for k in _split_count(selector.k, n_shards)]
    if isinstance(selector, BudgetSelector):
        caps: list[int | None]
        if selector.max_candidates is None:
            caps = [None] * n_shards
        else:
            caps = list(_split_count(selector.max_candidates, n_shards))
        return [
            BudgetSelector(
                selector.budget / n_shards,
                cost_trait=selector.cost_trait,
                max_candidates=cap,
                skip_unaffordable=selector.skip_unaffordable,
            )
            for cap in caps
        ]
    if isinstance(selector, AllSelector):
        return [AllSelector() for _ in range(n_shards)]
    raise ValidationError(
        f"no split rule for selector type {type(selector).__name__}; "
        "provide per-shard selectors explicitly"
    )


@dataclass
class ShardedCycleReport:
    """One fleet-level cycle: the merged view plus per-shard detail."""

    #: Fleet-level merged report (counts summed, selection in rank order,
    #: results shared with the act phase).
    report: CycleReport
    #: Per-shard reports (observation counts and each shard's share of the
    #: selection).
    shard_reports: list[CycleReport] = field(default_factory=list)
    #: Wall-clock seconds each shard spent in observe/orient.
    shard_observe_wall_s: list[float] = field(default_factory=list)
    #: Wall-clock seconds for the whole cycle.
    cycle_wall_s: float = 0.0

    @property
    def selected(self) -> list[CandidateKey]:
        """Fleet-level selection (delegates to the merged report)."""
        return self.report.selected


class ShardedPipeline:
    """N per-shard pipelines behind one fleet-level OODA cycle.

    All shards are expected to view the same world (their connectors list
    the same candidates) and to share filter/trait configuration; the
    sharded control plane partitions the *work*, not the data.  Candidate
    listing therefore happens once, through shard 0's connector.

    Args:
        shards: the per-shard pipelines (their connectors typically carry
            per-shard stats caches for incremental observation).
        policy: fleet-level ranking policy for global selection
            (default: shard 0's policy).
        selector: fleet-level selection budget (default: shard 0's
            selector); split across shards in local mode.
        generation: candidate-generation strategy (default: shard 0's).
        selection: ``"global"`` (merge, then rank/select once — exactly
            equivalent to the unsharded pipeline) or ``"local"``
            (per-shard decide under split budgets).
        merge_order: ``"generation"`` (default) rebuilds the unsharded
            candidate order before the global rank — correct for any
            policy; ``"any"`` concatenates per-shard results, which is
            cheaper and produces identical rankings for order-insensitive
            policies (every built-in policy normalises over the candidate
            *set* and ends in a key-tie-broken total-order sort, so input
            order never matters).
        workers: observe/orient execution mode — ``"threads"`` (the
            default: a persistent thread pool, works with any connector,
            overlaps numpy-released work), ``"processes"`` (a persistent
            process pool for true multi-core CPU-bound observation; every
            shard connector must provide a
            :class:`~repro.core.transport.WorkerTransport`, i.e. be able
            to export shippable shard work) or ``"auto"``
            (probe threads then processes once each, then pick per cycle
            whichever mode's observed observe-phase wall time is lower —
            with hysteresis, so a mode must beat the incumbent by
            ``auto_hysteresis`` to take over; degrades to pure thread mode
            when process workers are unavailable).  All modes produce
            byte-identical cycle reports for the same inputs, so the
            adaptive choice is purely an execution decision.
        worker_decide: ship the decide phase into process workers for
            ``selection="local"`` cycles.  ``None`` (default) enables it
            exactly when a cycle runs on the process pool with local
            selection; ``True`` requires local selection and forces it on
            process cycles; ``False`` keeps decide on the coordinator.
            Worker-side decide shrinks the per-shard return payload from
            O(shard candidates) to O(selected) — the worker sends back
            counts plus the selected candidates only — at the cost of
            cache warmth for unselected dirty tables (their observations
            die with the worker).  Reports stay byte-identical either
            way.
        transport: the worker-transport kind process-mode cycles use to
            ship shard work (one of
            :data:`~repro.core.workers.TRANSPORT_KINDS`).  ``None``
            (default) negotiates the best kind every shard connector
            advertises: ``"columnar"`` — flat arrays in shared memory out,
            trait matrices and selection references back — when all
            shards speak it, else ``"pickle"`` (per-object encoding).
            The :class:`~repro.core.workers.WorkerPool` additionally
            verifies, once per pool, that the worker side runs the same
            spec version and transport before any spec ships.  Thread and
            inline cycles never ship, so the knob only affects process
            cycles; reports stay byte-identical across transports.
        max_workers: pool width; defaults to
            ``min(len(shards), cpu_count)``; 1 runs shards inline.
        auto_hysteresis: relative improvement the non-incumbent mode must
            show before ``workers="auto"`` switches (default 20%).
        auto_probe_interval: every this many auto cycles, run one cycle in
            the *non-incumbent* mode to refresh its wall sample (default
            16; 0 disables).  Without re-probing, the loser's sample
            would freeze at whatever its last — possibly cold-cache —
            probe measured, and auto mode could latch onto the wrong
            executor permanently.
        telemetry: fleet-level metric sink (per-shard metrics are recorded
            under ``autocomp.shard<i>`` scopes of this sink; auto mode
            also records ``autocomp.fleet.worker_mode`` and per-mode
            observe walls there).
        tracer: optional :class:`repro.obs.tracing.Tracer`.  Each cycle
            produces one ``cycle → observe → shard → …`` span tree; in
            process mode the shard span's context ships inside the
            :class:`~repro.core.workers.ShardWorkSpec` and the worker's
            observe/decide spans are stitched back into this tracer.
            Assigning ``pipeline.tracer`` after construction also works
            (it propagates to every shard pipeline).

    The pool is part of the pipeline's lifecycle: spawned lazily on the
    first concurrent cycle, reused by every later cycle, and shut down by
    :meth:`close` (the pipeline is also a context manager).
    """

    def __init__(
        self,
        shards: Sequence[AutoCompPipeline],
        policy: RankingPolicy | None = None,
        selector: Selector | None = None,
        generation: str | None = None,
        selection: str = "global",
        merge_order: str = "generation",
        workers: str = "threads",
        worker_decide: bool | None = None,
        transport: str | None = None,
        max_workers: int | None = None,
        auto_hysteresis: float = 0.2,
        auto_probe_interval: int = 16,
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if not shards:
            raise ValidationError("ShardedPipeline needs at least one shard")
        if selection not in SELECTION_MODES:
            raise ValidationError(
                f"unknown selection mode {selection!r}; expected one of {SELECTION_MODES}"
            )
        if merge_order not in ("generation", "any"):
            raise ValidationError(
                f"unknown merge order {merge_order!r}; expected 'generation' or 'any'"
            )
        if workers not in PIPELINE_WORKER_MODES:
            raise ValidationError(
                f"unknown worker mode {workers!r}; expected one of {PIPELINE_WORKER_MODES}"
            )
        if worker_decide and selection != "local":
            raise ValidationError(
                "worker_decide=True needs selection='local': global "
                "selection must see every shard's survivors at once, so "
                "it always decides on the coordinator"
            )
        if not 0.0 <= auto_hysteresis < 1.0:
            raise ValidationError(
                f"auto_hysteresis must be in [0, 1), got {auto_hysteresis}"
            )
        if auto_probe_interval < 0:
            raise ValidationError(
                f"auto_probe_interval must be >= 0, got {auto_probe_interval}"
            )
        self.merge_order = merge_order
        self.shards = list(shards)
        self.policy = policy if policy is not None else self.shards[0].policy
        self.selector = selector if selector is not None else self.shards[0].selector
        self.generation = generation if generation is not None else self.shards[0].generation
        self.selection = selection
        worker_kinds = [
            tuple(shard.connector.worker_transport_kinds()) for shard in self.shards
        ]
        worker_observe_capable = all(worker_kinds)
        if workers == "processes" and not worker_observe_capable:
            unsupported = [
                type(shard.connector).__name__
                for shard, kinds in zip(self.shards, worker_kinds)
                if not kinds
            ]
            raise ValidationError(
                "workers='processes' needs every shard connector to "
                "provide a worker transport (override "
                "Connector.worker_transport, or keep the legacy "
                "worker-observe method trio); these do not: "
                f"{sorted(set(unsupported))}. "
                "Use the thread-pool fallback (workers='threads')."
            )
        if transport is not None:
            if transport not in TRANSPORT_KINDS:
                raise ValidationError(
                    f"unknown worker transport {transport!r}; "
                    f"expected one of {TRANSPORT_KINDS}"
                )
            unsupported = [
                type(shard.connector).__name__
                for shard, kinds in zip(self.shards, worker_kinds)
                if kinds and transport not in kinds
            ]
            if unsupported and workers != "threads":
                raise ValidationError(
                    f"worker transport {transport!r} is not spoken by every "
                    f"shard connector: {sorted(set(unsupported))} "
                    "(connectors advertise their kinds via "
                    "worker_transport_kinds)"
                )
            self.transport = transport
        elif worker_observe_capable and all(
            "columnar" in kinds for kinds in worker_kinds
        ):
            self.transport = "columnar"
        else:
            self.transport = "pickle"
        #: Per-shard transports, created lazily on the first process-mode
        #: cycle (so thread-only pipelines never trigger the legacy
        #: connector deprecation shim) and memoised for the pipeline's
        #: lifetime.
        self._transports: list = [None] * len(self.shards)
        self.workers = workers
        self.worker_decide = worker_decide
        self.auto_hysteresis = auto_hysteresis
        self.auto_probe_interval = auto_probe_interval
        if max_workers is None:
            max_workers = min(len(self.shards), os.cpu_count() or 1)
        if max_workers <= 0:
            raise ValidationError("max_workers must be positive")
        self.max_workers = max_workers
        # Persistent worker pools, one per pool mode actually used: a
        # fresh executor per cycle would pay spawn cost every cycle.
        # Spawned lazily — single-shard or inline pipelines never start
        # one, and auto mode only starts the pools it tries.
        self._pools: dict[str, WorkerPool] = {}
        #: Whether ``auto`` may try the process pool at all.
        self._process_capable = worker_observe_capable and process_workers_available()
        #: EWMA of the observe-phase wall per mode (auto mode's evidence).
        self._mode_walls: dict[str, float | None] = {"threads": None, "processes": None}
        #: Auto mode's incumbent once both modes have been probed.
        self._auto_mode = "threads"
        #: Auto cycles decided since warm-up (drives periodic re-probes).
        self._auto_cycles = 0
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._shard_telemetry = [
            self.telemetry.scoped(f"autocomp.shard{i:02d}") for i in range(len(self.shards))
        ]
        self._local_selectors = (
            split_selector(self.selector, len(self.shards))
            if selection == "local"
            else None
        )
        # Consistent hashing is stable per key, so assignments are memoised
        # by object id (connectors intern their keys): an int-keyed dict
        # hit per key per cycle instead of a content hash.  The value pins
        # the key object, so its id cannot be recycled while the entry
        # lives; the size guard in assign() bounds growth for connectors
        # that rebuild key objects every cycle.
        self._shard_of: dict[int, tuple[CandidateKey, int]] = {}
        #: Hard cap on the memo: connectors that rebuild key objects every
        #: cycle would otherwise grow it (and pin keys) without bound.
        self._shard_memo_limit = 262_144
        self._cycle_index = 0
        self._tracer: Tracer | None = None
        self.tracer = tracer

    @property
    def tracer(self) -> Tracer | None:
        """The fleet tracer; assigning one also hands it to every shard
        pipeline, so per-shard act phases emit rewrite spans into the same
        trace."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Tracer | None) -> None:
        self._tracer = value
        for shard in self.shards:
            shard.tracer = value

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def close(self, timeout: float | None = None) -> None:
        """Shut the shard worker pools down (idempotent).

        Call when the pipeline is done (or use the pipeline as a context
        manager); a garbage-collected pipeline's pools are also shut down
        by their finalizers, so forgotten pipelines never strand processes.
        With a ``timeout``, pools drain instead of blocking indefinitely
        (see :meth:`~repro.core.workers.WorkerPool.close`) — the daemon's
        graceful-shutdown path.
        """
        for pool in self._pools.values():
            pool.close(timeout=timeout)
        self._pools.clear()
        for transport in self._transports:
            if transport is not None:
                transport.close()
        self._transports = [None] * len(self.shards)

    def _pool(self, mode: str) -> WorkerPool:
        """The persistent pool for ``mode`` (created on first use)."""
        pool = self._pools.get(mode)
        if pool is None:
            pool = self._pools[mode] = WorkerPool(mode=mode, max_workers=self.max_workers)
        return pool

    def _transport_for(self, shard_index: int, pool: WorkerPool):
        """Shard ``shard_index``'s memoised worker transport, bound to ``pool``."""
        transport = self._transports[shard_index]
        if transport is None:
            transport = self.shards[shard_index].worker_transport(self.transport)
            self._transports[shard_index] = transport
        transport.bind_pool(pool)
        return transport

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: evict ``key`` from the cache of its owning shard.

        Routes through the same consistent hash that places the key's
        observation work (:func:`shard_for_key`), so service notification
        inboxes work unchanged against a sharded plane — a key's cached
        statistics always live (if anywhere) behind the connector of the
        shard that observes it.  With a connector shared across shards
        (the OpenHouse LST assembly) routing is a no-op distinction, but
        per-shard connectors (the fleet plane) genuinely need it.
        """
        self.shards[self._shard_for(key)].connector.invalidate(key)

    def _shard_for(self, key: CandidateKey) -> int:
        memo = self._shard_of
        entry = memo.get(id(key))
        if entry is None or entry[0] is not key:
            shard = shard_for_key(key, len(self.shards))
            if len(memo) >= self._shard_memo_limit:
                memo.clear()
            memo[id(key)] = (key, shard)
            return shard
        return entry[1]

    def assign(self, keys: Sequence[CandidateKey]) -> list[list[CandidateKey]]:
        """Partition ``keys`` across shards, preserving generation order."""
        if len(self._shard_of) > max(65536, 8 * len(keys)):
            self._shard_of.clear()
        shard_keys: list[list[CandidateKey]] = [[] for _ in self.shards]
        memo = self._shard_of
        n = len(self.shards)
        append_of = [bucket.append for bucket in shard_keys]
        for key in keys:
            entry = memo.get(id(key))
            if entry is None or entry[0] is not key:
                shard = shard_for_key(key, n)
                memo[id(key)] = (key, shard)
            else:
                shard = entry[1]
            append_of[shard](key)
        return shard_keys

    def run_cycle(
        self, now: float = 0.0, simulator: Simulator | None = None
    ) -> ShardedCycleReport:
        """Run one fleet-level OODA cycle across all shards.

        Args:
            now: current time; ignored when a simulator is given.
            simulator: event-driven act phase when provided.

        Returns:
            The merged :class:`ShardedCycleReport`.
        """
        if simulator is not None:
            now = simulator.now
        wall_start = time.perf_counter()
        fleet_report = CycleReport(cycle_index=self._cycle_index, started_at=now)
        self._cycle_index += 1
        tracer = self._tracer
        cycle_span = (
            tracer.begin(
                "cycle", cycle_index=fleet_report.cycle_index, shards=len(self.shards)
            )
            if tracer is not None
            else None
        )
        try:
            return self._run_cycle_phases(now, simulator, wall_start, fleet_report)
        finally:
            if cycle_span is not None:
                tracer.end(cycle_span, selected=len(fleet_report.selected))

    def _run_cycle_phases(
        self,
        now: float,
        simulator: Simulator | None,
        wall_start: float,
        fleet_report: CycleReport,
    ) -> ShardedCycleReport:
        tracer = self._tracer

        # Generate: with order-insensitive merging each shard lists its own
        # consistent-hash slice directly (vectorised where the connector
        # supports it); otherwise list once globally and partition, keeping
        # the generation order for the merge.
        if self.merge_order == "any":
            keys: list[CandidateKey] = []
            shard_keys = [
                shard.connector.list_candidates_sharded(
                    self.generation, len(self.shards), shard_index
                )
                for shard_index, shard in enumerate(self.shards)
            ]
            fleet_report.candidates_generated = sum(len(s) for s in shard_keys)
        else:
            keys = self.shards[0].connector.list_candidates(self.generation)
            fleet_report.candidates_generated = len(keys)
            shard_keys = self.assign(keys)
        shard_reports = [shard.begin_cycle(now) for shard in self.shards]
        for report, subset in zip(shard_reports, shard_keys):
            report.candidates_generated = len(subset)

        # Observe + orient each shard's slice (concurrently when possible),
        # in whichever worker mode this cycle runs.
        mode = self._cycle_worker_mode()
        observe_start = time.perf_counter()
        observe_span = (
            tracer.begin("observe", mode=mode) if tracer is not None else None
        )
        try:
            per_shard, observe_wall, decisions = self._observe_all(
                shard_keys, shard_reports, now, mode
            )
        finally:
            if observe_span is not None:
                tracer.end(observe_span)
        self._note_observe_wall(mode, time.perf_counter() - observe_start, now)

        decide_start = time.perf_counter()
        decide_span = tracer.begin("decide") if tracer is not None else None
        try:
            if self.selection == "global":
                selected = self._decide_global(
                    keys, per_shard, fleet_report, shard_reports
                )
            else:
                selected = self._decide_local(
                    per_shard, fleet_report, shard_reports, decisions
                )
        finally:
            if decide_span is not None:
                tracer.end(decide_span)
        self.telemetry.observe(
            "autocomp.hist.decide_wall_s", time.perf_counter() - decide_start
        )

        act_start = time.perf_counter()
        act_span = tracer.begin("act") if tracer is not None else None
        try:
            self._act_all(selected, fleet_report, shard_reports, simulator)
        finally:
            if act_span is not None:
                tracer.end(act_span)
        self.telemetry.observe(
            "autocomp.hist.act_wall_s", time.perf_counter() - act_start
        )

        for shard, report in zip(self.shards, shard_reports):
            shard.finish_cycle(report, now)
        sharded = ShardedCycleReport(
            report=fleet_report,
            shard_reports=shard_reports,
            shard_observe_wall_s=observe_wall,
            cycle_wall_s=time.perf_counter() - wall_start,
        )
        self._record_cycle(sharded, now)
        return sharded

    def _act_all(
        self,
        selected,
        fleet_report: CycleReport,
        shard_reports: list[CycleReport],
        simulator: Simulator | None,
    ) -> None:
        """Act phase: one deterministic global pass, or one pass per shard."""
        if self.selection == "global":

            def invalidate_owner(result) -> None:
                # The act pass runs through shard 0, whose pipeline evicts
                # its own connector's cache; mirror the eviction to the
                # shard that actually owns (observes) the compacted key.
                if result.success:
                    owner = self._shard_for(result.candidate)
                    if owner != 0:
                        self.shards[owner].connector.invalidate(result.candidate)

            # One deterministic act pass in fleet rank order: shards
            # partition the observation work, not the executor.
            self.shards[0].act(
                selected, fleet_report, simulator=simulator, on_result=invalidate_owner
            )
        else:
            for shard, report, chosen in zip(self.shards, shard_reports, selected):
                shard.act(
                    chosen,
                    report,
                    simulator=simulator,
                    on_result=fleet_report.results.append,
                )

    # --- phases ----------------------------------------------------------------

    def _cycle_worker_mode(self) -> str:
        """The worker mode this cycle runs in (fixed, or auto's pick)."""
        if self.workers != "auto":
            return self.workers
        if (
            not self._process_capable
            or self.max_workers <= 1
            or len(self.shards) <= 1
        ):
            return "threads"
        # Warm-up: probe each mode once (threads first — it also warms the
        # caches, giving the process probe a steady-state-shaped cycle).
        for mode in ("threads", "processes"):
            if self._mode_walls[mode] is None:
                return mode
        incumbent = self._auto_mode
        other = "processes" if incumbent == "threads" else "threads"
        other_wall, incumbent_wall = self._mode_walls[other], self._mode_walls[incumbent]
        # Hysteresis: the challenger must beat the incumbent by the
        # configured margin, so near-ties do not flap between modes.
        if other_wall < incumbent_wall * (1.0 - self.auto_hysteresis):
            self._auto_mode = other
        self._auto_cycles += 1
        if (
            self.auto_probe_interval
            and self._auto_cycles % self.auto_probe_interval == 0
            and self._auto_mode != other  # a fresh switch already refreshes
        ):
            # Periodic re-probe: run this one cycle in the non-incumbent
            # mode so its wall sample cannot go permanently stale (the
            # loser's last measurement may date from a cold-cache probe).
            # The incumbent is unchanged — only the evidence refreshes.
            return other
        return self._auto_mode

    def _note_observe_wall(self, mode: str, wall_s: float, now: float) -> None:
        """Feed one cycle's observe-phase wall into auto mode's evidence."""
        if self.workers == "auto":
            previous = self._mode_walls.get(mode)
            self._mode_walls[mode] = (
                wall_s if previous is None else 0.5 * previous + 0.5 * wall_s
            )
        self.telemetry.record(f"autocomp.fleet.observe_wall.{mode}", now, wall_s)
        self.telemetry.record(
            "autocomp.fleet.worker_mode", now, 1.0 if mode == "processes" else 0.0
        )
        self.telemetry.observe("autocomp.hist.observe_wall_s", wall_s)

    def _observe_all(
        self,
        shard_keys: list[list[CandidateKey]],
        shard_reports: list[CycleReport],
        now: float,
        mode: str,
    ) -> tuple[list[list[Candidate]], list[float], list[ShardDecision | None]]:
        decisions: list[ShardDecision | None] = [None] * len(self.shards)
        if mode == "processes" and self.max_workers > 1 and len(self.shards) > 1:
            return self._observe_processes(shard_keys, shard_reports, now)
        observe_wall = [0.0] * len(self.shards)
        tracer = self._tracer
        # Pool threads have empty span stacks, so the per-shard spans
        # parent explicitly under the coordinator's observe span.
        parent = tracer.current() if tracer is not None else None

        def observe(i: int) -> list[Candidate]:
            span = (
                tracer.begin(
                    "shard", parent=parent, detached=True, shard=i, mode="threads"
                )
                if tracer is not None
                else None
            )
            start = time.perf_counter()
            try:
                candidates = self.shards[i].observe_orient(
                    shard_keys[i], now, shard_reports[i]
                )
            finally:
                observe_wall[i] = time.perf_counter() - start
                if span is not None:
                    tracer.end(span, keys=len(shard_keys[i]))
            return candidates

        indices = range(len(self.shards))
        if self.max_workers > 1 and len(self.shards) > 1:
            per_shard = self._pool("threads").run_tasks(
                [lambda i=i: observe(i) for i in indices]
            )
        else:
            per_shard = [observe(i) for i in indices]
        return per_shard, observe_wall, decisions

    def _worker_decide_active(self) -> bool:
        """Whether this process-mode cycle ships the decide phase to workers."""
        if self.selection != "local":
            return False
        return self.worker_decide is not False

    def _observe_processes(
        self,
        shard_keys: list[list[CandidateKey]],
        shard_reports: list[CycleReport],
        now: float,
    ) -> tuple[list[list[Candidate]], list[float], list[ShardDecision | None]]:
        """Observe/orient (and optionally decide) on the process pool.

        Per shard: the *coordinator* resolves cache hits and packs the
        misses into a shippable :class:`~repro.core.workers.ShardWorkSpec`
        through the shard's negotiated
        :class:`~repro.core.transport.WorkerTransport` (per-object pickles
        or columnar shared-memory arrays); a *worker process* builds
        statistics and traits for the misses; the coordinator merges the
        result — filling the miss holes and replaying the worker's cache
        delta so invalidation tokens survive the round trip — then runs
        the (cheap) filter passes locally.  When worker-side decide is
        active (``selection="local"``), the spec additionally carries the
        shard's policy, split selector, filter chains and resolved hits;
        the worker then returns only its decision and the selection.
        Every value is produced by the same code paths as thread mode, so
        the modes' (and transports') cycle reports are byte-identical.

        Shards with no misses skip the pool entirely (their wall time is
        the local hit-resolution cost, effectively the thread-mode number
        for a fully warm cycle); with worker decide on, such shards also
        decide on the coordinator — there is nothing to ship.

        A worker failure mid-cycle cancels and drains every outstanding
        shard future before surfacing a :class:`~repro.errors.WorkerError`
        (with the worker's exception chained), so no shard work is left
        in flight behind a half-begun cycle; transport resources (columnar
        shared-memory segments) are released either way.
        """
        observe_wall = [0.0] * len(self.shards)
        decisions: list[ShardDecision | None] = [None] * len(self.shards)
        decide_active = self._worker_decide_active()
        placed_specs = []
        futures = {}
        per_shard: list[list[Candidate]] = []
        pool = self._pool("processes")
        # Contract handshake, verified once per pool (cached): the worker
        # side must speak the same spec version and transport kind before
        # any spec ships; raises WorkerError naming both sides otherwise.
        pool.negotiate(self.transport)
        transports = [
            self._transport_for(i, pool) for i in range(len(self.shards))
        ]
        tracer = self._tracer
        # One coordinator-side "shard" span per shard covers export →
        # worker round trip → merge; its context ships inside the spec so
        # the worker's observe/decide spans stitch under it, and the
        # coordinator-side encode/decode walls land in "pack"/"unpack"
        # child spans plus the pack_wall_s/unpack_wall_s histograms.
        shard_spans: list = [None] * len(self.shards)
        shard_index = 0
        try:
            for shard_index, shard in enumerate(self.shards):
                if tracer is not None:
                    shard_spans[shard_index] = tracer.begin(
                        "shard",
                        detached=True,
                        shard=shard_index,
                        mode="processes",
                        transport=self.transport,
                        keys=len(shard_keys[shard_index]),
                    )
                transport = transports[shard_index]
                pack_span = (
                    tracer.begin(
                        "pack", parent=shard_spans[shard_index], detached=True
                    )
                    if tracer is not None
                    else None
                )
                start = time.perf_counter()
                try:
                    placed, spec = transport.export(
                        shard_keys[shard_index], shard_index, shard.traits
                    )
                    if spec is not None and decide_active:
                        assert self._local_selectors is not None
                        spec = transport.attach_decide(
                            spec,
                            placed,
                            shard.policy,
                            self._local_selectors[shard_index],
                            shard.stats_filters,
                            shard.trait_filters,
                        )
                finally:
                    pack_wall = time.perf_counter() - start
                    if pack_span is not None:
                        tracer.end(pack_span)
                self.telemetry.observe("autocomp.hist.pack_wall_s", pack_wall)
                if spec is not None and shard_spans[shard_index] is not None:
                    spec = dataclasses.replace(
                        spec, trace=shard_spans[shard_index].context
                    )
                observe_wall[shard_index] = pack_wall
                placed_specs.append((placed, spec))
                if spec is not None:
                    # Submit immediately: shard 0's workers compute while
                    # later shards are still exporting.
                    futures[shard_index] = pool.submit(run_shard_work, spec)
            returned = 0
            for shard_index, shard in enumerate(self.shards):
                placed, spec = placed_specs[shard_index]
                transport = transports[shard_index]
                if spec is None:
                    candidates = [c for c in placed if c is not None]
                elif spec.decide is not None:
                    result = futures.pop(shard_index).result()
                    self._adopt_worker_spans(result)
                    observe_wall[shard_index] += result.observe_wall_s
                    unpack_wall, decision = self._timed_unpack(
                        tracer,
                        shard_spans[shard_index],
                        lambda: transport.merge_decision(spec, placed, result),
                    )
                    observe_wall[shard_index] += unpack_wall
                    returned += len(decision.selected)
                    decisions[shard_index] = decision
                    per_shard.append([])  # the decision replaces the survivors
                    self._end_shard_span(shard_spans, shard_index)
                    continue
                else:
                    result = futures.pop(shard_index).result()
                    self._adopt_worker_spans(result)
                    observe_wall[shard_index] += result.observe_wall_s
                    returned += len(spec.keys)
                    unpack_wall, candidates = self._timed_unpack(
                        tracer,
                        shard_spans[shard_index],
                        lambda: transport.merge(spec, placed, result),
                    )
                    observe_wall[shard_index] += unpack_wall
                candidates = shard.orient(
                    candidates, now, shard_reports[shard_index], only_missing=True
                )
                per_shard.append(candidates)
                self._end_shard_span(shard_spans, shard_index)
        except Exception as exc:
            # A failed export, worker task or merge must not strand the
            # sibling shards' futures: cancel what has not started, drain
            # what has, then surface one clear error.
            outstanding = [f for f in futures.values() if not f.done()]
            for future in futures.values():
                future.cancel()
            wait_futures(list(futures.values()))
            for i in range(len(shard_spans)):
                self._end_shard_span(shard_spans, i, error=str(exc))
            raise WorkerError(
                f"shard {shard_index} failed mid-cycle ({exc}); cancelled or "
                f"drained {len(outstanding)} outstanding shard task(s)"
            ) from exc
        finally:
            # Release shared transport resources (columnar shm segments)
            # whether the cycle merged or failed; release is idempotent,
            # and the error path has already drained the futures that
            # read them.
            for (_, spec), transport in zip(placed_specs, transports):
                transport.release(spec)
        # Return-payload accounting: with worker-side decide this is
        # O(selected) instead of O(shard candidates).
        self.telemetry.record("autocomp.fleet.returned_candidates", now, returned)
        return per_shard, observe_wall, decisions

    def _timed_unpack(self, tracer, shard_span, merge):
        """Run one transport merge under an "unpack" span + histogram."""
        span = (
            tracer.begin("unpack", parent=shard_span, detached=True)
            if tracer is not None
            else None
        )
        start = time.perf_counter()
        try:
            merged = merge()
        finally:
            wall = time.perf_counter() - start
            if span is not None:
                tracer.end(span)
        self.telemetry.observe("autocomp.hist.unpack_wall_s", wall)
        return wall, merged

    def _adopt_worker_spans(self, result) -> None:
        """Stitch a worker result's spans into the coordinator trace."""
        if self._tracer is not None and getattr(result, "spans", None):
            self._tracer.adopt(result.spans)

    def _end_shard_span(self, shard_spans: list, index: int, **attrs) -> None:
        """Close (at most once) the coordinator-side span for shard ``index``."""
        span = shard_spans[index]
        if span is not None:
            shard_spans[index] = None
            self._tracer.end(span, **attrs)

    def _decide_global(
        self,
        keys: list[CandidateKey],
        per_shard: list[list[Candidate]],
        fleet_report: CycleReport,
        shard_reports: list[CycleReport],
    ) -> list[Candidate]:
        """Merge shard survivors, rank and select once."""
        if self.merge_order == "any":
            merged = [c for candidates in per_shard for c in candidates]
        else:
            # Rebuild generation order, id-keyed within one cycle (every
            # key object is alive for the whole merge) to avoid a Python-
            # level content hash per dict operation.
            by_key: dict[int, Candidate] = {}
            total = 0
            for candidates in per_shard:
                total += len(candidates)
                for candidate in candidates:
                    by_key[id(candidate.key)] = candidate
            lookup = by_key.get
            merged = [c for c in (lookup(id(key)) for key in keys) if c is not None]
            if len(merged) != total:
                # A connector returned candidates under fresh key objects;
                # fall back to content-keyed merging.
                by_content = {c.key: c for candidates in per_shard for c in candidates}
                merged = [
                    c for c in (by_content.get(key) for key in keys) if c is not None
                ]
        fleet_report.after_stats_filters = sum(r.after_stats_filters for r in shard_reports)
        fleet_report.after_trait_filters = len(merged)
        ranked = self.policy.rank(merged)
        fleet_report.ranked = len(ranked)
        selected = self.selector.select(ranked)
        fleet_report.selected = [c.key for c in selected]
        for shard_index, report in enumerate(shard_reports):
            report.ranked = len(per_shard[shard_index])
            report.selected = [
                key for key in fleet_report.selected if self._shard_for(key) == shard_index
            ]
        return selected

    def _decide_local(
        self,
        per_shard: list[list[Candidate]],
        fleet_report: CycleReport,
        shard_reports: list[CycleReport],
        decisions: list[ShardDecision | None] | None = None,
    ) -> list[list[Candidate]]:
        """Per-shard rank and select under split budgets.

        Shards whose worker already decided (``decisions[i]`` set) just
        adopt the worker's counts and selection; the rest rank/select here
        — the exact sequence the worker runs, so the two placements are
        value-identical.
        """
        assert self._local_selectors is not None
        selected: list[list[Candidate]] = []
        for i, (shard, local_selector, candidates, report) in enumerate(
            zip(self.shards, self._local_selectors, per_shard, shard_reports)
        ):
            decision = decisions[i] if decisions is not None else None
            if decision is not None:
                report.after_stats_filters = decision.after_stats_filters
                report.after_trait_filters = decision.after_trait_filters
                report.ranked = decision.ranked
                chosen = decision.selected
            else:
                ranked = shard.policy.rank(candidates)
                report.ranked = len(ranked)
                chosen = local_selector.select(ranked)
            report.selected = [c.key for c in chosen]
            selected.append(chosen)
        fleet_report.after_stats_filters = sum(r.after_stats_filters for r in shard_reports)
        fleet_report.after_trait_filters = sum(r.after_trait_filters for r in shard_reports)
        fleet_report.ranked = sum(r.ranked for r in shard_reports)
        fleet_report.selected = [key for r in shard_reports for key in r.selected]
        return selected

    # --- telemetry -------------------------------------------------------------

    def _record_cycle(self, sharded: ShardedCycleReport, now: float) -> None:
        report = sharded.report
        self.telemetry.record("autocomp.fleet.candidates", now, report.candidates_generated)
        self.telemetry.record("autocomp.fleet.selected", now, len(report.selected))
        self.telemetry.record("autocomp.fleet.cycle_wall_s", now, sharded.cycle_wall_s)
        self.telemetry.observe("autocomp.hist.cycle_wall_s", sharded.cycle_wall_s)
        self.telemetry.increment("autocomp.fleet.cycles")
        for scoped, shard_report, wall in zip(
            self._shard_telemetry, sharded.shard_reports, sharded.shard_observe_wall_s
        ):
            scoped.record("candidates", now, shard_report.candidates_generated)
            scoped.record("after_trait_filters", now, shard_report.after_trait_filters)
            scoped.record("selected", now, len(shard_report.selected))
            scoped.record("observe_wall_s", now, wall)
        self._record_cache_hit_ratio(now)

    def _record_cache_hit_ratio(self, now: float) -> None:
        """Surface the shard stats caches' aggregate hit ratio per cycle."""
        hits = misses = 0.0
        seen: set[int] = set()
        for shard in self.shards:
            counters = shard.connector.cache_counters()
            if counters is None:
                continue
            cache_id = counters.get("id")
            if cache_id is not None:
                if cache_id in seen:  # shards may share one cache object
                    continue
                seen.add(cache_id)
            hits += counters.get("hits", 0)
            misses += counters.get("misses", 0)
        total = hits + misses
        if total <= 0:
            return
        ratio = hits / total
        self.telemetry.record("autocomp.fleet.cache_hit_ratio", now, ratio)
        self.telemetry.observe(
            "autocomp.hist.cache_hit_ratio", ratio, bounds=RATIO_BOUNDS
        )
