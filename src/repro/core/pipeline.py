"""The OODA pipeline: observe → orient → decide → act (§3.3, Figure 4).

One :meth:`AutoCompPipeline.run_cycle` call performs a full pass:

1. **generate** candidate keys from the connector (table / partition /
   hybrid strategy);
2. **observe** — collect the standardized statistics for each key, then
   apply the statistics filters;
3. **orient** — compute every registered trait, then apply the trait
   filters;
4. **decide** — rank with the configured policy and select within budget;
5. **act** — hand the selected tasks to the scheduler/backend.

An optional feedback loop (act → observe) invokes registered hooks with
each cycle's report, letting deployments adapt parameters over time —
e.g. LinkedIn's transition from fixed to dynamic k.

Every phase is deterministic given identical inputs (NFR2), and each
component is swappable (NFR1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.candidates import Candidate, CandidateKey
from repro.core.connectors import Connector
from repro.core.filters import CandidateFilter, apply_filters
from repro.core.ranking import RankingPolicy
from repro.core.scheduling import (
    CompactionTask,
    ExecutionBackend,
    ExecutionResult,
    Scheduler,
)
from repro.core.selection import Selector
from repro.core.traits import Trait, TraitRegistry
from repro.errors import ValidationError
from repro.obs.tracing import Tracer, make_span
from repro.simulation.simulator import Simulator
from repro.simulation.telemetry import BYTES_BOUNDS, Telemetry


@dataclass
class CycleReport:
    """What one OODA cycle saw, decided and did."""

    cycle_index: int
    started_at: float
    candidates_generated: int = 0
    after_stats_filters: int = 0
    after_trait_filters: int = 0
    ranked: int = 0
    #: Selected candidates withheld by act gates (admission quotas, lock
    #: contention) before execution.
    gated: int = 0
    selected: list[CandidateKey] = field(default_factory=list)
    #: Results land here synchronously, or asynchronously as simulated
    #: compaction jobs complete (the list object is shared with the
    #: scheduler's callback).
    results: list[ExecutionResult] = field(default_factory=list)

    @property
    def successes(self) -> int:
        """Completed compactions."""
        return sum(1 for r in self.results if r.success)

    @property
    def conflicts(self) -> int:
        """Cluster-side conflicts among results."""
        return sum(1 for r in self.results if not r.success and not r.skipped)

    @property
    def total_gbhr(self) -> float:
        """Compute spent (including wasted work on conflicted jobs)."""
        return sum(r.gbhr for r in self.results)

    @property
    def total_files_reduced(self) -> int:
        """Actual net file-count reduction achieved."""
        return sum(r.actual_reduction for r in self.results)


class AutoCompPipeline:
    """A configured AutoComp instance.

    Args:
        connector: platform adapter (candidates + statistics).
        backend: act-phase executor.
        traits: orient-phase traits (list or registry).
        policy: decide-phase ranking policy.
        selector: decide-phase budget selection.
        scheduler: act-phase ordering/concurrency.
        generation: candidate-generation strategy
            (``table`` / ``partition`` / ``hybrid``).
        stats_filters: filters applied after observe.
        trait_filters: filters applied after orient.
        telemetry: metric sink for cycle statistics.
        tracer: optional :class:`repro.obs.tracing.Tracer`; when set, each
            ``run_cycle`` produces a ``cycle → observe/decide/act →
            rewrite`` span tree and per-phase wall-clock histograms.  Also
            assignable after construction (``pipeline.tracer = Tracer()``).
        feedback_hooks: callables invoked with each finished
            :class:`CycleReport` (the optional act→observe loop).
        taps: optional event bus; when set, every finished cycle publishes
            a ``cycle`` event carrying the fully serialized report — the
            Policy Lab's catalog-trace cadence marker.  Assignable after
            construction too (``pipeline.taps = bus``).  Leave unset on
            the per-shard pipelines of a sharded plane (the coordinator
            publishes the merged report instead).
    """

    def __init__(
        self,
        connector: Connector,
        backend: ExecutionBackend,
        traits: TraitRegistry | Sequence[Trait],
        policy: RankingPolicy,
        selector: Selector,
        scheduler: Scheduler,
        generation: str = "table",
        stats_filters: Sequence[CandidateFilter] = (),
        trait_filters: Sequence[CandidateFilter] = (),
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
        feedback_hooks: Sequence[Callable[[CycleReport], None]] = (),
        taps=None,
    ) -> None:
        self.connector = connector
        self.backend = backend
        self.traits = (
            traits if isinstance(traits, TraitRegistry) else TraitRegistry(list(traits))
        )
        self.policy = policy
        self.selector = selector
        self.scheduler = scheduler
        self.generation = validate_generation_strategy(generation)
        self.stats_filters = list(stats_filters)
        self.trait_filters = list(trait_filters)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer
        self.feedback_hooks = list(feedback_hooks)
        self.taps = taps
        #: Act gates: callables ``gate(selected) -> selected`` applied in
        #: order between decide and act.  The daemonized control plane
        #: installs admission quotas and per-table lock acquisition here,
        #: so concurrent cycles agree on who executes what *after* ranking
        #: but *before* any task is built.
        self.act_gates: list[Callable[[list[Candidate]], list[Candidate]]] = []
        self._cycle_index = 0

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: forward a notification to the connector's cache.

        The uniform entry point service inboxes call — the sharded plane
        overrides it to route each key to the shard that owns it.
        """
        self.connector.invalidate(key)

    def run_cycle(self, now: float = 0.0, simulator: Simulator | None = None) -> CycleReport:
        """Run one full OODA pass.

        Args:
            now: current time for filters and reporting; ignored when a
                simulator is given (its clock wins).
            simulator: when provided, act-phase jobs are scheduled as
                simulated events and the report's ``results`` list fills in
                as they complete.

        Returns:
            The cycle's :class:`CycleReport`.
        """
        if simulator is not None:
            now = simulator.now
        report = self.begin_cycle(now)
        tracer = self.tracer
        cycle_start = time.perf_counter()
        cycle_span = (
            tracer.begin("cycle", cycle_index=report.cycle_index)
            if tracer is not None
            else None
        )
        try:
            keys = self.generate(report)
            candidates = self._timed_phase(
                "observe",
                "autocomp.hist.observe_wall_s",
                lambda: self.observe_orient(keys, now, report),
            )
            selected = self._timed_phase(
                "decide",
                "autocomp.hist.decide_wall_s",
                lambda: self.decide(candidates, report),
            )
            self._timed_phase(
                "act",
                "autocomp.hist.act_wall_s",
                lambda: self.act(selected, report, simulator=simulator),
            )
            self.finish_cycle(report, now)
        finally:
            self.telemetry.observe(
                "autocomp.hist.cycle_wall_s", time.perf_counter() - cycle_start
            )
            if cycle_span is not None:
                tracer.end(cycle_span, selected=len(report.selected))
        return report

    def _timed_phase(self, name: str, histogram: str, work: Callable):
        """Run one phase under a span (when tracing) and a wall histogram."""
        tracer = self.tracer
        start = time.perf_counter()
        try:
            if tracer is not None:
                with tracer.span(name):
                    return work()
            return work()
        finally:
            self.telemetry.observe(histogram, time.perf_counter() - start)

    # --- phases ----------------------------------------------------------------
    #
    # ``run_cycle`` composes these; the scale-out control plane
    # (:class:`~repro.core.sharding.ShardedPipeline`) calls them directly so
    # it can run the observe/orient phases of many shards concurrently and
    # interpose a fleet-level decide phase between orient and act.

    def begin_cycle(self, now: float) -> CycleReport:
        """Allocate the next cycle's report (advances the cycle index)."""
        report = CycleReport(cycle_index=self._cycle_index, started_at=now)
        self._cycle_index += 1
        return report

    def generate(self, report: CycleReport | None = None) -> list[CandidateKey]:
        """Generate phase: candidate keys from the connector."""
        keys = self.connector.list_candidates(self.generation)
        if report is not None:
            report.candidates_generated = len(keys)
        return keys

    def worker_transport(self, kind: str | None = None):
        """This pipeline's :class:`~repro.core.transport.WorkerTransport`.

        Delegates to
        :meth:`~repro.core.connectors.Connector.worker_transport`.  The
        sharded control plane builds each shard's transport through this
        hook (rather than reaching into the connector directly), so
        pipeline subclasses can interpose on how their shard's work
        crosses the process boundary.
        """
        return self.connector.worker_transport(kind)

    def observe_orient(
        self, keys: list[CandidateKey], now: float, report: CycleReport | None = None
    ) -> list[Candidate]:
        """Observe + orient phases: statistics, filters, traits, filters.

        Pure with respect to pipeline state (only the connector's stats
        cache may be updated), so disjoint key subsets can be processed
        concurrently by different shards.
        """
        candidates = self.connector.observe(keys)
        return self.orient(
            candidates, now, report, only_missing=self.connector.reuses_candidates
        )

    def orient(
        self,
        candidates: list[Candidate],
        now: float,
        report: CycleReport | None = None,
        only_missing: bool = True,
    ) -> list[Candidate]:
        """Orient phase over already observed candidates: filter, annotate, filter.

        Split out of :meth:`observe_orient` for callers that observe
        elsewhere — the process-mode sharded control plane receives
        observed *and* trait-annotated candidates back from shard workers
        and only needs the filter passes here (``only_missing=True`` then
        skips the already-annotated candidates).
        """
        candidates = apply_filters(self.stats_filters, candidates, now)
        if report is not None:
            report.after_stats_filters = len(candidates)
        self.traits.annotate_all(candidates, only_missing=only_missing)
        candidates = apply_filters(self.trait_filters, candidates, now)
        if report is not None:
            report.after_trait_filters = len(candidates)
        return candidates

    def decide(
        self, candidates: list[Candidate], report: CycleReport | None = None
    ) -> list[Candidate]:
        """Decide phase: rank with the policy, select within budget."""
        ranked = self.policy.rank(candidates)
        if report is not None:
            report.ranked = len(ranked)
        selected = self.selector.select(ranked)
        if report is not None:
            report.selected = [c.key for c in selected]
        return selected

    def act(
        self,
        selected: Sequence[Candidate],
        report: CycleReport,
        simulator: Simulator | None = None,
        on_result: Callable[[ExecutionResult], None] | None = None,
    ) -> None:
        """Act phase: hand the selected candidates to the scheduler.

        Args:
            selected: candidates in execution order.
            report: results are appended here (synchronously, or as
                simulated jobs complete).
            simulator: event-driven mode when given.
            on_result: extra observer for each result (the sharded control
                plane uses it to mirror results into the fleet report).
        """
        selected = list(selected)
        for gate in self.act_gates:
            before = len(selected)
            selected = list(gate(selected))
            dropped = before - len(selected)
            report.gated += dropped
            if dropped:
                self.telemetry.increment("autocomp.act.gated", dropped)
        tasks = [CompactionTask.from_candidate(c) for c in selected]

        def record(result: ExecutionResult) -> None:
            report.results.append(result)
            self._record_result(result)
            if result.success:
                # A compaction rewrites the table: evict its cached
                # statistics so the next observe phase sees the new state
                # (token-based caches self-heal; event-based ones need this).
                self.connector.invalidate(result.candidate)
            if on_result is not None:
                on_result(result)

        backend = self.backend
        if self.tracer is not None and tasks:
            # Wrap the backend so every prepared job carries a "rewrite"
            # span from start() to finish(), parented under the act span
            # (or whatever is current when the tasks are handed over).
            backend = _TracedBackend(backend, self.tracer, self.tracer.current())
        sync_results = self.scheduler.schedule(
            tasks, backend, simulator=simulator, on_result=record
        )
        # Sync mode returns results directly; ``record`` already captured them.
        del sync_results

    def finish_cycle(self, report: CycleReport, now: float) -> None:
        """Record cycle telemetry, publish the cycle event, fire feedback hooks."""
        self._record_cycle(report, now)
        if self.taps is not None and self.taps.has_subscribers("cycle"):
            # Imported lazily: repro.replay sits above repro.core in the
            # layering, so a module-level import would be circular.
            from repro.replay.trace import serialize_cycle_report

            # Callers that never pass `now` (it defaults to 0.0) must not
            # stamp a cycle event *before* the commits already recorded at
            # catalog-clock time — that trace would fail the reader's
            # non-decreasing-time validation.  The connector's clock, when
            # it has one, is the authoritative floor.
            catalog = getattr(self.connector, "catalog", None)
            t = now if catalog is None else max(now, catalog.clock.now)
            self.taps.publish("cycle", {"t": t, "report": serialize_cycle_report(report)})
        for hook in self.feedback_hooks:
            hook(report)

    # --- telemetry -------------------------------------------------------------

    def _record_cycle(self, report: CycleReport, now: float) -> None:
        self.telemetry.record("autocomp.cycle.candidates", now, report.candidates_generated)
        self.telemetry.record("autocomp.cycle.selected", now, len(report.selected))
        self.telemetry.increment("autocomp.cycles")

    def _record_result(self, result: ExecutionResult) -> None:
        if result.skipped:
            self.telemetry.increment("autocomp.results.skipped")
        elif result.success:
            self.telemetry.increment("autocomp.results.success")
            self.telemetry.record(
                "autocomp.files_reduced", result.finished_at, result.actual_reduction
            )
            self.telemetry.record("autocomp.gbhr", result.finished_at, result.gbhr)
            self.telemetry.observe(
                "autocomp.hist.rewrite_bytes",
                result.rewritten_bytes,
                bounds=BYTES_BOUNDS,
            )
        else:
            self.telemetry.increment("autocomp.results.conflict")


class _TracedJob:
    """Wraps a :class:`~repro.core.scheduling.PreparedJob` in a rewrite span.

    Simulated jobs interleave, so the rewrite span never touches the
    tracer's thread-local stack: ``start()`` stamps the wall clock,
    ``finish()`` builds the :class:`~repro.obs.tracing.Span` in one shot
    (cheaper than begin/end for the per-job hot path — a cycle acts on
    many jobs) and hands it to :meth:`~repro.obs.tracing.Tracer.adopt`.
    """

    def __init__(self, job, task: CompactionTask, tracer: Tracer, parent) -> None:
        self._job = job
        self._task = task
        self._tracer = tracer
        self._parent = parent
        self._start_s = None

    def __getattr__(self, name):
        return getattr(self._job, name)

    def start(self):
        self._start_s = time.time()
        return self._job.start()

    def finish(self):
        result = self._job.finish()
        if self._start_s is not None:
            self._tracer.adopt([
                make_span(
                    "rewrite",
                    self._parent,
                    self._start_s,
                    time.time(),
                    key=str(self._task.candidate.key),
                    success=result.success,
                    skipped=result.skipped,
                    rewritten_bytes=result.rewritten_bytes,
                )
            ])
            self._start_s = None
        return result


class _TracedBackend:
    """Backend proxy that emits one ``rewrite`` span per executed job."""

    def __init__(self, backend: ExecutionBackend, tracer: Tracer, parent) -> None:
        self._backend = backend
        self._tracer = tracer
        self._parent = parent

    def __getattr__(self, name):
        return getattr(self._backend, name)

    def prepare(self, task: CompactionTask):
        job = self._backend.prepare(task)
        if job is None:
            return None
        return _TracedJob(job, task, self._tracer, self._parent)


def validate_generation_strategy(strategy: str) -> str:
    """Validate a generation-strategy name, returning it unchanged."""
    from repro.core.candidates import GENERATION_STRATEGIES

    if strategy not in GENERATION_STRATEGIES:
        raise ValidationError(
            f"unknown generation strategy {strategy!r}; expected one of "
            f"{GENERATION_STRATEGIES}"
        )
    return strategy
