"""Connectors: AutoComp's view onto a catalog / LST platform.

Cross-platform compatibility (NFR3) comes from this seam: the OODA pipeline
only ever talks to a :class:`Connector`, which produces candidate keys and
the standardized :class:`~repro.core.candidates.CandidateStatistics`.
Two implementations ship with the library:

* :class:`LstConnector` (here) — backed by a live
  :class:`~repro.catalog.catalog.Catalog` of simulated Iceberg/Delta tables
  (used by the §6 synthetic experiments); and
* :class:`~repro.fleet.connectors.FleetConnector` — backed by the
  vectorised fleet state (used by the §7 production-scale experiments).
"""

from __future__ import annotations

import abc

from repro.catalog.catalog import Catalog
from repro.core.candidates import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    GENERATION_STRATEGIES,
)
from repro.core.statscache import IndexedCandidateCache, StatsCache
from repro.errors import ValidationError
from repro.lst.base import BaseTable


class Connector(abc.ABC):
    """Platform adapter feeding candidates and statistics to the pipeline.

    Connectors may carry a :class:`~repro.core.statscache.StatsCache` in
    ``stats_cache``; when present, the observe phase becomes incremental
    (O(dirty tables) instead of O(all tables)) and write events reaching
    :meth:`invalidate` — typically from the
    :class:`~repro.core.service.AutoCompService` notification inbox — evict
    the affected entries.
    """

    #: Optional incremental-observation cache (set by subclasses).
    stats_cache = None

    #: True when :meth:`observe` may return the *same annotated Candidate
    #: objects* across cycles for unchanged tables (candidate-reusing
    #: caches).  The pipeline then skips trait recomputation for
    #: candidates that already carry every registered trait.
    reuses_candidates = False

    #: True when this connector can split observation into local cache
    #: hits plus a *picklable* :class:`~repro.core.workers.ShardWorkSpec`
    #: (:meth:`export_shard_work` / :meth:`merge_shard_result`) — the
    #: contract process-mode shard workers require.  Connectors whose
    #: observation reads live, unpicklable state (e.g. a catalog of open
    #: tables) leave this False and stay on the thread-pool fallback.
    supports_worker_observe = False

    @abc.abstractmethod
    def list_candidates(self, strategy: str = "table") -> list[CandidateKey]:
        """Generate candidate keys under a generation strategy.

        Args:
            strategy: one of ``table``, ``partition``, ``hybrid``.
        """

    @abc.abstractmethod
    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        """Observe phase: gather the standardized statistics for a key."""

    def observe(self, keys: list[CandidateKey]) -> list[Candidate]:
        """Materialise candidates with statistics for a list of keys."""
        return [Candidate(key=key, statistics=self.collect_statistics(key)) for key in keys]

    def list_candidates_sharded(
        self, strategy: str, n_shards: int, shard_index: int
    ) -> list[CandidateKey]:
        """Shard ``shard_index``'s slice of the candidate listing.

        The default filters the full listing through the consistent hash;
        vectorised connectors override it to produce the slice directly.
        Used by the sharded control plane when merge order permits
        (per-shard listings concatenate instead of interleave).
        """
        from repro.core.sharding import shard_for_key

        return [
            key
            for key in self.list_candidates(strategy)
            if shard_for_key(key, n_shards) == shard_index
        ]

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: evict ``key``'s table from the stats cache."""
        if self.stats_cache is not None:
            self.stats_cache.invalidate(key)

    # --- process-mode shard-worker contract ---------------------------------
    #
    # The scale-out control plane's process workers cannot touch this
    # connector's live state; instead the coordinator asks it to (a) resolve
    # cache hits locally and snapshot the miss inputs into a picklable
    # spec, then (b) merge the worker's result — candidates plus a cache
    # delta — back in.  Only connectors declaring
    # ``supports_worker_observe`` implement the pair.

    def export_shard_work(self, keys: list[CandidateKey], shard_index: int, traits):
        """Split ``keys`` into local hits and a picklable miss spec.

        Args:
            keys: the shard's candidate keys, in generation order.
            shard_index: which shard the work belongs to.
            traits: the shard pipeline's
                :class:`~repro.core.traits.TraitRegistry` (shipped in the
                spec — workers orient what they observe).

        Returns:
            ``(placed, spec)`` — ``placed`` is a candidate list with
            ``None`` holes at miss positions, ``spec`` the
            :class:`~repro.core.workers.ShardWorkSpec` covering the holes
            in order (``None`` when everything hit).

        Raises:
            ValidationError: connectors without worker-observe support.
        """
        raise ValidationError(
            f"{type(self).__name__} cannot export shard work for process "
            "workers (supports_worker_observe is False); run the sharded "
            "pipeline with workers='threads'"
        )

    def merge_shard_result(self, placed: list, result) -> list[Candidate]:
        """Fill ``placed``'s holes from a worker result and merge its cache delta.

        Raises:
            ValidationError: connectors without worker-observe support.
        """
        raise ValidationError(
            f"{type(self).__name__} cannot merge shard worker results "
            "(supports_worker_observe is False)"
        )


class LstConnector(Connector):
    """Catalog-of-live-tables connector.

    Args:
        catalog: the control plane whose tables are compaction targets.
        include_databases: restrict candidate generation to these databases
            (None = all).
        stats_cache: optional incremental-observation cache.  A
            :class:`~repro.core.statscache.StatsCache` caches frozen
            statistics keyed by candidate, trusted until a write event
            (service notification) invalidates them or their TTL lapses.
            An :class:`~repro.core.statscache.IndexedCandidateCache`
            enables the *dense* path the fleet connector uses: candidate
            keys are interned to dense integer indices, the table's
            metadata ``version`` (bumped by every commit) serves as the
            freshness token — so entries self-heal with no event plumbing —
            and whole annotated candidates are reused across cycles,
            skipping the statistics build *and* the trait recompute for
            clean tables.  As with the fleet connector, custom traits that
            read ``quota_utilization`` should not be combined with a
            candidate-reusing cache (quota is re-stamped on hits, but
            traits are not recomputed).
    """

    def __init__(
        self,
        catalog: Catalog,
        include_databases: list[str] | None = None,
        stats_cache: StatsCache | IndexedCandidateCache | None = None,
    ) -> None:
        self.catalog = catalog
        self.include_databases = (
            set(include_databases) if include_databases is not None else None
        )
        self.stats_cache = stats_cache
        #: Dense index interning (dense path): candidate key → slot index.
        self._index_of: dict[CandidateKey, int] = {}
        #: Reverse mapping for table-granular write-event invalidation.
        self._indices_by_table: dict[str, list[int]] = {}

    @property
    def _dense(self) -> bool:
        """Whether the dense candidate-reusing cache path is active.

        Derived from the live ``stats_cache`` attribute (not frozen at
        construction), so assigning a cache after construction — as the
        service wiring does — selects the right observation path.
        """
        return isinstance(self.stats_cache, IndexedCandidateCache)

    @property
    def reuses_candidates(self) -> bool:  # type: ignore[override]
        return self._dense

    def _dense_index(self, key: CandidateKey) -> int:
        index = self._index_of.get(key)
        if index is None:
            index = self._index_of[key] = len(self._index_of)
            self._indices_by_table.setdefault(key.qualified_table, []).append(index)
        return index

    def observe(self, keys: list[CandidateKey]) -> list[Candidate]:
        if not self._dense:
            return super().observe(keys)
        cache = self.stats_cache
        assert isinstance(cache, IndexedCandidateCache)
        now = self.catalog.clock.now
        candidates: list[Candidate] = []
        for key in keys:
            index = self._dense_index(key)
            # The version read is the cheap per-table change counter: one
            # catalog lookup instead of a full file listing + statistics
            # build for clean tables.
            token = self.table_for(key).version
            candidate = cache.get(index, now, token)
            if candidate is not None:
                # Quota drifts through *other* tables' writes while this
                # table's version holds still; re-stamp it so cached
                # observations stay exactly equal to fresh ones.
                stats = candidate.statistics
                quota = self._quota(key)
                if stats.quota_utilization != quota:
                    object.__setattr__(stats, "quota_utilization", quota)
                candidates.append(candidate)
                continue
            candidate = Candidate(key=key, statistics=self._collect_statistics(key))
            cache.put(index, candidate, now, token)
            candidates.append(candidate)
        return candidates

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: evict ``key``'s table from either cache kind."""
        if self.stats_cache is None:
            return
        if self._dense:
            for index in self._indices_by_table.get(key.qualified_table, ()):
                self.stats_cache.invalidate_index(index)
        else:
            self.stats_cache.invalidate(key)

    def _tables(self) -> list[BaseTable]:
        tables = []
        for identifier in self.catalog.list_tables():
            if (
                self.include_databases is not None
                and identifier.database not in self.include_databases
            ):
                continue
            tables.append(self.catalog.load_table(identifier))
        return tables

    def list_candidates(self, strategy: str = "table") -> list[CandidateKey]:
        if strategy not in GENERATION_STRATEGIES:
            raise ValidationError(
                f"unknown generation strategy {strategy!r}; "
                f"expected one of {GENERATION_STRATEGIES}"
            )
        keys: list[CandidateKey] = []
        for table in self._tables():
            ident = table.identifier
            use_partitions = strategy == "partition" or (
                strategy == "hybrid" and table.spec.is_partitioned
            )
            if use_partitions and table.spec.is_partitioned:
                for partition in table.partitions():
                    keys.append(
                        CandidateKey(
                            database=ident.database,
                            table=ident.name,
                            scope=CandidateScope.PARTITION,
                            partition=partition,
                        )
                    )
            else:
                keys.append(
                    CandidateKey(
                        database=ident.database,
                        table=ident.name,
                        scope=CandidateScope.TABLE,
                    )
                )
        return keys

    def table_for(self, key: CandidateKey) -> BaseTable:
        """The live table object behind a candidate key."""
        return self.catalog.load_table(key.qualified_table)

    def snapshot_candidate(self, table: BaseTable, since_snapshot_id: int) -> CandidateKey:
        """A snapshot-scope candidate: files added after a base snapshot.

        §4.1: snapshot scope is beneficial when (reasonably) fresh data
        needs more frequent access — only the recently written files are
        considered for compaction, keeping performance objectives for the
        fresh subset without rewriting history.
        """
        ident = table.identifier
        table.snapshot(since_snapshot_id)  # validates existence
        return CandidateKey(
            database=ident.database,
            table=ident.name,
            scope=CandidateScope.SNAPSHOT,
            snapshot_id=since_snapshot_id,
        )

    def files_for(self, key: CandidateKey):
        """Live data files in a candidate's scope."""
        table = self.table_for(key)
        if key.scope is CandidateScope.PARTITION:
            return [f for f in table.live_files() if f.partition == key.partition]
        if key.scope is CandidateScope.SNAPSHOT:
            base = table.snapshot(key.snapshot_id)
            base_ids = {f.file_id for f in base.live_files}
            return [f for f in table.live_files() if f.file_id not in base_ids]
        return table.live_files()

    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        cache = self.stats_cache
        if self._dense:
            # The dense cache stores whole candidates per index (see
            # observe); single-key statistic reads bypass it.
            cache = None
        if cache is not None:
            now = self.catalog.clock.now
            cached = cache.get(key, now)
            if cached is not None:
                # Quota is database-level, so it drifts through *other*
                # tables' writes while this entry stays valid; re-stamp it
                # in place so cached observations stay exactly equal to
                # fresh ones (the invalidation sources are table-granular).
                quota = self._quota(key)
                if cached.quota_utilization != quota:
                    object.__setattr__(cached, "quota_utilization", quota)
                return cached
        statistics = self._collect_statistics(key)
        if cache is not None:
            cache.put(key, statistics, now)
        return statistics

    def _quota(self, key: CandidateKey) -> float:
        try:
            return self.catalog.quota_utilization(key.database)
        except ValidationError:
            return 0.0

    def _collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        table = self.table_for(key)
        policy = self.catalog.policy(key.qualified_table)
        files = self.files_for(key)
        if key.scope is CandidateScope.PARTITION:
            partition_count = 1
            # Partition-scope candidates carry partition-level write
            # recency: write-activity filters can then skip hot partitions
            # while still compacting the table's cold ones.
            last_modified = table.partition_last_modified(key.partition)
        else:
            partition_count = max(len({f.partition for f in files}), 1)
            last_modified = table.last_modified_at
        quota = self._quota(key)
        return CandidateStatistics.from_file_sizes(
            [f.size_bytes for f in files],
            target_file_size=policy.target_file_size,
            partition_count=partition_count,
            delete_file_count=table.delete_file_count,
            created_at=table.created_at,
            last_modified_at=last_modified,
            quota_utilization=quota,
        )
