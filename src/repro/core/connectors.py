"""Connectors: AutoComp's view onto a catalog / LST platform.

Cross-platform compatibility (NFR3) comes from this seam: the OODA pipeline
only ever talks to a :class:`Connector`, which produces candidate keys and
the standardized :class:`~repro.core.candidates.CandidateStatistics`.
Two implementations ship with the library:

* :class:`LstConnector` (here) — backed by a live
  :class:`~repro.catalog.catalog.Catalog` of simulated Iceberg/Delta tables
  (used by the §6 synthetic experiments); and
* :class:`~repro.fleet.connectors.FleetConnector` — backed by the
  vectorised fleet state (used by the §7 production-scale experiments).
"""

from __future__ import annotations

import abc
import threading
import warnings

from repro.catalog.catalog import Catalog
from repro.catalog.snapshot import CatalogObservationSlice, build_candidate_statistics
from repro.core.candidates import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    GENERATION_STRATEGIES,
)
from repro.core.statscache import IndexedCandidateCache, StatsCache
from repro.errors import ValidationError
from repro.lst.base import BaseTable


class Connector(abc.ABC):
    """Platform adapter feeding candidates and statistics to the pipeline.

    Connectors may carry a :class:`~repro.core.statscache.StatsCache` in
    ``stats_cache``; when present, the observe phase becomes incremental
    (O(dirty tables) instead of O(all tables)) and write events reaching
    :meth:`invalidate` — typically from the
    :class:`~repro.core.service.AutoCompService` notification inbox — evict
    the affected entries.
    """

    #: Optional incremental-observation cache (set by subclasses).
    stats_cache = None

    #: True when :meth:`observe` may return the *same annotated Candidate
    #: objects* across cycles for unchanged tables (candidate-reusing
    #: caches).  The pipeline then skips trait recomputation for
    #: candidates that already carry every registered trait.
    reuses_candidates = False

    #: True when this connector can split observation into local cache
    #: hits plus a *picklable* :class:`~repro.core.workers.ShardWorkSpec`
    #: (:meth:`export_shard_work` / :meth:`merge_shard_result`) — the
    #: contract process-mode shard workers require.  Connectors whose
    #: observation reads live, unpicklable state (e.g. a catalog of open
    #: tables) leave this False and stay on the thread-pool fallback.
    #: Superseded by :meth:`worker_transport_kinds` (kept one release for
    #: introspection compatibility).
    supports_worker_observe = False

    @abc.abstractmethod
    def list_candidates(self, strategy: str = "table") -> list[CandidateKey]:
        """Generate candidate keys under a generation strategy.

        Args:
            strategy: one of ``table``, ``partition``, ``hybrid``.
        """

    @abc.abstractmethod
    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        """Observe phase: gather the standardized statistics for a key."""

    def observe(self, keys: list[CandidateKey]) -> list[Candidate]:
        """Materialise candidates with statistics for a list of keys."""
        return [Candidate(key=key, statistics=self.collect_statistics(key)) for key in keys]

    def list_candidates_sharded(
        self, strategy: str, n_shards: int, shard_index: int
    ) -> list[CandidateKey]:
        """Shard ``shard_index``'s slice of the candidate listing.

        The default filters the full listing through the consistent hash;
        vectorised connectors override it to produce the slice directly.
        Used by the sharded control plane when merge order permits
        (per-shard listings concatenate instead of interleave).
        """
        from repro.core.sharding import shard_for_key

        return [
            key
            for key in self.list_candidates(strategy)
            if shard_for_key(key, n_shards) == shard_index
        ]

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: evict ``key``'s table from the stats cache."""
        if self.stats_cache is not None:
            self.stats_cache.invalidate(key)

    def cache_counters(self) -> dict | None:
        """The stats cache's lookup counters, for hit-ratio telemetry.

        Returns ``{"id", "hits", "misses", "expirations"}`` (``id`` is the
        cache object's identity, letting the sharded plane deduplicate
        shards that share one cache), or None when the connector carries
        no cache.  Prefers the cache's ``counters_snapshot()`` (one locked
        read of all counters) so a concurrent lookup cannot tear the
        sample; falls back to attribute reads for caches without it, so
        new connectors get hit-ratio metrics for free.
        """
        cache = self.stats_cache
        if cache is None:
            return None
        snapshot = getattr(cache, "counters_snapshot", None)
        if callable(snapshot):
            counters = snapshot()
            return {
                "id": id(cache),
                "hits": float(counters.get("hits", 0)),
                "misses": float(counters.get("misses", 0)),
                "expirations": float(counters.get("expirations", 0)),
            }
        return {
            "id": id(cache),
            "hits": float(getattr(cache, "hits", 0)),
            "misses": float(getattr(cache, "misses", 0)),
            "expirations": float(getattr(cache, "expirations", 0)),
        }

    # --- process-mode shard-worker contract ---------------------------------
    #
    # The scale-out control plane's process workers cannot touch this
    # connector's live state; instead the coordinator drives a
    # :class:`~repro.core.transport.WorkerTransport` obtained from
    # :meth:`worker_transport`, which (a) resolves cache hits locally and
    # snapshots the miss inputs into a picklable spec, then (b) merges the
    # worker's result — candidates or a trait matrix, plus a cache delta —
    # back in.  The export/merge/apply method trio below is the *pickle*
    # encoding of that contract; third-party connectors implementing only
    # the trio are wrapped into a deprecated
    # :class:`~repro.core.transport.LegacyPickleTransport`.

    def worker_transport_kinds(self) -> tuple[str, ...]:
        """Transport kinds this connector speaks, in preference order.

        Empty means no process-worker support (thread-pool fallback).
        The base implementation detects the legacy method trio and
        advertises ``("pickle",)`` for it; connectors with native
        transport support override this alongside
        :meth:`worker_transport`.
        """
        from repro.core.transport import LEGACY_WORKER_METHODS

        overridden = any(
            getattr(type(self), name, None) is not getattr(Connector, name)
            for name in LEGACY_WORKER_METHODS
        )
        return ("pickle",) if overridden else ()

    def worker_transport(self, kind: str | None = None):
        """Build the :class:`~repro.core.transport.WorkerTransport` to use.

        Args:
            kind: requested transport kind, or None for the connector's
                preferred one.

        Returns:
            A transport instance, or None when this connector cannot feed
            process workers at all.

        Raises:
            ValidationError: when ``kind`` is requested but not spoken.

        The base implementation only serves the deprecation shim: a
        subclass that overrode the legacy method trio (and nothing else)
        gets a :class:`~repro.core.transport.LegacyPickleTransport` plus a
        :class:`DeprecationWarning` pointing at this method.
        """
        kinds = self.worker_transport_kinds()
        if not kinds:
            return None
        if kind is not None and kind not in kinds:
            raise ValidationError(
                f"{type(self).__name__} does not speak the {kind!r} worker "
                f"transport (supported: {kinds})"
            )
        from repro.core.transport import LegacyPickleTransport

        warnings.warn(
            f"{type(self).__name__} implements the legacy worker-observe "
            "method trio (export_shard_work/merge_shard_result/"
            "apply_shard_delta); override Connector.worker_transport to "
            "return a WorkerTransport instead — the implicit adapter will "
            "be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        return LegacyPickleTransport(self)

    def store_worker_observations(self, delta, candidates: list[Candidate]) -> None:
        """Absorb worker observations (rebuilt coordinator-side) into the cache.

        The columnar transport's delta path: ``candidates`` are position-
        aligned with ``delta`` and already oriented.  Candidate-reusing
        caches store the candidates themselves, statistics caches their
        statistics.
        """
        cache = self.stats_cache
        if cache is None:
            return
        if self.reuses_candidates:
            cache.apply_delta(delta, candidates)
        else:
            cache.apply_delta(delta, [c.statistics for c in candidates])

    def export_shard_work(self, keys: list[CandidateKey], shard_index: int, traits):
        """Split ``keys`` into local hits and a picklable miss spec.

        Args:
            keys: the shard's candidate keys, in generation order.
            shard_index: which shard the work belongs to.
            traits: the shard pipeline's
                :class:`~repro.core.traits.TraitRegistry` (shipped in the
                spec — workers orient what they observe).

        Returns:
            ``(placed, spec)`` — ``placed`` is a candidate list with
            ``None`` holes at miss positions, ``spec`` the
            :class:`~repro.core.workers.ShardWorkSpec` covering the holes
            in order (``None`` when everything hit).

        Raises:
            ValidationError: connectors without worker-observe support.
        """
        raise ValidationError(
            f"{type(self).__name__} cannot export shard work for process "
            "workers (supports_worker_observe is False); run the sharded "
            "pipeline with workers='threads'"
        )

    def merge_shard_result(self, placed: list, result) -> list[Candidate]:
        """Fill ``placed``'s holes from a worker result and merge its cache delta.

        Raises:
            ValidationError: connectors without worker-observe support.
        """
        raise ValidationError(
            f"{type(self).__name__} cannot merge shard worker results "
            "(supports_worker_observe is False)"
        )

    def apply_shard_delta(self, result) -> None:
        """Replay a worker result's cache delta without filling holes.

        The decide-in-worker path: the worker returns only the *selected*
        candidates (position-aligned with the delta), so there is nothing
        to merge into a placed list — the coordinator just absorbs the
        cache updates.

        Raises:
            ValidationError: connectors without worker-observe support.
        """
        raise ValidationError(
            f"{type(self).__name__} cannot apply shard worker cache deltas "
            "(supports_worker_observe is False)"
        )


class LstConnector(Connector):
    """Catalog-of-live-tables connector.

    Args:
        catalog: the control plane whose tables are compaction targets.
        include_databases: restrict candidate generation to these databases
            (None = all).
        stats_cache: optional incremental-observation cache.  A
            :class:`~repro.core.statscache.StatsCache` caches frozen
            statistics keyed by candidate, trusted until a write event
            (service notification) invalidates them or their TTL lapses.
            An :class:`~repro.core.statscache.IndexedCandidateCache`
            enables the *dense* path the fleet connector uses: candidate
            keys are interned to dense integer indices, the table's
            metadata ``version`` (bumped by every commit) serves as the
            freshness token — so entries self-heal with no event plumbing —
            and whole annotated candidates are reused across cycles,
            skipping the statistics build *and* the trait recompute for
            clean tables.  As with the fleet connector, custom traits that
            read ``quota_utilization`` should not be combined with a
            candidate-reusing cache (quota is re-stamped on hits, but
            traits are not recomputed).

    The bulk :meth:`observe` path passes each table's metadata ``version``
    as the freshness token for *both* cache kinds, so cached entries
    self-heal when a table commits even if no write event arrives — and,
    because :meth:`export_shard_work` applies the identical hit rule, a
    key is shipped to a process worker if and only if the in-process path
    would have re-observed it (the worker modes' byte-identical cycle
    reports depend on exactly that).  The single-key
    :meth:`collect_statistics` API keeps the event/TTL-only trust model.
    """

    #: Observation snapshots to a frozen, picklable
    #: :class:`~repro.catalog.snapshot.CatalogObservationSlice`, so this
    #: connector can feed process-mode shard workers.
    supports_worker_observe = True

    def worker_transport_kinds(self) -> tuple[str, ...]:
        return ("columnar", "pickle")

    def worker_transport(self, kind: str | None = None):
        from repro.core.transport import ColumnarTransport, PickleTransport

        if kind in (None, "columnar"):
            return ColumnarTransport(self)
        if kind == "pickle":
            return PickleTransport(self)
        raise ValidationError(
            f"LstConnector does not speak the {kind!r} worker transport "
            f"(supported: {self.worker_transport_kinds()})"
        )

    def __init__(
        self,
        catalog: Catalog,
        include_databases: list[str] | None = None,
        stats_cache: StatsCache | IndexedCandidateCache | None = None,
    ) -> None:
        self.catalog = catalog
        self.include_databases = (
            set(include_databases) if include_databases is not None else None
        )
        self.stats_cache = stats_cache
        #: Dense index interning (dense path): candidate key → slot index.
        self._index_of: dict[CandidateKey, int] = {}
        #: Reverse mapping for table-granular write-event invalidation.
        self._indices_by_table: dict[str, list[int]] = {}
        # Sharded pipelines observe disjoint key slices of one shared
        # connector on a thread pool; interning a *new* key reads then
        # grows two dicts, which must not interleave across threads (two
        # keys racing len() would share a slot).
        self._intern_lock = threading.Lock()

    @property
    def _dense(self) -> bool:
        """Whether the dense candidate-reusing cache path is active.

        Derived from the live ``stats_cache`` attribute (not frozen at
        construction), so assigning a cache after construction — as the
        service wiring does — selects the right observation path.
        """
        return isinstance(self.stats_cache, IndexedCandidateCache)

    @property
    def reuses_candidates(self) -> bool:  # type: ignore[override]
        return self._dense

    def _dense_index(self, key: CandidateKey) -> int:
        # Double-checked locking: dict reads are atomic under the GIL and
        # an interned index is immutable once assigned, so the unlocked
        # first probe can only miss (never misread) — the locked re-check
        # closes the insert race.
        index = self._index_of.get(key)  # repro-lint: disable=RL001 -- double-checked locking; entries are write-once and re-checked under the lock
        if index is None:
            with self._intern_lock:
                index = self._index_of.get(key)
                if index is None:
                    index = self._index_of[key] = len(self._index_of)
                    self._indices_by_table.setdefault(key.qualified_table, []).append(
                        index
                    )
        return index

    def _restamp_quota(self, key: CandidateKey, statistics: CandidateStatistics) -> None:
        # Quota drifts through *other* tables' writes while this table's
        # version holds still; re-stamp it so cached observations stay
        # exactly equal to fresh ones.
        quota = self._quota(key)
        if statistics.quota_utilization != quota:
            object.__setattr__(statistics, "quota_utilization", quota)

    def _split_hits(
        self, keys: list[CandidateKey], now: float
    ) -> tuple[list[Candidate | None], list[CandidateKey], list, list, list[int]]:
        """The single source of the bulk-observation hit-validity rule.

        A key hits iff its cache entry was stored under the table's
        current metadata ``version`` (and is younger than the TTL); hits
        get their database-level quota re-stamped in place.  Shared by
        :meth:`observe` and :meth:`export_shard_work`, so the in-process
        and worker paths can never disagree about which keys need
        rebuilding.

        Returns:
            ``(placed, miss_keys, miss_slots, miss_tokens,
            miss_positions)`` — ``placed`` holds the hit candidates with
            ``None`` holes; the miss lists describe the holes in order
            (keys, cache slots, freshness tokens, hole positions).
        """
        cache = self.stats_cache
        dense = self._dense
        placed: list[Candidate | None] = [None] * len(keys)
        miss_keys: list[CandidateKey] = []
        miss_slots: list = []
        miss_tokens: list = []
        miss_positions: list[int] = []
        for pos, key in enumerate(keys):
            # The version read is the cheap per-table change counter: one
            # catalog lookup instead of a full file listing + statistics
            # build for clean tables.
            token = self.table_for(key).version
            if dense:
                slot: object = self._dense_index(key)
                candidate = cache.get(slot, now, token)  # type: ignore[union-attr, arg-type]
                if candidate is not None:
                    self._restamp_quota(key, candidate.statistics)
                    placed[pos] = candidate
                    continue
            elif cache is not None:
                slot = key
                statistics = cache.get(key, now, token)  # type: ignore[union-attr]
                if statistics is not None:
                    self._restamp_quota(key, statistics)
                    placed[pos] = Candidate(key=key, statistics=statistics)
                    continue
            else:
                slot = key
            miss_keys.append(key)
            miss_slots.append(slot)
            miss_tokens.append(token)
            miss_positions.append(pos)
        return placed, miss_keys, miss_slots, miss_tokens, miss_positions

    def observe(self, keys: list[CandidateKey]) -> list[Candidate]:
        now = self.catalog.clock.now
        placed, miss_keys, miss_slots, miss_tokens, miss_positions = self._split_hits(
            keys, now
        )
        if not miss_keys:
            return placed  # type: ignore[return-value] — no holes
        cache = self.stats_cache
        dense = self._dense
        for key, slot, token, pos in zip(
            miss_keys, miss_slots, miss_tokens, miss_positions
        ):
            statistics = self._collect_statistics(key)
            candidate = Candidate(key=key, statistics=statistics)
            if dense:
                cache.put(slot, candidate, now, token)  # type: ignore[union-attr, arg-type]
            elif cache is not None:
                cache.put(key, statistics, now, token)  # type: ignore[union-attr]
            placed[pos] = candidate
        return placed  # type: ignore[return-value] — all holes filled

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: evict ``key``'s table from either cache kind."""
        if self.stats_cache is None:
            return
        if self._dense:
            # Snapshot the index list under the intern lock so a
            # concurrent _dense_index() append cannot race the iteration.
            with self._intern_lock:
                indices = list(self._indices_by_table.get(key.qualified_table, ()))
            for index in indices:
                self.stats_cache.invalidate_index(index)
        else:
            self.stats_cache.invalidate(key)

    def _tables(self) -> list[BaseTable]:
        tables = []
        for identifier in self.catalog.list_tables():
            if (
                self.include_databases is not None
                and identifier.database not in self.include_databases
            ):
                continue
            tables.append(self.catalog.load_table(identifier))
        return tables

    def list_candidates(self, strategy: str = "table") -> list[CandidateKey]:
        if strategy not in GENERATION_STRATEGIES:
            raise ValidationError(
                f"unknown generation strategy {strategy!r}; "
                f"expected one of {GENERATION_STRATEGIES}"
            )
        keys: list[CandidateKey] = []
        for table in self._tables():
            ident = table.identifier
            use_partitions = strategy == "partition" or (
                strategy == "hybrid" and table.spec.is_partitioned
            )
            if use_partitions and table.spec.is_partitioned:
                for partition in table.partitions():
                    keys.append(
                        CandidateKey(
                            database=ident.database,
                            table=ident.name,
                            scope=CandidateScope.PARTITION,
                            partition=partition,
                        )
                    )
            else:
                keys.append(
                    CandidateKey(
                        database=ident.database,
                        table=ident.name,
                        scope=CandidateScope.TABLE,
                    )
                )
        return keys

    def table_for(self, key: CandidateKey) -> BaseTable:
        """The live table object behind a candidate key."""
        return self.catalog.load_table(key.qualified_table)

    def snapshot_candidate(self, table: BaseTable, since_snapshot_id: int) -> CandidateKey:
        """A snapshot-scope candidate: files added after a base snapshot.

        §4.1: snapshot scope is beneficial when (reasonably) fresh data
        needs more frequent access — only the recently written files are
        considered for compaction, keeping performance objectives for the
        fresh subset without rewriting history.
        """
        ident = table.identifier
        table.snapshot(since_snapshot_id)  # validates existence
        return CandidateKey(
            database=ident.database,
            table=ident.name,
            scope=CandidateScope.SNAPSHOT,
            snapshot_id=since_snapshot_id,
        )

    def files_for(self, key: CandidateKey):
        """Live data files in a candidate's scope."""
        table = self.table_for(key)
        if key.scope is CandidateScope.PARTITION:
            return [f for f in table.live_files() if f.partition == key.partition]
        if key.scope is CandidateScope.SNAPSHOT:
            base = table.snapshot(key.snapshot_id)
            base_ids = {f.file_id for f in base.live_files}
            return [f for f in table.live_files() if f.file_id not in base_ids]
        return table.live_files()

    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        cache = self.stats_cache
        if self._dense:
            # The dense cache stores whole candidates per index (see
            # observe); single-key statistic reads bypass it.
            cache = None
        if cache is not None:
            now = self.catalog.clock.now
            cached = cache.get(key, now)
            if cached is not None:
                # Quota is database-level, so it drifts through *other*
                # tables' writes while this entry stays valid; re-stamp it
                # in place so cached observations stay exactly equal to
                # fresh ones (the invalidation sources are table-granular).
                quota = self._quota(key)
                if cached.quota_utilization != quota:
                    object.__setattr__(cached, "quota_utilization", quota)
                return cached
        statistics = self._collect_statistics(key)
        if cache is not None:
            cache.put(key, statistics, now)
        return statistics

    def _quota(self, key: CandidateKey) -> float:
        try:
            return self.catalog.quota_utilization(key.database)
        except ValidationError:
            return 0.0

    def _observation_row(self, key: CandidateKey) -> tuple:
        """The raw per-candidate observation inputs, in snapshot column order.

        ``(file_sizes, target_file_size, partition_count,
        delete_file_count, created_at, last_modified_at,
        quota_utilization, version)`` — everything
        :func:`~repro.catalog.snapshot.build_candidate_statistics` needs,
        plus the table's metadata version as the freshness token.  Both
        the live statistics build and the worker-bound
        :class:`~repro.catalog.snapshot.CatalogObservationSlice` come from
        this method, so the two observation paths cannot drift.
        """
        table = self.table_for(key)
        policy = self.catalog.policy(key.qualified_table)
        files = self.files_for(key)
        if key.scope is CandidateScope.PARTITION:
            partition_count = 1
            # Partition-scope candidates carry partition-level write
            # recency: write-activity filters can then skip hot partitions
            # while still compacting the table's cold ones.
            last_modified = table.partition_last_modified(key.partition)
        else:
            partition_count = max(len({f.partition for f in files}), 1)
            last_modified = table.last_modified_at
        return (
            tuple(f.size_bytes for f in files),
            policy.target_file_size,
            partition_count,
            table.delete_file_count,
            table.created_at,
            last_modified,
            self._quota(key),
            table.version,
        )

    def _collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        row = self._observation_row(key)
        return build_candidate_statistics(*row[:-1])

    # --- process-mode shard workers ---------------------------------------------

    def export_shard_work(
        self, keys: list[CandidateKey], shard_index: int, traits
    ) -> tuple[list[Candidate | None], "object | None"]:
        """Resolve cache hits locally; snapshot the misses into a picklable spec.

        The hit pass *is* :meth:`_split_hits` — the same code the
        in-process :meth:`observe` path runs — and the miss rows are
        captured into a frozen
        :class:`~repro.catalog.snapshot.CatalogObservationSlice` carrying
        per-key file sizes, policy targets and ``table.version`` freshness
        tokens.  Only the dirty slice crosses the process boundary, never
        the live catalog.
        """
        from repro.core.workers import ShardWorkSpec

        now = self.catalog.clock.now
        placed, miss_keys, miss_slots, miss_tokens, _ = self._split_hits(keys, now)
        if not miss_keys:
            return placed, None
        rows = [self._observation_row(key) for key in miss_keys]
        snapshot = CatalogObservationSlice(
            file_sizes=tuple(row[0] for row in rows),
            target_file_sizes=tuple(row[1] for row in rows),
            partition_counts=tuple(row[2] for row in rows),
            delete_file_counts=tuple(row[3] for row in rows),
            created_ats=tuple(row[4] for row in rows),
            last_modified_ats=tuple(row[5] for row in rows),
            quota_utilizations=tuple(row[6] for row in rows),
            versions=tuple(row[7] for row in rows),
        )
        spec = ShardWorkSpec(
            shard_index=shard_index,
            keys=tuple(miss_keys),
            columns={},
            slots=tuple(miss_slots),
            tokens=tuple(miss_tokens),
            target_file_size=1,  # unused: the snapshot carries per-key targets
            now=now,
            traits=traits,
            snapshot=snapshot,
        )
        return placed, spec

    def export_columnar(
        self, keys: list[CandidateKey], shard_index: int, traits
    ) -> tuple[list[Candidate | None], "object | None"]:
        """Columnar export: the same hit rule, misses packed as flat arrays.

        The hit pass *is* :meth:`_split_hits` and the miss rows come from
        :meth:`_observation_row` — identical inputs to every other
        observation path — but instead of per-key tuples the file sizes
        land in one concatenated int64 array (with offsets) inside a
        shared-memory block, scalar aggregates precomputed by exact
        integer cumulative sums.  The coordinator retains zero-copy views
        of the same block to rebuild the worker's candidates on merge.
        """
        from repro.core.columnar import ColumnarMissBlock
        from repro.core.workers import ShardWorkSpec

        now = self.catalog.clock.now
        placed, miss_keys, miss_slots, miss_tokens, _ = self._split_hits(keys, now)
        if not miss_keys:
            return placed, None
        rows = [self._observation_row(key) for key in miss_keys]
        block = ColumnarMissBlock.from_sizes(
            size_lists=[row[0] for row in rows],
            targets=[row[1] for row in rows],
            partition_counts=[row[2] for row in rows],
            delete_file_counts=[row[3] for row in rows],
            created_at=[row[4] for row in rows],
            last_modified_at=[row[5] for row in rows],
            quota_utilization=[row[6] for row in rows],
        )
        spec = ShardWorkSpec(
            shard_index=shard_index,
            keys=tuple(miss_keys),
            columns={},
            slots=tuple(miss_slots),
            tokens=tuple(miss_tokens),
            target_file_size=1,  # unused: the block carries per-key targets
            now=now,
            traits=traits,
            snapshot=block,
            transport="columnar",
        )
        return placed, spec

    def apply_shard_delta(self, result) -> None:
        """Replay a worker result's cache delta into whichever cache kind is wired.

        Version compatibility is the pool handshake's job
        (:meth:`~repro.core.workers.WorkerPool.negotiate`), not a
        per-result check.
        """
        cache = self.stats_cache
        if cache is None:
            return
        if self._dense:
            cache.apply_delta(result.cache_delta, result.candidates)
        else:
            cache.apply_delta(
                result.cache_delta, [c.statistics for c in result.candidates]
            )

    def merge_shard_result(
        self, placed: list[Candidate | None], result
    ) -> list[Candidate]:
        """Fill the miss holes from a worker's result; replay its cache delta."""
        holes = sum(1 for candidate in placed if candidate is None)
        if holes != len(result.candidates):
            raise ValidationError(
                f"shard result carries {len(result.candidates)} candidates "
                f"for {holes} miss positions"
            )
        self.apply_shard_delta(result)
        fill = iter(result.candidates)
        return [c if c is not None else next(fill) for c in placed]
