"""Shard workers: the process boundary of the scale-out control plane.

The sharded control plane (:mod:`repro.core.sharding`) partitions the
observe/orient work of one OODA cycle across shards.  Threads overlap the
numpy-released portions of that work, but CPU-bound statistics
construction and trait math serialize on the GIL — so true multi-core
cycles need shard work to cross a *process* boundary, and everything that
crosses must become an explicit, versioned, picklable contract:

* :class:`ShardWorkSpec` — one shard's unit of work: the candidate keys
  that missed the coordinator's stats cache, a picklable **connector
  snapshot** (parallel columns of observation inputs, e.g. a
  :meth:`~repro.fleet.model.ObserveView.take` slice), the cache slot
  indices and freshness **tokens** those keys map to, and the orient-phase
  trait registry;
* :class:`ShardCycleResult` — what comes back: fully observed *and*
  oriented candidates plus a :class:`CacheDelta`, so the coordinator's
  :class:`~repro.core.statscache.StatsCache` /
  :class:`~repro.core.statscache.IndexedCandidateCache` learn the worker's
  observations instead of silently dropping them (the next cycle stays
  O(dirty tables) in every worker mode);
* :func:`run_shard_work` — the module-level worker entry point (process
  pools can only ship module-level callables).

Only the *miss* slice crosses the boundary: the coordinator resolves cache
hits locally (a token compare per key), so steady-state specs stay small.

The decide phase can cross the boundary too — but only for *local*
selection.  Global selection must see every shard's survivors at once, so
it always decides on the coordinator; a ``selection="local"`` shard, by
contrast, ranks and selects under its own split budget, which a worker can
do entirely in-process when the spec carries a :class:`ShardDecideSpec`
(picklable policy + selector + filter chains + the coordinator-resolved
cache hits).  The worker then returns a :class:`ShardDecision` — counts
plus the *selected* candidates only — shrinking the return payload from
O(shard candidates) to O(selected).  The trade-off is cache warmth: only
selected misses ride back in the cache delta, so unselected dirty tables
are re-observed next cycle (a fair trade when observation is CPU-bound
and fans out across workers anyway).  Either way the cycle reports stay
byte-identical to thread/inline mode (property-tested).

:class:`WorkerPool` is the persistent executor behind both the sharded
pipeline and the Policy Lab's what-if sweeps
(:class:`~repro.replay.whatif.WhatIfRunner`): spawned once, reused across
cycles to amortize fork/spawn cost, shut down via :meth:`WorkerPool.close`
(or a ``weakref`` finalizer if the owner is garbage-collected first).
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
import weakref
from concurrent.futures import Executor, Future, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.candidates import Candidate, CandidateKey, CandidateStatistics
from repro.core.filters import CandidateFilter, apply_filters
from repro.core.ranking import RankingPolicy
from repro.core.selection import Selector
from repro.core.traits import TraitRegistry
from repro.errors import ValidationError, WorkerError

#: Supported shard-worker execution modes.  ``threads`` is the default —
#: it needs no picklable connector snapshot and works on every platform;
#: ``processes`` is the true multi-core mode for CPU-bound observe work.
WORKER_MODES = ("threads", "processes")

#: Contract version stamped on every spec/result; a coordinator refuses a
#: result whose version it does not understand (mixed-version pools after
#: an upgrade must fail loudly, not corrupt caches).  Version 2 added the
#: catalog-snapshot observation payload and the worker-side decide
#: contract (:class:`ShardDecideSpec` / :class:`ShardDecision`).
#: Version 3 added span propagation: ``ShardWorkSpec.trace`` carries the
#: coordinator's span context in, ``ShardCycleResult.spans`` carries the
#: worker-side observe/decide spans back.
#: Version 4 added transport negotiation: specs/results carry a
#: ``transport`` kind, the columnar payloads
#: (:mod:`repro.core.columnar`) replace per-object pickling, worker-side
#: decide ships stats-only deltas for *all* misses (full cache warmth),
#: and version checks moved into the :meth:`WorkerPool.negotiate`
#: handshake.
WORK_SPEC_VERSION = 4

#: Worker transport kinds this build speaks, in preference order.
#: ``columnar`` ships shard payloads as flat arrays in shared memory
#: (:mod:`repro.core.columnar`); ``pickle`` ships per-candidate objects.
TRANSPORT_KINDS = ("columnar", "pickle")

#: Column names a :class:`ShardWorkSpec` snapshot must carry — exactly the
#: per-candidate inputs of
#: :meth:`~repro.core.candidates.CandidateStatistics.build_unchecked`
#: (``target_file_size`` is a scalar on the spec).
SPEC_COLUMNS = (
    "file_count",
    "total_bytes",
    "small_file_count",
    "small_file_bytes",
    "partition_count",
    "created_at",
    "last_modified_at",
    "quota_utilization",
)


@dataclass(frozen=True)
class TransportContract:
    """One side's worker contract: spec/result version + spoken transports.

    The coordinator's :meth:`WorkerPool.negotiate` compares its own
    contract against one fetched from a live worker before the first spec
    ships — the single handshake that replaced per-object ``version:``
    field checks (mixed-version pools after an upgrade must fail loudly,
    with both sides named, not corrupt caches one result at a time).
    """

    version: int
    transports: tuple[str, ...]


def describe_contract() -> TransportContract:
    """This build's worker contract (module-level: pools must pickle it)."""
    return TransportContract(version=WORK_SPEC_VERSION, transports=TRANSPORT_KINDS)


def process_workers_available() -> bool:
    """Whether this platform can run process-mode shard workers safely.

    Process mode leans on ``fork`` so workers inherit the imported modules
    (spawn/forkserver re-import the world — and re-run ``__main__`` — per
    worker, which both dwarfs a cycle and breaks script/REPL callers).
    Restricted to Linux: macOS exposes ``os.fork`` but forking after any
    thread has started crashes in system frameworks, and Windows has no
    fork at all — both stay on the thread-pool fallback.  Forked children
    here only ever touch the pool's own freshly created pipes/queues (the
    classic fork-after-threads deadlocks involve re-using the parent's
    locked state, which :func:`run_shard_work` never does).
    """
    return sys.platform.startswith("linux") and hasattr(os, "fork")


def burn_cpu(units: int, seed: bytes = b"observe") -> int:
    """Deterministically burn ``units`` rounds of CPU; returns a checksum.

    Emulates the statistics-collection cost a real connector pays per
    candidate (manifest parsing, file listing, column-stat decoding) that
    the in-memory fleet model skips.  Pure CPU with no allocation, so it
    holds the GIL — which is the point: it makes observe workloads
    CPU-bound the way production ones are, letting benchmarks compare
    worker modes honestly.
    """
    digest = seed
    for _ in range(max(units, 0)):
        digest = hashlib.blake2b(digest, digest_size=16).digest()
    return digest[0]


@dataclass(frozen=True)
class CacheDelta:
    """A worker's cache updates, replayed into the coordinator's cache.

    Position-aligned with the result's candidates: entry ``i`` says "store
    candidate ``i`` under slot ``slots[i]`` with freshness ``tokens[i]``,
    observed at ``stored_at``".  Slots are dense integers for
    :class:`~repro.core.statscache.IndexedCandidateCache` and
    :class:`~repro.core.candidates.CandidateKey` objects for the key-hashed
    :class:`~repro.core.statscache.StatsCache`.
    """

    slots: tuple = ()
    tokens: tuple = ()
    stored_at: float = 0.0

    def __len__(self) -> int:
        return len(self.slots)


@dataclass(frozen=True)
class ShardDecideSpec:
    """The decide phase, shipped into a worker (``selection="local"`` only).

    Attributes:
        policy: the shard's ranking policy (picklable — every built-in
            policy is plain data).
        selector: the shard's *split* selection budget.
        stats_filters: post-observe filter chain.
        trait_filters: post-orient filter chain.
        hits: the coordinator-resolved candidate list in generation order,
            with ``None`` holes at the spec's miss positions — the worker
            fills the holes with its own observations, so rank/select see
            the exact candidate set the coordinator would have.
        hits_payload: columnar alternative to ``hits``
            (:class:`repro.core.columnar.ColumnarHitPayload`): the same
            generation-order list shipped as scalar statistic arrays plus
            the already-computed trait matrix, so hit ``Candidate``
            objects never cross the boundary.  Mutually exclusive with a
            non-empty ``hits``.
    """

    policy: RankingPolicy
    selector: Selector
    stats_filters: tuple[CandidateFilter, ...] = ()
    trait_filters: tuple[CandidateFilter, ...] = ()
    hits: tuple = ()
    hits_payload: object | None = None


@dataclass
class ShardDecision:
    """A worker's decide-phase outcome (mirrors the CycleReport fields)."""

    after_stats_filters: int = 0
    after_trait_filters: int = 0
    ranked: int = 0
    #: Selected candidates in rank order — the only candidates that cross
    #: back when workers decide.
    selected: list[Candidate] = field(default_factory=list)


@dataclass(frozen=True)
class ShardWorkSpec:
    """One shard's picklable unit of observe/orient (and optionally decide) work.

    Attributes:
        version: contract version (:data:`WORK_SPEC_VERSION`).
        shard_index: which shard this work belongs to.
        keys: candidate keys that missed the coordinator's cache, in
            generation order.
        columns: the connector snapshot — name → per-key tuple for every
            :data:`SPEC_COLUMNS` name (ignored when ``snapshot`` is set).
        slots: cache slot per key (int index or the key itself).
        tokens: freshness token per key (what the cache delta stores, so
            invalidation state survives the round trip).
        target_file_size: scalar compaction target for every key (unused
            when ``snapshot`` carries per-key targets).
        now: observation time (stamped on the cache delta).
        traits: the orient-phase registry (applied in the worker — trait
            math is the CPU-bound half of orientation).
        observe_cost: per-candidate CPU units handed to :func:`burn_cpu`,
            emulating real statistics-collection cost.
        snapshot: alternative observation payload for connectors whose
            statistics do not fit :data:`SPEC_COLUMNS` — any picklable
            object with ``__len__`` and ``statistics(i) ->
            CandidateStatistics`` (e.g.
            :class:`repro.catalog.snapshot.CatalogObservationSlice`, which
            carries per-key file sizes and ``table.version`` tokens).
        decide: when set, the worker runs the full local decide phase
            after observe/orient and returns a :class:`ShardDecision`
            instead of the observed candidates (see the module docstring
            for the payload trade-off).
        trace: when set, the coordinator's span context for this shard
            (:class:`repro.obs.tracing.SpanContext`); the worker records
            its observe/decide spans under it and ships them back in
            :attr:`ShardCycleResult.spans` so per-process timings stitch
            into one coordinator trace.
        transport: which :data:`TRANSPORT_KINDS` encoding this spec uses.
            ``columnar`` specs carry a
            :class:`repro.core.columnar.ColumnarMissBlock` snapshot and
            return trait matrices instead of candidate objects.
    """

    shard_index: int
    keys: tuple[CandidateKey, ...]
    columns: dict[str, tuple]
    slots: tuple
    tokens: tuple
    target_file_size: int
    now: float
    traits: TraitRegistry
    observe_cost: int = 0
    snapshot: object | None = None
    decide: ShardDecideSpec | None = None
    trace: object | None = None
    transport: str = "pickle"
    version: int = WORK_SPEC_VERSION

    def __post_init__(self) -> None:
        n = len(self.keys)
        if self.transport not in TRANSPORT_KINDS:
            raise ValidationError(
                f"unknown worker transport {self.transport!r}; "
                f"expected one of {TRANSPORT_KINDS}"
            )
        if self.snapshot is not None:
            if len(self.snapshot) != n:  # type: ignore[arg-type]
                raise ValidationError(
                    f"shard work snapshot has {len(self.snapshot)} rows "  # type: ignore[arg-type]
                    f"for {n} keys"
                )
        else:
            missing = [name for name in SPEC_COLUMNS if name not in self.columns]
            if missing:
                raise ValidationError(f"shard work spec missing columns: {missing}")
            bad = [
                name for name in SPEC_COLUMNS if len(self.columns[name]) != n
            ]
            if bad:
                raise ValidationError(
                    f"shard work spec columns must all have {n} rows "
                    f"(mismatched: {bad})"
                )
        if len(self.slots) != n or len(self.tokens) != n:
            raise ValidationError(
                f"shard work spec slots/tokens must both have {n} rows"
            )
        if self.decide is not None:
            payload = self.decide.hits_payload
            if payload is not None:
                if self.decide.hits:
                    raise ValidationError(
                        "decide spec carries both object hits and a hits payload"
                    )
                holes = payload.total - len(payload.keys)  # type: ignore[attr-defined]
            else:
                holes = sum(1 for c in self.decide.hits if c is None)
            if holes != n:
                raise ValidationError(
                    f"decide spec carries {holes} miss holes for {n} miss keys"
                )


@dataclass
class ShardCycleResult:
    """What one shard worker sends back across the process boundary.

    Attributes:
        version: contract version (must match the coordinator's).
        shard_index: echo of the spec's shard.
        candidates: observed + oriented candidates, position-aligned with
            ``cache_delta``.  Without a decide spec these are *all* the
            spec's candidates in key order; with one, only the selected
            misses (the rest never cross back).
        cache_delta: the cache updates the coordinator merges (see
            :class:`CacheDelta`); without it, process-mode cycles would
            re-observe every table every cycle.
        decision: the worker's decide-phase outcome (only when the spec
            carried a :class:`ShardDecideSpec`).
        observe_wall_s: wall-clock seconds the worker spent.
        spans: worker-side :class:`repro.obs.tracing.Span` records (only
            when the spec carried a ``trace`` context); the coordinator
            adopts them into its tracer.
        transport: echo of the spec's transport kind.
        columnar: the stats-only answer of a columnar-transport worker
            (:class:`repro.core.columnar.ColumnarResultPayload`) —
            ``candidates`` stays empty and the coordinator rebuilds them
            from its retained observation arrays plus this trait matrix.
    """

    shard_index: int
    candidates: list[Candidate] = field(default_factory=list)
    cache_delta: CacheDelta = field(default_factory=CacheDelta)
    decision: ShardDecision | None = None
    observe_wall_s: float = 0.0
    spans: list = field(default_factory=list)
    transport: str = "pickle"
    columnar: object | None = None
    version: int = WORK_SPEC_VERSION


def _observe_spec(spec: ShardWorkSpec) -> list[Candidate]:
    """Observe phase over a spec's miss keys (columns or snapshot payload)."""
    cost = spec.observe_cost
    candidates: list[Candidate] = []
    append = candidates.append
    snapshot = spec.snapshot
    if snapshot is not None:
        statistics = snapshot.statistics  # type: ignore[attr-defined]
        for i, key in enumerate(spec.keys):
            if cost:
                burn_cpu(cost, str(key).encode("utf-8"))
            append(Candidate(key=key, statistics=statistics(i)))
        return candidates
    build = CandidateStatistics.build_unchecked
    columns = spec.columns
    target = spec.target_file_size
    files = columns["file_count"]
    total_b = columns["total_bytes"]
    small = columns["small_file_count"]
    small_b = columns["small_file_bytes"]
    partitions = columns["partition_count"]
    created = columns["created_at"]
    modified = columns["last_modified_at"]
    quota = columns["quota_utilization"]
    for i, key in enumerate(spec.keys):
        if cost:
            burn_cpu(cost, str(key).encode("utf-8"))
        stats = build(
            file_count=files[i],
            total_bytes=total_b[i],
            small_file_count=small[i],
            small_file_bytes=small_b[i],
            target_file_size=target,
            partition_count=partitions[i],
            created_at=created[i],
            last_modified_at=modified[i],
            quota_utilization=quota[i],
        )
        append(Candidate(key=key, statistics=stats))
    return candidates


def _decide_in_worker(
    spec: ShardWorkSpec, observed: list[Candidate]
) -> tuple[ShardDecision, list[Candidate], CacheDelta]:
    """Run the local decide phase exactly as the coordinator would.

    Filter → orient → filter → rank → select, over the full generation-
    order candidate list (coordinator hits with the observed misses filled
    into their holes) — the same sequence as
    :meth:`~repro.core.pipeline.AutoCompPipeline.orient` followed by the
    sharded pipeline's local decide, so the decision is value-identical
    to a coordinator-side one.

    Returns the decision plus the cache-delta slice: only the *selected
    misses* (candidates observed this call) ride back to the coordinator's
    cache — unselected observations stay in the worker and die with it.
    """
    decide = spec.decide
    assert decide is not None
    fill = iter(observed)
    candidates = [c if c is not None else next(fill) for c in decide.hits]
    survivors = apply_filters(list(decide.stats_filters), candidates, spec.now)
    after_stats = len(survivors)
    spec.traits.annotate_all(survivors, only_missing=True)
    survivors = apply_filters(list(decide.trait_filters), survivors, spec.now)
    after_traits = len(survivors)
    ranked = decide.policy.rank(survivors)
    selected = decide.selector.select(ranked)
    slot_of = {
        id(c): (slot, token)
        for c, slot, token in zip(observed, spec.slots, spec.tokens)
    }
    delta_candidates: list[Candidate] = []
    slots: list = []
    tokens: list = []
    for candidate in selected:
        entry = slot_of.get(id(candidate))
        if entry is not None:
            delta_candidates.append(candidate)
            slots.append(entry[0])
            tokens.append(entry[1])
    decision = ShardDecision(
        after_stats_filters=after_stats,
        after_trait_filters=after_traits,
        ranked=len(ranked),
        selected=list(selected),
    )
    delta = CacheDelta(tuple(slots), tuple(tokens), stored_at=spec.now)
    return decision, delta_candidates, delta


def _observe_columnar(spec: ShardWorkSpec):
    """Columnar observe/orient: trait matrix straight from the miss block.

    Returns ``(trait_names, matrix, observed)`` where ``observed`` is
    ``None`` on the vectorised path and the per-object fallback's
    candidate list (already oriented) when any registered trait lacks a
    columnar implementation — custom traits keep working, they just pay
    object construction worker-side.
    """
    from repro.core.columnar import matrix_from_candidates

    block = spec.snapshot
    cost = spec.observe_cost
    if cost:
        for key in spec.keys:
            burn_cpu(cost, str(key).encode("utf-8"))
    names = tuple(spec.traits.names())
    matrix = spec.traits.compute_columnar_matrix(block)  # type: ignore[arg-type]
    if matrix is not None:
        return names, matrix, None
    statistics = block.statistics_batch()  # type: ignore[attr-defined]
    observed = [
        Candidate(key=key, statistics=stats)
        for key, stats in zip(spec.keys, statistics)
    ]
    spec.traits.annotate_all(observed)
    return names, matrix_from_candidates(observed, names), observed


def _decide_columnar(spec: ShardWorkSpec, names: tuple, matrix, observed):
    """Worker-side decide over columnar payloads; no candidates cross back.

    The same filter → orient → filter → rank → select sequence as
    :func:`_decide_in_worker`, over transient worker-local candidates:
    misses rebuilt from the block's scalars with traits pre-assigned from
    the matrix, hits rebuilt from the spec's
    :class:`~repro.core.columnar.ColumnarHitPayload` (or taken verbatim
    from object hits).  The answer is counts plus *references* into the
    coordinator's own candidate lists — and a cache delta covering every
    miss, so process-mode caches stay exactly as warm as thread-mode ones.
    """
    from repro.core.columnar import ColumnarResultPayload

    decide = spec.decide
    assert decide is not None
    if observed is None:
        statistics = spec.snapshot.statistics_batch(  # type: ignore[attr-defined]
            include_sizes=False
        )
        rows = matrix.tolist()
        observed = [
            Candidate(key=key, statistics=stats, traits=dict(zip(names, row)))
            for key, stats, row in zip(spec.keys, statistics, rows)
        ]
    if decide.hits_payload is not None:
        placed = decide.hits_payload.build()  # type: ignore[attr-defined]
    else:
        placed = list(decide.hits)
    ref_of: dict[int, tuple] = {}
    for j, candidate in enumerate(observed):
        ref_of[id(candidate)] = ("miss", j)
    for position, candidate in enumerate(placed):
        if candidate is not None:
            ref_of[id(candidate)] = ("hit", position)
    fill = iter(observed)
    candidates = [c if c is not None else next(fill) for c in placed]
    survivors = apply_filters(list(decide.stats_filters), candidates, spec.now)
    after_stats = len(survivors)
    spec.traits.annotate_all(survivors, only_missing=True)
    survivors = apply_filters(list(decide.trait_filters), survivors, spec.now)
    after_traits = len(survivors)
    ranked = decide.policy.rank(survivors)
    selected = decide.selector.select(ranked)
    decision = ShardDecision(
        after_stats_filters=after_stats,
        after_trait_filters=after_traits,
        ranked=len(ranked),
        selected=[],
    )
    payload = ColumnarResultPayload(
        trait_names=names,
        matrix=matrix,
        selected=tuple(ref_of[id(c)] for c in selected),
        scores=tuple(c.score for c in selected),
    )
    return decision, payload


def _run_columnar(spec: ShardWorkSpec, recorder, start: float) -> ShardCycleResult:
    """Columnar-transport half of :func:`run_shard_work`."""
    from repro.core.columnar import ColumnarResultPayload

    try:
        if recorder is not None:
            with recorder.span("observe", shard=spec.shard_index, keys=len(spec.keys)):
                names, matrix, observed = _observe_columnar(spec)
        else:
            names, matrix, observed = _observe_columnar(spec)
        # Every miss rides the delta: the coordinator rebuilds all of them
        # from its retained arrays, so nothing observed here is re-observed
        # next cycle (the pickle decide path's warmth loss does not apply).
        delta = CacheDelta(slots=spec.slots, tokens=spec.tokens, stored_at=spec.now)
        if spec.decide is None:
            return ShardCycleResult(
                shard_index=spec.shard_index,
                candidates=[],
                cache_delta=delta,
                observe_wall_s=time.perf_counter() - start,
                spans=recorder.spans if recorder is not None else [],
                transport="columnar",
                columnar=ColumnarResultPayload(trait_names=names, matrix=matrix),
            )
        if recorder is not None:
            with recorder.span("decide", shard=spec.shard_index):
                decision, payload = _decide_columnar(spec, names, matrix, observed)
        else:
            decision, payload = _decide_columnar(spec, names, matrix, observed)
        return ShardCycleResult(
            shard_index=spec.shard_index,
            candidates=[],
            cache_delta=delta,
            decision=decision,
            observe_wall_s=time.perf_counter() - start,
            spans=recorder.spans if recorder is not None else [],
            transport="columnar",
            columnar=payload,
        )
    finally:
        # Drop this process's segment mappings; the coordinator owns the
        # segments and unlinks them when it releases the spec.
        snapshot = spec.snapshot
        if snapshot is not None and hasattr(snapshot, "close"):
            snapshot.close()
        if spec.decide is not None and spec.decide.hits_payload is not None:
            spec.decide.hits_payload.close()  # type: ignore[attr-defined]


def run_shard_work(spec: ShardWorkSpec) -> ShardCycleResult:
    """Worker entry point: observe + orient (+ optionally decide) one spec.

    Module-level so process pools can pickle it.  Statistics go through
    the same constructors as the in-process paths and traits through the
    same registry batch compute, so the returned candidates are
    value-identical to thread-mode observation of the same inputs —
    the foundation of the modes' byte-identical cycle reports.
    """
    if spec.version != WORK_SPEC_VERSION:
        # Backstop only: WorkerPool.negotiate performs the real handshake
        # before any spec ships, so hitting this means a pool skipped it.
        raise WorkerError(
            f"shard work spec version {spec.version} != worker "
            f"{WORK_SPEC_VERSION}; the transport handshake "
            "(WorkerPool.negotiate) must run before specs ship"
        )
    if spec.transport == "columnar":
        recorder = None
        if spec.trace is not None:
            from repro.obs.tracing import SpanRecorder

            recorder = SpanRecorder(spec.trace)
        return _run_columnar(spec, recorder, time.perf_counter())
    recorder = None
    if spec.trace is not None:
        from repro.obs.tracing import SpanRecorder

        recorder = SpanRecorder(spec.trace)
    start = time.perf_counter()
    if recorder is not None:
        with recorder.span(
            "observe", shard=spec.shard_index, keys=len(spec.keys)
        ):
            candidates = _observe_spec(spec)
            if spec.decide is None:
                spec.traits.annotate_all(candidates)
    else:
        candidates = _observe_spec(spec)
        if spec.decide is None:
            spec.traits.annotate_all(candidates)
    if spec.decide is None:
        return ShardCycleResult(
            shard_index=spec.shard_index,
            candidates=candidates,
            cache_delta=CacheDelta(
                slots=spec.slots, tokens=spec.tokens, stored_at=spec.now
            ),
            observe_wall_s=time.perf_counter() - start,
            spans=recorder.spans if recorder is not None else [],
        )
    if recorder is not None:
        with recorder.span("decide", shard=spec.shard_index):
            decision, delta_candidates, delta = _decide_in_worker(spec, candidates)
    else:
        decision, delta_candidates, delta = _decide_in_worker(spec, candidates)
    return ShardCycleResult(
        shard_index=spec.shard_index,
        candidates=delta_candidates,
        cache_delta=delta,
        decision=decision,
        observe_wall_s=time.perf_counter() - start,
        spans=recorder.spans if recorder is not None else [],
    )


def _shutdown_executor(executor: Executor) -> None:
    """Finalizer target: must not capture the owning pool (GC safety)."""
    executor.shutdown(wait=False, cancel_futures=True)


class WorkerPool:
    """A persistent thread- or process-backed executor with one lifecycle.

    Construction is cheap — the underlying executor spawns lazily on first
    use and is then *reused* across cycles (spawning a process pool per
    cycle costs more than many cycles' work).  Owners call :meth:`close`
    when done; a ``weakref`` finalizer backstops owners that forget, so
    garbage-collected pools never strand worker processes.

    Args:
        mode: one of :data:`WORKER_MODES`.
        max_workers: executor width.
    """

    def __init__(self, mode: str = "threads", max_workers: int = 1) -> None:
        if mode not in WORKER_MODES:
            raise ValidationError(
                f"unknown worker mode {mode!r}; expected one of {WORKER_MODES}"
            )
        if max_workers <= 0:
            raise ValidationError(f"max_workers must be positive, got {max_workers}")
        if mode == "processes" and not process_workers_available():
            raise ValidationError(
                "process workers need fork on Linux; use the thread-pool "
                "fallback (mode='threads') on this platform"
            )
        self.mode = mode
        self.max_workers = max_workers
        self._executor: Executor | None = None
        self._finalizer: weakref.finalize | None = None
        self._futures: list[Future] = []
        self._contract: TransportContract | None = None
        self._resources: dict[int, object] = {}

    @property
    def started(self) -> bool:
        """Whether the underlying executor has been spawned."""
        return self._executor is not None

    def _ensure(self) -> Executor:
        executor = self._executor
        if executor is None:
            if self.mode == "processes":
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                executor = ThreadPoolExecutor(max_workers=self.max_workers)
            self._executor = executor
            self._finalizer = weakref.finalize(self, _shutdown_executor, executor)
        return executor

    def negotiate(self, transport: str) -> TransportContract:
        """Handshake the worker contract; the pool's one version check.

        Fetches :func:`describe_contract` from a live worker (threads
        share the interpreter, so their contract is by construction the
        local one) and verifies both sides run the same spec version and
        both speak ``transport``.  Cached until :meth:`close` — one round
        trip per pool lifetime, not per cycle.

        Raises:
            WorkerError: naming both sides' versions and transports on
                any mismatch — the single failure point that replaced
                per-object ``version:`` field checks.
        """
        local = describe_contract()
        remote = self._contract
        if remote is None:
            if self.mode == "processes":
                remote = self.submit(describe_contract).result()
            else:
                remote = local
            self._contract = remote
        if (
            remote.version != local.version
            or transport not in remote.transports
            or transport not in local.transports
        ):
            raise WorkerError(
                f"worker transport handshake failed for {transport!r}: "
                f"coordinator speaks v{local.version} {local.transports}, "
                f"workers speak v{remote.version} {remote.transports}"
            )
        return remote

    def track_resource(self, resource: object) -> None:
        """Register a disposable (``dispose()``-bearing) shared resource.

        The columnar transport parks its live shared-memory blocks here so
        :meth:`close` can unlink anything a crashed worker or an
        interrupted cycle left behind — segments must never outlive the
        pool.
        """
        self._resources[id(resource)] = resource

    def untrack_resource(self, resource: object) -> None:
        """Drop a resource released through the normal per-cycle path."""
        self._resources.pop(id(resource), None)

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Submit one task (spawning the executor on first use)."""
        future = self._ensure().submit(fn, *args, **kwargs)
        self._track(future)
        return future

    def _track(self, future: Future) -> None:
        # Kept so close(timeout=...) can cancel-then-drain in-flight work;
        # pruned opportunistically so long-lived pools don't accumulate
        # references to every future they ever ran.
        if len(self._futures) >= 64:
            self._futures = [f for f in self._futures if not f.done()]
        self._futures.append(future)

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Run ``fn`` over ``items``, results in submission order.

        Results are assembled in input order regardless of completion
        order, so callers' outputs stay deterministic whatever the pool
        width.
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def run_tasks(self, thunks: Sequence[Callable[[], object]]) -> list:
        """Run zero-argument callables, results in submission order.

        Thread mode only: closures cannot cross a process boundary, which
        is exactly the constraint the spec/result contracts exist to lift.
        """
        if self.mode == "processes":
            raise ValidationError(
                "process pools cannot run closures; submit a module-level "
                "function with a picklable spec instead"
            )
        futures = [self.submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]

    def close(self, timeout: float | None = None) -> None:
        """Shut the executor down (idempotent).

        Args:
            timeout: ``None`` (the default) waits for running work to
                finish — the historical behaviour.  With a timeout, close
                becomes a *drain*: queued-but-unstarted futures are
                cancelled, running ones get up to ``timeout`` seconds to
                finish, and any process children still alive after that
                are terminated (then killed) and joined — so a daemon
                shutting down mid-cycle never strands orphans for the
                interpreter-teardown finalizer (which can run after the
                executor machinery is already torn down).
        """
        executor, self._executor = self._executor, None
        futures, self._futures = self._futures, []
        resources, self._resources = self._resources, {}
        self._contract = None
        if executor is None:
            self._dispose_resources(resources)
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if timeout is None:
            executor.shutdown(wait=True)
            self._dispose_resources(resources)
            return
        pending = [f for f in futures if not f.done()]
        for future in pending:
            future.cancel()  # unstarted work never runs
        if pending:
            wait(pending, timeout=timeout)
        # Snapshot process children before shutdown forgets them, so we
        # can join (and if necessary kill) stragglers ourselves.
        children = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + timeout
        for child in children:
            child.join(timeout=max(deadline - time.monotonic(), 0.0))
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join(timeout=1.0)
            if child.is_alive():
                child.kill()
                child.join(timeout=1.0)
        self._dispose_resources(resources)

    @staticmethod
    def _dispose_resources(resources: dict[int, object]) -> None:
        # After workers are down: unlinking first could yank a segment out
        # from under a straggler mid-read.
        for resource in resources.values():
            try:
                resource.dispose()  # type: ignore[attr-defined]
            except Exception:
                pass  # best-effort cleanup must not mask the close itself

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
