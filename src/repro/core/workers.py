"""Shard workers: the process boundary of the scale-out control plane.

The sharded control plane (:mod:`repro.core.sharding`) partitions the
observe/orient work of one OODA cycle across shards.  Threads overlap the
numpy-released portions of that work, but CPU-bound statistics
construction and trait math serialize on the GIL — so true multi-core
cycles need shard work to cross a *process* boundary, and everything that
crosses must become an explicit, versioned, picklable contract:

* :class:`ShardWorkSpec` — one shard's unit of work: the candidate keys
  that missed the coordinator's stats cache, a picklable **connector
  snapshot** (parallel columns of observation inputs, e.g. a
  :meth:`~repro.fleet.model.ObserveView.take` slice), the cache slot
  indices and freshness **tokens** those keys map to, and the orient-phase
  trait registry;
* :class:`ShardCycleResult` — what comes back: fully observed *and*
  oriented candidates plus a :class:`CacheDelta`, so the coordinator's
  :class:`~repro.core.statscache.StatsCache` /
  :class:`~repro.core.statscache.IndexedCandidateCache` learn the worker's
  observations instead of silently dropping them (the next cycle stays
  O(dirty tables) in every worker mode);
* :func:`run_shard_work` — the module-level worker entry point (process
  pools can only ship module-level callables).

Only the *miss* slice crosses the boundary: the coordinator resolves cache
hits locally (a token compare per key), so steady-state specs stay small.
The decide phase never leaves the coordinator — global selection must see
every shard's survivors at once, which is also what keeps process- and
thread-mode cycle reports byte-identical (property-tested).

:class:`WorkerPool` is the persistent executor behind both the sharded
pipeline and the Policy Lab's what-if sweeps
(:class:`~repro.replay.whatif.WhatIfRunner`): spawned once, reused across
cycles to amortize fork/spawn cost, shut down via :meth:`WorkerPool.close`
(or a ``weakref`` finalizer if the owner is garbage-collected first).
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
import weakref
from concurrent.futures import Executor, Future
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.candidates import Candidate, CandidateKey, CandidateStatistics
from repro.core.traits import TraitRegistry
from repro.errors import ValidationError

#: Supported shard-worker execution modes.  ``threads`` is the default —
#: it needs no picklable connector snapshot and works on every platform;
#: ``processes`` is the true multi-core mode for CPU-bound observe work.
WORKER_MODES = ("threads", "processes")

#: Contract version stamped on every spec/result; a coordinator refuses a
#: result whose version it does not understand (mixed-version pools after
#: an upgrade must fail loudly, not corrupt caches).
WORK_SPEC_VERSION = 1

#: Column names a :class:`ShardWorkSpec` snapshot must carry — exactly the
#: per-candidate inputs of
#: :meth:`~repro.core.candidates.CandidateStatistics.build_unchecked`
#: (``target_file_size`` is a scalar on the spec).
SPEC_COLUMNS = (
    "file_count",
    "total_bytes",
    "small_file_count",
    "small_file_bytes",
    "partition_count",
    "created_at",
    "last_modified_at",
    "quota_utilization",
)


def process_workers_available() -> bool:
    """Whether this platform can run process-mode shard workers safely.

    Process mode leans on ``fork`` so workers inherit the imported modules
    (spawn/forkserver re-import the world — and re-run ``__main__`` — per
    worker, which both dwarfs a cycle and breaks script/REPL callers).
    Restricted to Linux: macOS exposes ``os.fork`` but forking after any
    thread has started crashes in system frameworks, and Windows has no
    fork at all — both stay on the thread-pool fallback.  Forked children
    here only ever touch the pool's own freshly created pipes/queues (the
    classic fork-after-threads deadlocks involve re-using the parent's
    locked state, which :func:`run_shard_work` never does).
    """
    return sys.platform.startswith("linux") and hasattr(os, "fork")


def burn_cpu(units: int, seed: bytes = b"observe") -> int:
    """Deterministically burn ``units`` rounds of CPU; returns a checksum.

    Emulates the statistics-collection cost a real connector pays per
    candidate (manifest parsing, file listing, column-stat decoding) that
    the in-memory fleet model skips.  Pure CPU with no allocation, so it
    holds the GIL — which is the point: it makes observe workloads
    CPU-bound the way production ones are, letting benchmarks compare
    worker modes honestly.
    """
    digest = seed
    for _ in range(max(units, 0)):
        digest = hashlib.blake2b(digest, digest_size=16).digest()
    return digest[0]


@dataclass(frozen=True)
class CacheDelta:
    """A worker's cache updates, replayed into the coordinator's cache.

    Position-aligned with the result's candidates: entry ``i`` says "store
    candidate ``i`` under slot ``slots[i]`` with freshness ``tokens[i]``,
    observed at ``stored_at``".  Slots are dense integers for
    :class:`~repro.core.statscache.IndexedCandidateCache` and
    :class:`~repro.core.candidates.CandidateKey` objects for the key-hashed
    :class:`~repro.core.statscache.StatsCache`.
    """

    slots: tuple = ()
    tokens: tuple = ()
    stored_at: float = 0.0

    def __len__(self) -> int:
        return len(self.slots)


@dataclass(frozen=True)
class ShardWorkSpec:
    """One shard's picklable unit of observe/orient work.

    Attributes:
        version: contract version (:data:`WORK_SPEC_VERSION`).
        shard_index: which shard this work belongs to.
        keys: candidate keys that missed the coordinator's cache, in
            generation order.
        columns: the connector snapshot — name → per-key tuple for every
            :data:`SPEC_COLUMNS` name.
        slots: cache slot per key (int index or the key itself).
        tokens: freshness token per key (what the cache delta stores, so
            invalidation state survives the round trip).
        target_file_size: scalar compaction target for every key.
        now: observation time (stamped on the cache delta).
        traits: the orient-phase registry (applied in the worker — trait
            math is the CPU-bound half of orientation).
        observe_cost: per-candidate CPU units handed to :func:`burn_cpu`,
            emulating real statistics-collection cost.
    """

    shard_index: int
    keys: tuple[CandidateKey, ...]
    columns: dict[str, tuple]
    slots: tuple
    tokens: tuple
    target_file_size: int
    now: float
    traits: TraitRegistry
    observe_cost: int = 0
    version: int = WORK_SPEC_VERSION

    def __post_init__(self) -> None:
        missing = [name for name in SPEC_COLUMNS if name not in self.columns]
        if missing:
            raise ValidationError(f"shard work spec missing columns: {missing}")
        n = len(self.keys)
        bad = [
            name for name in SPEC_COLUMNS if len(self.columns[name]) != n
        ]
        if bad or len(self.slots) != n or len(self.tokens) != n:
            raise ValidationError(
                f"shard work spec columns/slots/tokens must all have {n} rows "
                f"(mismatched: {bad or 'slots/tokens'})"
            )


@dataclass
class ShardCycleResult:
    """What one shard worker sends back across the process boundary.

    Attributes:
        version: contract version (must match the coordinator's).
        shard_index: echo of the spec's shard.
        candidates: observed + oriented candidates, in spec key order.
        cache_delta: the cache updates the coordinator merges (see
            :class:`CacheDelta`); without it, process-mode cycles would
            re-observe every table every cycle.
        observe_wall_s: wall-clock seconds the worker spent.
    """

    shard_index: int
    candidates: list[Candidate] = field(default_factory=list)
    cache_delta: CacheDelta = field(default_factory=CacheDelta)
    observe_wall_s: float = 0.0
    version: int = WORK_SPEC_VERSION


def run_shard_work(spec: ShardWorkSpec) -> ShardCycleResult:
    """Worker entry point: observe + orient one spec's candidates.

    Module-level so process pools can pickle it.  Statistics go through
    the same trusted constructor as the in-process fast path and traits
    through the same registry batch compute, so the returned candidates
    are value-identical to thread-mode observation of the same inputs —
    the foundation of the modes' byte-identical cycle reports.
    """
    if spec.version != WORK_SPEC_VERSION:
        raise ValidationError(
            f"shard work spec version {spec.version} != {WORK_SPEC_VERSION} "
            "(coordinator and workers must run the same build)"
        )
    start = time.perf_counter()
    build = CandidateStatistics.build_unchecked
    columns = spec.columns
    target = spec.target_file_size
    files = columns["file_count"]
    total_b = columns["total_bytes"]
    small = columns["small_file_count"]
    small_b = columns["small_file_bytes"]
    partitions = columns["partition_count"]
    created = columns["created_at"]
    modified = columns["last_modified_at"]
    quota = columns["quota_utilization"]
    cost = spec.observe_cost
    candidates: list[Candidate] = []
    append = candidates.append
    for i, key in enumerate(spec.keys):
        if cost:
            burn_cpu(cost, str(key).encode("utf-8"))
        stats = build(
            file_count=files[i],
            total_bytes=total_b[i],
            small_file_count=small[i],
            small_file_bytes=small_b[i],
            target_file_size=target,
            partition_count=partitions[i],
            created_at=created[i],
            last_modified_at=modified[i],
            quota_utilization=quota[i],
        )
        append(Candidate(key=key, statistics=stats))
    spec.traits.annotate_all(candidates)
    return ShardCycleResult(
        shard_index=spec.shard_index,
        candidates=candidates,
        cache_delta=CacheDelta(
            slots=spec.slots, tokens=spec.tokens, stored_at=spec.now
        ),
        observe_wall_s=time.perf_counter() - start,
    )


def _shutdown_executor(executor: Executor) -> None:
    """Finalizer target: must not capture the owning pool (GC safety)."""
    executor.shutdown(wait=False, cancel_futures=True)


class WorkerPool:
    """A persistent thread- or process-backed executor with one lifecycle.

    Construction is cheap — the underlying executor spawns lazily on first
    use and is then *reused* across cycles (spawning a process pool per
    cycle costs more than many cycles' work).  Owners call :meth:`close`
    when done; a ``weakref`` finalizer backstops owners that forget, so
    garbage-collected pools never strand worker processes.

    Args:
        mode: one of :data:`WORKER_MODES`.
        max_workers: executor width.
    """

    def __init__(self, mode: str = "threads", max_workers: int = 1) -> None:
        if mode not in WORKER_MODES:
            raise ValidationError(
                f"unknown worker mode {mode!r}; expected one of {WORKER_MODES}"
            )
        if max_workers <= 0:
            raise ValidationError(f"max_workers must be positive, got {max_workers}")
        if mode == "processes" and not process_workers_available():
            raise ValidationError(
                "process workers need fork on Linux; use the thread-pool "
                "fallback (mode='threads') on this platform"
            )
        self.mode = mode
        self.max_workers = max_workers
        self._executor: Executor | None = None
        self._finalizer: weakref.finalize | None = None

    @property
    def started(self) -> bool:
        """Whether the underlying executor has been spawned."""
        return self._executor is not None

    def _ensure(self) -> Executor:
        executor = self._executor
        if executor is None:
            if self.mode == "processes":
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            else:
                from concurrent.futures import ThreadPoolExecutor

                executor = ThreadPoolExecutor(max_workers=self.max_workers)
            self._executor = executor
            self._finalizer = weakref.finalize(self, _shutdown_executor, executor)
        return executor

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Submit one task (spawning the executor on first use)."""
        return self._ensure().submit(fn, *args, **kwargs)

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Run ``fn`` over ``items``, results in submission order.

        Results are assembled in input order regardless of completion
        order, so callers' outputs stay deterministic whatever the pool
        width.
        """
        futures = [self.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def run_tasks(self, thunks: Sequence[Callable[[], object]]) -> list:
        """Run zero-argument callables, results in submission order.

        Thread mode only: closures cannot cross a process boundary, which
        is exactly the constraint the spec/result contracts exist to lift.
        """
        if self.mode == "processes":
            raise ValidationError(
                "process pools cannot run closures; submit a module-level "
                "function with a picklable spec instead"
            )
        futures = [self._ensure().submit(thunk) for thunk in thunks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the executor down (idempotent; waits for running work)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
