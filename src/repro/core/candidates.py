"""Compaction candidates: the unit of work AutoComp reasons about.

A *candidate* is a collection of files eligible for compaction (§4.1).  Its
scope can be a whole table, a single partition, or a snapshot's recent
files; fine-grained scopes (FR1) let AutoComp parallelise work across
segments of large tables, schedule smaller units under tight budgets, and
contain the blast radius of conflicts.

The candidate flows through the OODA phases accumulating state:
``CandidateKey`` (generation) → ``statistics`` (observe) → ``traits``
(orient) → ``score`` (decide).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import ValidationError


class CandidateScope(enum.Enum):
    """Granularity of a compaction work unit."""

    TABLE = "table"
    PARTITION = "partition"
    SNAPSHOT = "snapshot"


#: Shared frozen mapping for statistics without custom metrics.
_EMPTY_CUSTOM: Mapping[str, float] = MappingProxyType({})

#: Candidate-generation strategies (the paper's §6 experiment matrix):
#: ``table`` generates one candidate per table; ``partition`` one per
#: partition; ``hybrid`` uses partitions for partitioned tables and falls
#: back to table scope otherwise.
GENERATION_STRATEGIES = ("table", "partition", "hybrid")


@dataclass(frozen=True)
class CandidateKey:
    """Identity of a candidate: which files of which table.

    Keys are value objects used as dict/set members on every hot path of
    the control plane (stats caches, shard assignment, report merging), so
    the hash, the qualified name and the string form are each computed once
    and memoised — a fleet-scale cycle hashes tens of thousands of keys.
    """

    database: str
    table: str
    scope: CandidateScope
    partition: tuple | None = None
    snapshot_id: int | None = None

    def __post_init__(self) -> None:
        if self.scope is CandidateScope.PARTITION and self.partition is None:
            raise ValidationError("partition-scope candidates need a partition tuple")
        if self.scope is CandidateScope.SNAPSHOT and self.snapshot_id is None:
            raise ValidationError("snapshot-scope candidates need a snapshot id")
        qualified = f"{self.database}.{self.table}"
        object.__setattr__(self, "_qualified", qualified)
        if self.scope is CandidateScope.PARTITION:
            rendered = f"{qualified}[partition={self.partition}]"
        elif self.scope is CandidateScope.SNAPSHOT:
            rendered = f"{qualified}[snapshot={self.snapshot_id}]"
        else:
            rendered = qualified
        object.__setattr__(self, "_str", rendered)
        object.__setattr__(
            self,
            "_hash",
            hash((self.database, self.table, self.scope, self.partition, self.snapshot_id)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __reduce__(self):
        # Pickle only the five identity fields and rebuild through
        # __init__: the memoised strings/hash roughly double the wire size
        # of a key, and shard specs/results ship thousands of them per
        # cycle.  The memos are recomputed by __post_init__ on load.
        return (
            CandidateKey,
            (self.database, self.table, self.scope, self.partition, self.snapshot_id),
        )

    @property
    def qualified_table(self) -> str:
        """``database.table``."""
        return self._qualified  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return self._str  # type: ignore[attr-defined]


@dataclass(frozen=True)
class CandidateStatistics:
    """Observe-phase output: the standardized statistics layout (§4.1).

    Generic statistics every connector must supply, plus a ``custom``
    mapping for platform-specific metrics (access patterns, usage) that not
    all systems can provide.

    Attributes:
        file_count: live data files in the candidate.
        total_bytes: their total size.
        small_file_count: files below ``target_file_size`` — the paper's
            ΔF_c estimator reads this directly.
        small_file_bytes: bytes in those small files (what a rewrite touches).
        target_file_size: the candidate's compaction target.
        file_sizes: individual file sizes (for entropy-style traits).
        partition_count: distinct partitions holding live files.
        delete_file_count: merge-on-read delete files in force.
        created_at: table creation time (drives recent-table filters).
        last_modified_at: last commit time (drives write-activity filters).
        quota_utilization: owning database's UsedQuota/TotalQuota (§7).
        custom: extension point for platform-specific metrics.
    """

    file_count: int
    total_bytes: int
    small_file_count: int
    small_file_bytes: int
    target_file_size: int
    file_sizes: tuple[int, ...] = ()
    partition_count: int = 1
    delete_file_count: int = 0
    created_at: float = 0.0
    last_modified_at: float = 0.0
    quota_utilization: float = 0.0
    custom: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.file_count < 0 or self.total_bytes < 0:
            raise ValidationError("file_count and total_bytes must be >= 0")
        if not 0 <= self.small_file_count <= max(self.file_count, 0):
            raise ValidationError(
                f"small_file_count {self.small_file_count} out of range "
                f"[0, {self.file_count}]"
            )
        if self.target_file_size <= 0:
            raise ValidationError("target_file_size must be positive")
        # Freeze the custom mapping so statistics stay value-like; the
        # common no-custom-metrics case shares one immutable empty mapping
        # (statistics are built per candidate per cycle at fleet scale).
        if self.custom:
            object.__setattr__(self, "custom", MappingProxyType(dict(self.custom)))
        else:
            object.__setattr__(self, "custom", _EMPTY_CUSTOM)

    @property
    def small_file_fraction(self) -> float:
        """Share of files below target (0 for empty candidates)."""
        if self.file_count == 0:
            return 0.0
        return self.small_file_count / self.file_count

    # Statistics cross the shard-worker process boundary
    # (:mod:`repro.core.workers`), but the frozen ``custom`` mapping is a
    # ``MappingProxyType``, which pickle rejects; serialize it as a plain
    # dict and re-freeze on the way back in.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["custom"] = dict(state["custom"])
        return state

    def __setstate__(self, state: dict) -> None:
        custom = state["custom"]
        state["custom"] = MappingProxyType(custom) if custom else _EMPTY_CUSTOM
        # Frozen dataclass: restore through __dict__, not __setattr__.
        self.__dict__.update(state)

    @classmethod
    def build_unchecked(
        cls,
        file_count: int,
        total_bytes: int,
        small_file_count: int,
        small_file_bytes: int,
        target_file_size: int,
        partition_count: int,
        created_at: float,
        last_modified_at: float,
        quota_utilization: float,
        *,
        file_sizes: tuple[int, ...] = (),
        delete_file_count: int = 0,
    ) -> "CandidateStatistics":
        """Trusted fast-path constructor for vectorised connectors.

        Skips ``__init__``/``__post_init__`` (field validation and custom-
        mapping freezing) for callers whose inputs come from already-
        validated arrays — building statistics is the per-candidate floor
        of a fleet-scale observe cycle, and the frozen-dataclass
        constructor costs ~3x this path.  The result is indistinguishable
        from a normally constructed instance with empty ``custom``; the
        keyword-only ``file_sizes`` / ``delete_file_count`` let columnar
        transports rebuild full-fidelity statistics without re-validation.
        """
        stats = object.__new__(cls)
        object.__setattr__(
            stats,
            "__dict__",
            {
                "file_count": file_count,
                "total_bytes": total_bytes,
                "small_file_count": small_file_count,
                "small_file_bytes": small_file_bytes,
                "target_file_size": target_file_size,
                "file_sizes": file_sizes,
                "partition_count": partition_count,
                "delete_file_count": delete_file_count,
                "created_at": created_at,
                "last_modified_at": last_modified_at,
                "quota_utilization": quota_utilization,
                "custom": _EMPTY_CUSTOM,
            },
        )
        return stats

    @classmethod
    def from_file_sizes(
        cls,
        file_sizes: list[int],
        target_file_size: int,
        **kwargs: object,
    ) -> "CandidateStatistics":
        """Build statistics from raw file sizes (the common connector path)."""
        small = [s for s in file_sizes if s < target_file_size]
        return cls(
            file_count=len(file_sizes),
            total_bytes=sum(file_sizes),
            small_file_count=len(small),
            small_file_bytes=sum(small),
            target_file_size=target_file_size,
            file_sizes=tuple(file_sizes),
            **kwargs,  # type: ignore[arg-type]
        )


@dataclass
class Candidate:
    """A candidate moving through the OODA pipeline."""

    key: CandidateKey
    statistics: CandidateStatistics | None = None
    traits: dict[str, float] = field(default_factory=dict)
    score: float | None = None

    def trait(self, name: str) -> float:
        """The value of trait ``name``.

        Raises:
            ValidationError: if the trait has not been computed.
        """
        try:
            return self.traits[name]
        except KeyError:
            raise ValidationError(
                f"trait {name!r} not computed for {self.key} "
                f"(have: {sorted(self.traits)})"
            ) from None

    def __str__(self) -> str:
        return str(self.key)
