"""Candidate filters (§4.1).

Filters refine the exhaustively generated candidate pool at two points in
the workflow — after the observe phase (statistics-based) and after the
orient phase (trait-based).  They encode platform-specific knowledge such
as "don't compact tables created in the last hour" (OpenHouse's rule, to
avoid spending budget on intermediate tables) or "skip candidates with
recent write activity" (to dodge conflicts).
"""

from __future__ import annotations

import abc

from repro.core.candidates import Candidate
from repro.errors import ValidationError


class CandidateFilter(abc.ABC):
    """Predicate deciding whether a candidate stays in the pool."""

    name: str = "filter"

    @abc.abstractmethod
    def keep(self, candidate: Candidate, now: float) -> bool:
        """True to keep the candidate, False to drop it."""

    def apply(self, candidates: list[Candidate], now: float) -> list[Candidate]:
        """Filter a candidate list, preserving order."""
        return [c for c in candidates if self.keep(c, now)]


def apply_filters(
    filters: list[CandidateFilter], candidates: list[Candidate], now: float
) -> list[Candidate]:
    """Apply filters in sequence (order matters only for telemetry)."""
    for candidate_filter in filters:
        candidates = candidate_filter.apply(candidates, now)
    return candidates


class MinTableAgeFilter(CandidateFilter):
    """Drop candidates whose table was created within ``min_age_s``.

    This is OpenHouse's recent-creation window: freshly created (often
    intermediate) tables do not affect the long-term health of the system,
    so compaction budget is not spent on them.
    """

    name = "min_table_age"

    def __init__(self, min_age_s: float) -> None:
        if min_age_s < 0:
            raise ValidationError("min_age_s must be >= 0")
        self.min_age_s = min_age_s

    def keep(self, candidate: Candidate, now: float) -> bool:
        stats = candidate.statistics
        return stats is not None and now - stats.created_at >= self.min_age_s


class QuiescenceFilter(CandidateFilter):
    """Drop candidates written to within the last ``quiet_s`` seconds.

    Compacting a hot candidate risks write-write conflicts (§2's caveat);
    waiting for a quiet window sidesteps most of them.
    """

    name = "quiescence"

    def __init__(self, quiet_s: float) -> None:
        if quiet_s < 0:
            raise ValidationError("quiet_s must be >= 0")
        self.quiet_s = quiet_s

    def keep(self, candidate: Candidate, now: float) -> bool:
        stats = candidate.statistics
        return stats is not None and now - stats.last_modified_at >= self.quiet_s


class MinFileCountFilter(CandidateFilter):
    """Drop candidates with fewer than ``min_files`` live files."""

    name = "min_file_count"

    def __init__(self, min_files: int) -> None:
        if min_files < 0:
            raise ValidationError("min_files must be >= 0")
        self.min_files = min_files

    def keep(self, candidate: Candidate, now: float) -> bool:
        stats = candidate.statistics
        return stats is not None and stats.file_count >= self.min_files


class MinSmallFileCountFilter(CandidateFilter):
    """Drop candidates with fewer than ``min_small_files`` small files.

    The cheapest useful benefit filter: a candidate with one small file has
    nothing to merge.
    """

    name = "min_small_file_count"

    def __init__(self, min_small_files: int = 2) -> None:
        if min_small_files < 0:
            raise ValidationError("min_small_files must be >= 0")
        self.min_small_files = min_small_files

    def keep(self, candidate: Candidate, now: float) -> bool:
        stats = candidate.statistics
        return stats is not None and stats.small_file_count >= self.min_small_files


class MinTotalBytesFilter(CandidateFilter):
    """Drop candidates smaller than ``min_bytes`` in total.

    Tiny tables are not worth a compaction application's startup cost —
    the "check the table size to skip tables that are too small" example
    filter from §3.3.
    """

    name = "min_total_bytes"

    def __init__(self, min_bytes: int) -> None:
        if min_bytes < 0:
            raise ValidationError("min_bytes must be >= 0")
        self.min_bytes = min_bytes

    def keep(self, candidate: Candidate, now: float) -> bool:
        stats = candidate.statistics
        return stats is not None and stats.total_bytes >= self.min_bytes


class MinTraitFilter(CandidateFilter):
    """Keep candidates whose trait ``trait_name`` is at least ``threshold``.

    Applied between orient and decide; the building block of
    threshold-triggered compaction.
    """

    name = "min_trait"

    def __init__(self, trait_name: str, threshold: float) -> None:
        self.trait_name = trait_name
        self.threshold = threshold

    def keep(self, candidate: Candidate, now: float) -> bool:
        return candidate.traits.get(self.trait_name, float("-inf")) >= self.threshold


class MaxTraitFilter(CandidateFilter):
    """Keep candidates whose trait ``trait_name`` is at most ``threshold``.

    The §4.2 budget screen: candidates whose estimated compute cost exceeds
    the per-task allocation are discarded (or flagged) before ranking.
    """

    name = "max_trait"

    def __init__(self, trait_name: str, threshold: float) -> None:
        self.trait_name = trait_name
        self.threshold = threshold

    def keep(self, candidate: Candidate, now: float) -> bool:
        return candidate.traits.get(self.trait_name, float("inf")) <= self.threshold
