"""Columnar shard payloads over shared memory: the zero-copy transport.

The pickle transport ships a shard's observation inputs as one Python
object per candidate (``CatalogObservationSlice`` rows, hit ``Candidate``
objects), which makes process-mode cycles serialization-bound: the
coordinator spends the fork win re-encoding tuples.  This module flips the
representation to *structure-of-arrays*: every per-candidate statistic
becomes one flat numpy array, the arrays are packed into a single
:mod:`multiprocessing.shared_memory` segment, and only the segment name
plus a layout table cross the process boundary — workers map the segment
and read the coordinator's bytes in place.

Three layers:

* :class:`SharedArrayBlock` — named numpy arrays in one shared-memory
  segment (or inline in the pickle below :data:`SHM_MIN_BYTES`, where a
  segment's two syscalls cost more than the copy).  Creator-side views
  stay valid until :meth:`~SharedArrayBlock.dispose`, which is what lets
  the coordinator rebuild worker results from its *own* arrays instead of
  shipping them back.
* :class:`ColumnarMissBlock` — the observation payload: scalar statistic
  columns plus (for catalog connectors) the ragged per-file size array
  with its offsets.  Implements both the ``snapshot`` protocol of
  :class:`~repro.core.workers.ShardWorkSpec` and the
  :class:`~repro.core.traits.ColumnarBlock` protocol traits vectorise
  over.
* :class:`ColumnarHitPayload` / :class:`ColumnarResultPayload` — the
  decide-phase halves: coordinator-resolved cache hits shipped as scalar
  columns + a trait matrix, and the worker's answer shipped as a trait
  matrix + selected references — no ``Candidate`` object crosses in
  either direction.

Integer aggregates are computed with exact int64 cumulative sums and
surfaced as Python ints via ``tolist()``; float columns round-trip
float64 bit-for-bit.  Together with the trait layer's slice-reduction
guarantee (:meth:`~repro.core.traits.Trait.compute_columnar`) this keeps
cycle reports byte-identical to the pickle transport and to thread mode.

Lifecycle: the creating process owns each segment and must call
``dispose()`` (the transport does, per cycle, in a ``finally``); a
``weakref`` finalizer backstops leaks, guarded by the creator's PID so
forked pool workers inheriting the finalizer never unlink a segment the
coordinator still uses.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.core.candidates import Candidate, CandidateKey, CandidateStatistics
from repro.errors import ValidationError

#: Below this many payload bytes the arrays ride inline in the spec pickle:
#: still columnar (one memcpy, no per-object encoding), but without the
#: per-segment syscall + /dev/shm file overhead that dominates tiny shards.
SHM_MIN_BYTES = 16384

#: Scalar statistic columns every :class:`ColumnarMissBlock` carries —
#: the full :class:`~repro.core.candidates.CandidateStatistics` scalar
#: surface, int64 then float64.
STAT_INT_COLUMNS = (
    "file_count",
    "total_bytes",
    "small_file_count",
    "small_file_bytes",
    "target_file_size",
    "partition_count",
    "delete_file_count",
)
STAT_FLOAT_COLUMNS = ("created_at", "last_modified_at", "quota_utilization")


def _dispose_segment(shm: shared_memory.SharedMemory, creator_pid: int) -> None:
    """Finalizer target: close the mapping, unlink only in the creator.

    Forked pool workers inherit the coordinator's finalizers; the PID
    guard keeps a worker's interpreter shutdown from unlinking a segment
    the coordinator is still serving to other workers.
    """
    try:
        shm.close()
    except BufferError:
        pass  # a live view pins the mapping; the name is still freed below
    except OSError:
        pass
    if os.getpid() != creator_pid:
        return
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass


class SharedArrayBlock:
    """Named numpy arrays in one shared-memory segment (or inline).

    Create with :meth:`create` in the owning process; pickle ships only
    the segment name and the layout table (name, dtype, shape, offset per
    array), so a spec's payload bytes never pass through pickle.  Readers
    call :meth:`arrays` for zero-copy views — valid in the creator until
    :meth:`dispose` and in an attached process until :meth:`close`.
    """

    def __init__(self) -> None:  # instances come from create() / unpickling
        self._layout: tuple = ()
        self._shm: shared_memory.SharedMemory | None = None
        self._shm_name: str | None = None
        self._inline: dict[str, np.ndarray] | None = None
        self._views: dict[str, np.ndarray] | None = None
        self._owner = False
        self._creator_pid: int | None = None
        self._finalizer: weakref.finalize | None = None
        self._disposed = False

    @classmethod
    def create(
        cls, arrays: dict[str, np.ndarray], min_shm_bytes: int = SHM_MIN_BYTES
    ) -> "SharedArrayBlock":
        """Pack ``arrays`` (copied once) into a new block owned by this process."""
        block = cls()
        layout: list[tuple] = []
        prepared: dict[str, np.ndarray] = {}
        offset = 0
        for name, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            offset = (offset + 63) & ~63  # 64-byte alignment per array
            layout.append((name, contiguous.dtype.str, contiguous.shape, offset))
            offset += contiguous.nbytes
            prepared[name] = contiguous
        block._layout = tuple(layout)
        block._creator_pid = os.getpid()
        if offset < min_shm_bytes:
            block._inline = prepared
            return block
        shm = shared_memory.SharedMemory(create=True, size=offset)
        for name, dtype, shape, start in block._layout:
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
            view[...] = prepared[name]
        block._shm = shm
        block._shm_name = shm.name
        block._owner = True
        block._finalizer = weakref.finalize(block, _dispose_segment, shm, os.getpid())
        return block

    @property
    def backing(self) -> str:
        """``"shm"`` for a shared-memory segment, ``"inline"`` otherwise."""
        return "inline" if self._inline is not None else "shm"

    @property
    def nbytes(self) -> int:
        """Total payload bytes (zero-copy bytes when backed by shm)."""
        if not self._layout:
            return 0
        name, dtype, shape, start = self._layout[-1]
        return start + int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))

    def __getstate__(self) -> dict:
        # Ship the name + layout, never the bytes (inline blocks excepted).
        return {
            "layout": self._layout,
            "shm_name": self._shm_name,
            "inline": self._inline,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        self._layout = state["layout"]
        self._shm_name = state["shm_name"]
        self._inline = state["inline"]

    def arrays(self) -> dict[str, np.ndarray]:
        """Name → array views; attaches to the segment on first call."""
        if self._views is None:
            if self._disposed:
                raise ValidationError("shared array block used after dispose()")
            if self._inline is not None:
                self._views = dict(self._inline)
            else:
                if self._shm is None:
                    # Attaching from a pool worker: the resource tracker is
                    # shared with the forking coordinator, so the extra
                    # register is idempotent and the coordinator's unlink
                    # clears it — no double-unlink, no shutdown warnings.
                    self._shm = shared_memory.SharedMemory(name=self._shm_name)
                buf = self._shm.buf
                self._views = {
                    name: np.ndarray(shape, dtype=dtype, buffer=buf, offset=start)
                    for name, dtype, shape, start in self._layout
                }
        return self._views

    def close(self) -> None:
        """Drop this process's mapping (reader-side); never unlinks."""
        self._views = None
        shm, self._shm = self._shm, None
        if shm is not None and not self._owner:
            try:
                shm.close()
            except (BufferError, OSError):
                pass
        elif shm is not None:
            self._shm = shm  # owners keep the mapping until dispose()

    def dispose(self) -> None:
        """Creator-side teardown: close the mapping and unlink the segment.

        Idempotent; after this the segment name is gone and no process can
        attach.  Inline blocks just drop their arrays.
        """
        if self._disposed:
            return
        self._disposed = True
        self._views = None
        self._inline = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        shm, self._shm = self._shm, None
        if shm is None:
            return
        if self._owner:
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        try:
            shm.close()
        except (BufferError, OSError):
            pass


class ColumnarMissBlock:
    """A shard's cache-miss observations as flat arrays.

    Satisfies the ``snapshot`` protocol of
    :class:`~repro.core.workers.ShardWorkSpec` (``__len__`` +
    ``statistics(i)``) and the :class:`~repro.core.traits.ColumnarBlock`
    protocol, so the same payload feeds spec validation, vectorised trait
    evaluation, and (coordinator-side, from the retained arrays) candidate
    rebuild.
    """

    def __init__(self, block: SharedArrayBlock, n: int, has_sizes: bool) -> None:
        self._block = block
        self._n = n
        self._has_sizes = has_sizes
        self._sizes_f64: np.ndarray | None = None
        self._rep_targets: np.ndarray | None = None

    @classmethod
    def from_sizes(
        cls,
        size_lists: list,
        targets: list,
        partition_counts: list,
        delete_file_counts: list,
        created_at: list,
        last_modified_at: list,
        quota_utilization: list,
        min_shm_bytes: int = SHM_MIN_BYTES,
    ) -> "ColumnarMissBlock":
        """Build from per-candidate file-size lists (catalog connectors).

        Scalar aggregates come from exact int64 cumulative sums over the
        concatenated size array — value-identical to
        :meth:`CandidateStatistics.from_file_sizes` summing Python ints.
        """
        n = len(size_lists)
        counts = np.fromiter((len(s) for s in size_lists), dtype=np.int64, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        # One C-level conversion per candidate, not one Python iteration
        # per file: asarray on a size tuple is ~4x cheaper than fromiter
        # over a flattening generator, and pack cost is the coordinator-
        # side half of the transport's per-file budget.
        if n:
            flat = np.concatenate(
                [np.asarray(sizes, dtype=np.int64).reshape(-1) for sizes in size_lists]
            )
        else:
            flat = np.zeros(0, dtype=np.int64)
        targets_arr = np.asarray(targets, dtype=np.int64)
        small_mask = flat < np.repeat(targets_arr, counts)
        sums = np.zeros((3, total + 1), dtype=np.int64)
        np.cumsum(flat, out=sums[0, 1:])
        np.cumsum(small_mask.astype(np.int64), out=sums[1, 1:])
        np.cumsum(np.where(small_mask, flat, 0), out=sums[2, 1:])
        lo, hi = offsets[:-1], offsets[1:]
        arrays = {
            "file_count": counts,
            "total_bytes": sums[0, hi] - sums[0, lo],
            "small_file_count": sums[1, hi] - sums[1, lo],
            "small_file_bytes": sums[2, hi] - sums[2, lo],
            "target_file_size": targets_arr,
            "partition_count": np.asarray(partition_counts, dtype=np.int64),
            "delete_file_count": np.asarray(delete_file_counts, dtype=np.int64),
            "created_at": np.asarray(created_at, dtype=np.float64),
            "last_modified_at": np.asarray(last_modified_at, dtype=np.float64),
            "quota_utilization": np.asarray(quota_utilization, dtype=np.float64),
            "sizes": flat,
            "size_offsets": offsets,
        }
        return cls(SharedArrayBlock.create(arrays, min_shm_bytes), n, has_sizes=True)

    @classmethod
    def from_columns(
        cls,
        columns: dict,
        n: int,
        min_shm_bytes: int = SHM_MIN_BYTES,
    ) -> "ColumnarMissBlock":
        """Build from precomputed scalar columns (no per-file detail).

        Missing int columns default to the
        :class:`~repro.core.candidates.CandidateStatistics` defaults
        (``partition_count`` 1, ``delete_file_count`` 0); statistics built
        from such a block carry empty ``file_sizes``, matching connectors
        whose observe path never materialises per-file sizes.
        """
        arrays: dict[str, np.ndarray] = {}
        for name in STAT_INT_COLUMNS:
            if name in columns:
                arrays[name] = np.asarray(columns[name], dtype=np.int64)
            elif name == "partition_count":
                arrays[name] = np.ones(n, dtype=np.int64)
            elif name == "delete_file_count":
                arrays[name] = np.zeros(n, dtype=np.int64)
            else:
                raise ValidationError(f"columnar block missing required column {name!r}")
        for name in STAT_FLOAT_COLUMNS:
            if name not in columns:
                raise ValidationError(f"columnar block missing required column {name!r}")
            arrays[name] = np.asarray(columns[name], dtype=np.float64)
        return cls(SharedArrayBlock.create(arrays, min_shm_bytes), n, has_sizes=False)

    # -- ColumnarBlock protocol (trait vectorisation) ---------------------

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        return self._block.arrays()[name]

    def flat_sizes(self):
        if not self._has_sizes:
            return None
        if self._sizes_f64 is None:
            arrays = self._block.arrays()
            self._sizes_f64 = arrays["sizes"].astype(np.float64)
        return self._sizes_f64, self._block.arrays()["size_offsets"]

    def repeated_targets(self):
        if not self._has_sizes:
            return None
        if self._rep_targets is None:
            arrays = self._block.arrays()
            counts = arrays["file_count"]
            self._rep_targets = np.repeat(
                arrays["target_file_size"].astype(np.float64), counts
            )
        return self._rep_targets

    # -- snapshot protocol + rebuild --------------------------------------

    @property
    def has_sizes(self) -> bool:
        return self._has_sizes

    @property
    def nbytes(self) -> int:
        return self._block.nbytes

    @property
    def backing(self) -> str:
        return self._block.backing

    def statistics(self, i: int) -> CandidateStatistics:
        """Row accessor for snapshot-protocol parity; hot paths batch."""
        arrays = self._block.arrays()
        sizes: tuple = ()
        if self._has_sizes:
            offsets = arrays["size_offsets"]
            sizes = tuple(arrays["sizes"][int(offsets[i]) : int(offsets[i + 1])].tolist())
        return CandidateStatistics.build_unchecked(
            file_count=int(arrays["file_count"][i]),
            total_bytes=int(arrays["total_bytes"][i]),
            small_file_count=int(arrays["small_file_count"][i]),
            small_file_bytes=int(arrays["small_file_bytes"][i]),
            target_file_size=int(arrays["target_file_size"][i]),
            partition_count=int(arrays["partition_count"][i]),
            created_at=float(arrays["created_at"][i]),
            last_modified_at=float(arrays["last_modified_at"][i]),
            quota_utilization=float(arrays["quota_utilization"][i]),
            file_sizes=sizes,
            delete_file_count=int(arrays["delete_file_count"][i]),
        )

    def statistics_batch(self, include_sizes: bool = True) -> list[CandidateStatistics]:
        """All rows as statistics objects, scalars exact via ``tolist()``.

        ``include_sizes=False`` skips materialising per-file size tuples —
        the worker-side decide path runs filters and rank over scalars and
        a precomputed trait matrix, so it never reads them; the
        coordinator-side rebuild keeps them for cache fidelity.
        """
        # Lazily imported: catalog modules import lazily from core, and
        # keeping this edge off the module graph preserves that ordering.
        from repro.catalog.snapshot import build_candidate_statistics_batch

        arrays = self._block.arrays()
        columns = {
            name: arrays[name].tolist()
            for name in STAT_INT_COLUMNS + STAT_FLOAT_COLUMNS
        }
        flat = None
        bounds = None
        if self._has_sizes and include_sizes:
            flat = arrays["sizes"].tolist()
            bounds = arrays["size_offsets"].tolist()
        return build_candidate_statistics_batch(columns, sizes=flat, size_offsets=bounds)

    def close(self) -> None:
        """Reader-side detach (worker processes call this after rebuild)."""
        self._sizes_f64 = None
        self._rep_targets = None
        self._block.close()

    def dispose(self) -> None:
        """Creator-side teardown; see :meth:`SharedArrayBlock.dispose`."""
        self._sizes_f64 = None
        self._rep_targets = None
        self._block.dispose()


@dataclass
class ColumnarHitPayload:
    """Coordinator-resolved cache hits, shipped columnar for worker decide.

    ``positions[j]`` is where hit ``j`` sits in the shard's generation-
    order candidate list (``total`` long, miss holes elsewhere).  The
    block carries one scalar statistic array per
    :data:`STAT_INT_COLUMNS` / :data:`STAT_FLOAT_COLUMNS` plus the
    ``trait_matrix`` — per-file sizes and custom metrics never ship, which
    is why :meth:`try_pack` declines candidates carrying custom statistics
    (those fall back to object hits).
    """

    keys: tuple[CandidateKey, ...]
    positions: tuple[int, ...]
    total: int
    trait_names: tuple[str, ...]
    block: SharedArrayBlock

    @classmethod
    def try_pack(
        cls,
        placed: list,
        trait_names: tuple[str, ...],
        min_shm_bytes: int = SHM_MIN_BYTES,
    ) -> "ColumnarHitPayload | None":
        """Pack the non-``None`` entries of ``placed``; ``None`` to decline.

        Declines when any hit lacks statistics, misses a registered trait
        (the worker would need per-file detail to recompute it), or
        carries custom statistics (not representable as fixed columns).
        """
        entries = [(i, c) for i, c in enumerate(placed) if c is not None]
        for _, candidate in entries:
            stats = candidate.statistics
            if stats is None or stats.custom:
                return None
            traits = candidate.traits
            if any(name not in traits for name in trait_names):
                return None
        h = len(entries)
        arrays: dict[str, np.ndarray] = {}
        stats_list = [c.statistics for _, c in entries]
        for name in STAT_INT_COLUMNS:
            arrays[name] = np.fromiter(
                (getattr(s, name) for s in stats_list), dtype=np.int64, count=h
            )
        for name in STAT_FLOAT_COLUMNS:
            arrays[name] = np.fromiter(
                (getattr(s, name) for s in stats_list), dtype=np.float64, count=h
            )
        matrix = np.empty((h, len(trait_names)), dtype=np.float64)
        for j, (_, candidate) in enumerate(entries):
            traits = candidate.traits
            for k, name in enumerate(trait_names):
                matrix[j, k] = traits[name]
        arrays["trait_matrix"] = matrix
        return cls(
            keys=tuple(c.key for _, c in entries),
            positions=tuple(i for i, _ in entries),
            total=len(placed),
            trait_names=trait_names,
            block=SharedArrayBlock.create(arrays, min_shm_bytes),
        )

    def build(self) -> list:
        """Worker-side rebuild: the generation-order list with miss holes."""
        arrays = self.block.arrays()
        columns = {
            name: arrays[name].tolist()
            for name in STAT_INT_COLUMNS + STAT_FLOAT_COLUMNS
        }
        rows = arrays["trait_matrix"].tolist()
        build = CandidateStatistics.build_unchecked
        placed: list = [None] * self.total
        names = self.trait_names
        for j, (key, position) in enumerate(zip(self.keys, self.positions)):
            stats = build(
                file_count=columns["file_count"][j],
                total_bytes=columns["total_bytes"][j],
                small_file_count=columns["small_file_count"][j],
                small_file_bytes=columns["small_file_bytes"][j],
                target_file_size=columns["target_file_size"][j],
                partition_count=columns["partition_count"][j],
                created_at=columns["created_at"][j],
                last_modified_at=columns["last_modified_at"][j],
                quota_utilization=columns["quota_utilization"][j],
                delete_file_count=columns["delete_file_count"][j],
            )
            placed[position] = Candidate(
                key=key, statistics=stats, traits=dict(zip(names, rows[j]))
            )
        return placed

    def close(self) -> None:
        self.block.close()

    def dispose(self) -> None:
        self.block.dispose()


def matrix_from_candidates(candidates: list, trait_names: tuple) -> np.ndarray:
    """Harvest annotated candidates' traits into a float64 matrix.

    The per-object fallback of the columnar worker: values are already
    Python floats, so the round trip through float64 is exact.
    """
    matrix = np.empty((len(candidates), len(trait_names)), dtype=np.float64)
    for i, candidate in enumerate(candidates):
        traits = candidate.traits
        for k, name in enumerate(trait_names):
            matrix[i, k] = traits[name]
    return matrix


@dataclass
class ColumnarResultPayload:
    """The columnar worker's answer: trait values + selection references.

    ``matrix`` holds one row per spec miss key (generation order) and one
    column per ``trait_names`` entry; the coordinator zips it with its
    retained observation arrays to rebuild every miss candidate without a
    single object crossing back.  With worker decide, ``selected`` lists
    ``("hit", position)`` / ``("miss", index)`` references in rank order
    and ``scores`` their ranked scores.
    """

    trait_names: tuple[str, ...]
    matrix: object  # (n_miss, len(trait_names)) float64 ndarray
    selected: tuple | None = None
    scores: tuple = field(default_factory=tuple)
