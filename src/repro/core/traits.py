"""Traits: the orient phase (§4.2).

A trait maps a candidate's statistics to one number describing either the
*benefit* of compacting it or the *cost* of doing so.  Traits are defined
independently of one another and combined only later, in the decide phase
— which is exactly what lets AutoComp swap decision strategies (FR2)
without touching observation code.

The three traits from the paper:

* :class:`FileCountReductionTrait` — ΔF_c, the estimated file-count
  reduction: the number of files below the target size (the paper's
  formula, which deliberately ignores partition boundaries and therefore
  overestimates — see §7 "Model Accuracy");
* :class:`FileEntropyTrait` — file-size entropy à la Netflix's
  auto-optimize: we define it as the mean squared relative shortfall below
  target, ``H = (1/N) Σ_{s<T} ((T−s)/T)²`` ∈ [0, 1), so a perfectly laid
  out candidate scores 0 and a dust-pile of near-empty files approaches 1;
* :class:`ComputeCostTrait` — GBHr_c = ExecutorMemoryGB × DataSize_c /
  RewriteBytesPerHour, the paper's compute-cost estimator.

Custom traits implement :class:`Trait` and can read any statistic,
including connector-specific ``custom`` entries (NFR1 extensibility; see
``examples/custom_strategy.py``).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.candidates import Candidate, CandidateStatistics
from repro.errors import ValidationError

#: Trait orientation constants.
BENEFIT = 1
COST = -1


class Trait(abc.ABC):
    """One orient-phase metric over candidate statistics."""

    #: Unique trait name; also the key under ``candidate.traits``.
    name: str = "trait"
    #: ``BENEFIT`` (+1) if larger values favour compaction, ``COST`` (−1)
    #: if larger values argue against it.
    direction: int = BENEFIT

    @abc.abstractmethod
    def compute(self, statistics: CandidateStatistics) -> float:
        """The trait value for one candidate's statistics."""

    def annotate(self, candidate: Candidate) -> float:
        """Compute and store the trait on a candidate.

        Raises:
            ValidationError: if the candidate has no statistics yet.
        """
        if candidate.statistics is None:
            raise ValidationError(f"candidate {candidate.key} has no statistics")
        value = float(self.compute(candidate.statistics))
        candidate.traits[self.name] = value
        return value

    def compute_batch(self, statistics: list[CandidateStatistics]) -> list[float]:
        """Trait values for many candidates' statistics at once.

        The orient phase computes every trait over every candidate every
        cycle; hot traits override this with a tight comprehension to
        avoid a method call per candidate.
        """
        compute = self.compute
        return [float(compute(s)) for s in statistics]

    def compute_columnar(self, block: "ColumnarBlock") -> "np.ndarray | None":
        """Trait values straight from a columnar statistics block.

        The columnar worker transport ships shard statistics as flat numpy
        arrays (:mod:`repro.core.columnar`); traits that can evaluate over
        those arrays without materialising ``CandidateStatistics`` objects
        return a float64 vector here — **bit-identical** to calling
        :meth:`compute` per candidate, because byte-identity of cycle
        reports across worker modes depends on it.  Returning ``None``
        (the default, and what built-ins do when ``compute`` was
        overridden) makes the transport fall back to per-object
        evaluation for the whole registry.
        """
        return None


def _compute_overridden(trait: Trait, base: type) -> bool:
    """True when ``trait.compute`` differs from ``base.compute`` — via a
    subclass *or* an instance attribute (both must disable batch fast paths)."""
    return "compute" in trait.__dict__ or type(trait).compute is not base.compute


class ColumnarBlock:
    """Structural protocol traits read in :meth:`Trait.compute_columnar`.

    Implemented by :class:`repro.core.columnar.ColumnarMissBlock`; defined
    here (abstractly) so traits never import the transport layer.

    * ``len(block)`` — number of candidates.
    * ``column(name)`` — one scalar statistic per candidate as an int64 or
      float64 array; names follow :class:`CandidateStatistics` fields.
    * ``flat_sizes()`` — ``(sizes_f64, offsets)`` where ``sizes_f64`` is
      every candidate's file sizes concatenated (float64) and ``offsets``
      has ``n + 1`` entries delimiting candidate *i* as
      ``sizes_f64[offsets[i]:offsets[i + 1]]``; ``None`` when the block
      carries no per-file detail (e.g. fleet catalogs).
    * ``repeated_targets()`` — each candidate's float64 target repeated
      per file, aligned with ``flat_sizes()``; ``None`` likewise.
    """

    def __len__(self) -> int:  # pragma: no cover - protocol stub
        raise NotImplementedError

    def column(self, name: str) -> np.ndarray:  # pragma: no cover - protocol stub
        raise NotImplementedError

    def flat_sizes(self):  # pragma: no cover - protocol stub
        raise NotImplementedError

    def repeated_targets(self):  # pragma: no cover - protocol stub
        raise NotImplementedError


class FileCountReductionTrait(Trait):
    """ΔF_c: estimated file-count reduction (paper §4.2, verbatim).

    ``ΔF_c = Σ_i 1[FileSize_i,c < TargetFileSize_c]`` — simply the number of
    small files, on the assumption that each of them disappears into a
    target-sized output.
    """

    name = "file_count_reduction"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return float(statistics.small_file_count)

    def compute_batch(self, statistics: list[CandidateStatistics]) -> list[float]:
        if _compute_overridden(self, FileCountReductionTrait):
            return super().compute_batch(statistics)  # honour overridden compute()
        return [float(s.small_file_count) for s in statistics]

    def compute_columnar(self, block: ColumnarBlock) -> np.ndarray | None:
        if _compute_overridden(self, FileCountReductionTrait):
            return None
        return block.column("small_file_count").astype(np.float64)


class RelativeFileCountReductionTrait(Trait):
    """ΔF_c as a fraction of the candidate's file count.

    The unconstrained-scenario example in §4.3 triggers when the estimated
    reduction reaches at least 10% — i.e. on this trait ≥ 0.1.
    """

    name = "relative_file_count_reduction"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        if statistics.file_count == 0:
            return 0.0
        return statistics.small_file_count / statistics.file_count

    def compute_columnar(self, block: ColumnarBlock) -> np.ndarray | None:
        if _compute_overridden(self, RelativeFileCountReductionTrait):
            return None
        files = block.column("file_count")
        small = block.column("small_file_count")
        out = np.zeros(len(block), dtype=np.float64)
        # File counts stay far below 2**53, so int64 → float64 division
        # matches Python's correctly-rounded int / int exactly.
        np.divide(small, files, out=out, where=files > 0)
        return out


class FileEntropyTrait(Trait):
    """File-size entropy: total squared relative shortfall below target.

    ``H = Σ_{s_i < T} ((T − s_i)/T)²`` with ``T`` the target size — the
    unnormalised form Netflix's auto-optimize uses, made dimensionless by
    dividing each shortfall by the target.  0 when every file meets the
    target; each near-empty file contributes ≈1, so H acts as a
    *severity-weighted* small-file count (which is why entropy- and
    count-based triggers tune to comparable behaviour in Figure 9).
    """

    name = "file_entropy"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        if statistics.file_count == 0:
            return 0.0
        sizes = statistics.file_sizes
        if not sizes:
            return 0.0
        # Vectorised and canonical: the columnar worker transport evaluates
        # the same element-wise terms over each shard's concatenated size
        # array and reduces contiguous per-candidate slices, which is
        # bit-identical to this (np.add.reduce pairwise order depends only
        # on segment length) — keeping cycle reports byte-identical across
        # transports.
        target = float(statistics.target_file_size)
        arr = np.asarray(sizes, dtype=np.float64)
        shortfall = (target - arr) / target
        terms = np.where(arr < target, shortfall * shortfall, 0.0)
        return float(np.add.reduce(terms))

    def compute_columnar(self, block: ColumnarBlock) -> np.ndarray | None:
        if _compute_overridden(self, FileEntropyTrait):
            return None
        flat = block.flat_sizes()
        if flat is None:
            # No per-file detail (fleet-style catalogs): compute() sees an
            # empty file_sizes tuple and yields 0.0 for every candidate.
            return np.zeros(len(block), dtype=np.float64)
        sizes, offsets = flat
        targets = block.repeated_targets()
        shortfall = (targets - sizes) / targets
        terms = np.where(sizes < targets, shortfall * shortfall, 0.0)
        out = np.zeros(len(block), dtype=np.float64)
        bounds = offsets.tolist()
        for i in range(len(block)):
            lo, hi = bounds[i], bounds[i + 1]
            if hi > lo:
                out[i] = np.add.reduce(terms[lo:hi])
        return out


class ComputeCostTrait(Trait):
    """GBHr_c: estimated compute cost of compacting the candidate (§4.2).

    ``GBHr_c = ExecutorMemoryGB × (DataSize_c / RewriteBytesPerHour)``

    ``DataSize_c`` is the bytes a rewrite must process — the candidate's
    small-file bytes (files already at target are not rewritten).

    Args:
        executor_memory_gb: memory allocated to the compaction executors.
        rewrite_bytes_per_hour: system rewrite throughput.
    """

    name = "compute_cost_gbhr"
    direction = COST

    def __init__(self, executor_memory_gb: float, rewrite_bytes_per_hour: float) -> None:
        if executor_memory_gb <= 0:
            raise ValidationError("executor_memory_gb must be positive")
        if rewrite_bytes_per_hour <= 0:
            raise ValidationError("rewrite_bytes_per_hour must be positive")
        self.executor_memory_gb = executor_memory_gb
        self.rewrite_bytes_per_hour = rewrite_bytes_per_hour

    def compute(self, statistics: CandidateStatistics) -> float:
        return self.executor_memory_gb * (
            statistics.small_file_bytes / self.rewrite_bytes_per_hour
        )

    def compute_batch(self, statistics: list[CandidateStatistics]) -> list[float]:
        if _compute_overridden(self, ComputeCostTrait):
            return super().compute_batch(statistics)  # honour overridden compute()
        memory = self.executor_memory_gb
        throughput = self.rewrite_bytes_per_hour
        return [memory * (s.small_file_bytes / throughput) for s in statistics]

    def compute_columnar(self, block: ColumnarBlock) -> np.ndarray | None:
        if _compute_overridden(self, ComputeCostTrait):
            return None
        # Same operation order as compute(): bytes / throughput first,
        # then × memory — float arithmetic is not associative.
        return self.executor_memory_gb * (
            block.column("small_file_bytes") / self.rewrite_bytes_per_hour
        )


class SmallFileBytesTrait(Trait):
    """Bytes sitting in small files — a benefit proxy for IO-bound goals."""

    name = "small_file_bytes"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return float(statistics.small_file_bytes)

    def compute_columnar(self, block: ColumnarBlock) -> np.ndarray | None:
        if _compute_overridden(self, SmallFileBytesTrait):
            return None
        return block.column("small_file_bytes").astype(np.float64)


class DeleteFileCountTrait(Trait):
    """Merge-on-read delete files in force — read-amplification pressure."""

    name = "delete_file_count"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return float(statistics.delete_file_count)

    def compute_columnar(self, block: ColumnarBlock) -> np.ndarray | None:
        if _compute_overridden(self, DeleteFileCountTrait):
            return None
        return block.column("delete_file_count").astype(np.float64)


class TraitRegistry:
    """An ordered set of traits applied in the orient phase."""

    def __init__(self, traits: list[Trait] | None = None) -> None:
        self._traits: dict[str, Trait] = {}
        for trait in traits or []:
            self.register(trait)

    def register(self, trait: Trait) -> None:
        """Add a trait.

        Raises:
            ValidationError: on duplicate names.
        """
        if trait.name in self._traits:
            raise ValidationError(f"duplicate trait name {trait.name!r}")
        self._traits[trait.name] = trait

    def get(self, name: str) -> Trait:
        """Look up a registered trait by name.

        Raises:
            ValidationError: if unknown.
        """
        if name not in self._traits:
            raise ValidationError(
                f"no trait named {name!r}; registered: {sorted(self._traits)}"
            )
        return self._traits[name]

    def names(self) -> list[str]:
        """Registered trait names in registration order."""
        return list(self._traits)

    def annotate_all(self, candidates: list[Candidate], only_missing: bool = False) -> None:
        """Compute every registered trait on every candidate.

        Args:
            only_missing: skip candidates that already carry every
                registered trait.  Only safe when the caller guarantees
                existing trait values were computed by this registry from
                the candidate's *current* statistics — the contract of
                candidate-reusing connectors
                (:attr:`~repro.core.connectors.Connector.reuses_candidates`).
        """
        traits = list(self._traits.values())
        names = list(self._traits)
        if only_missing:
            # Reused candidates carry the full registered set; fresh ones
            # have empty traits (cheap falsy check).
            todo = [
                c
                for c in candidates
                if not (c.traits and all(name in c.traits for name in names))
            ]
        else:
            todo = list(candidates)
        if not todo:
            return
        # Batched compute skips Trait.annotate's per-call overhead; traits
        # that override annotate() (subclass or instance attribute) keep
        # their per-candidate behaviour.
        if any(
            "annotate" in trait.__dict__ or type(trait).annotate is not Trait.annotate
            for trait in traits
        ):
            for candidate in todo:
                for trait in traits:
                    trait.annotate(candidate)
            return
        statistics: list[CandidateStatistics] = []
        for candidate in todo:
            if candidate.statistics is None:
                raise ValidationError(f"candidate {candidate.key} has no statistics")
            statistics.append(candidate.statistics)
        for trait in traits:
            name = trait.name
            for candidate, value in zip(todo, trait.compute_batch(statistics)):
                candidate.traits[name] = value

    def compute_columnar_matrix(self, block: ColumnarBlock) -> np.ndarray | None:
        """Every registered trait over a columnar block, as an (n, k) matrix.

        Column *j* holds trait ``names()[j]``.  Returns ``None`` — telling
        the columnar transport to fall back to per-object annotation —
        when any trait lacks a columnar path, declines it (overridden
        ``compute``), or customises ``annotate``; partial fast paths would
        have to interleave with per-object evaluation anyway, so the
        fallback is all-or-nothing.
        """
        traits = list(self._traits.values())
        if any(
            "annotate" in trait.__dict__ or type(trait).annotate is not Trait.annotate
            for trait in traits
        ):
            return None
        columns = []
        for trait in traits:
            column = trait.compute_columnar(block)
            if column is None:
                return None
            columns.append(np.asarray(column, dtype=np.float64))
        if not columns:
            return np.zeros((len(block), 0), dtype=np.float64)
        return np.column_stack(columns)
