"""Traits: the orient phase (§4.2).

A trait maps a candidate's statistics to one number describing either the
*benefit* of compacting it or the *cost* of doing so.  Traits are defined
independently of one another and combined only later, in the decide phase
— which is exactly what lets AutoComp swap decision strategies (FR2)
without touching observation code.

The three traits from the paper:

* :class:`FileCountReductionTrait` — ΔF_c, the estimated file-count
  reduction: the number of files below the target size (the paper's
  formula, which deliberately ignores partition boundaries and therefore
  overestimates — see §7 "Model Accuracy");
* :class:`FileEntropyTrait` — file-size entropy à la Netflix's
  auto-optimize: we define it as the mean squared relative shortfall below
  target, ``H = (1/N) Σ_{s<T} ((T−s)/T)²`` ∈ [0, 1), so a perfectly laid
  out candidate scores 0 and a dust-pile of near-empty files approaches 1;
* :class:`ComputeCostTrait` — GBHr_c = ExecutorMemoryGB × DataSize_c /
  RewriteBytesPerHour, the paper's compute-cost estimator.

Custom traits implement :class:`Trait` and can read any statistic,
including connector-specific ``custom`` entries (NFR1 extensibility; see
``examples/custom_strategy.py``).
"""

from __future__ import annotations

import abc

from repro.core.candidates import Candidate, CandidateStatistics
from repro.errors import ValidationError

#: Trait orientation constants.
BENEFIT = 1
COST = -1


class Trait(abc.ABC):
    """One orient-phase metric over candidate statistics."""

    #: Unique trait name; also the key under ``candidate.traits``.
    name: str = "trait"
    #: ``BENEFIT`` (+1) if larger values favour compaction, ``COST`` (−1)
    #: if larger values argue against it.
    direction: int = BENEFIT

    @abc.abstractmethod
    def compute(self, statistics: CandidateStatistics) -> float:
        """The trait value for one candidate's statistics."""

    def annotate(self, candidate: Candidate) -> float:
        """Compute and store the trait on a candidate.

        Raises:
            ValidationError: if the candidate has no statistics yet.
        """
        if candidate.statistics is None:
            raise ValidationError(f"candidate {candidate.key} has no statistics")
        value = float(self.compute(candidate.statistics))
        candidate.traits[self.name] = value
        return value

    def compute_batch(self, statistics: list[CandidateStatistics]) -> list[float]:
        """Trait values for many candidates' statistics at once.

        The orient phase computes every trait over every candidate every
        cycle; hot traits override this with a tight comprehension to
        avoid a method call per candidate.
        """
        compute = self.compute
        return [float(compute(s)) for s in statistics]


def _compute_overridden(trait: Trait, base: type) -> bool:
    """True when ``trait.compute`` differs from ``base.compute`` — via a
    subclass *or* an instance attribute (both must disable batch fast paths)."""
    return "compute" in trait.__dict__ or type(trait).compute is not base.compute


class FileCountReductionTrait(Trait):
    """ΔF_c: estimated file-count reduction (paper §4.2, verbatim).

    ``ΔF_c = Σ_i 1[FileSize_i,c < TargetFileSize_c]`` — simply the number of
    small files, on the assumption that each of them disappears into a
    target-sized output.
    """

    name = "file_count_reduction"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return float(statistics.small_file_count)

    def compute_batch(self, statistics: list[CandidateStatistics]) -> list[float]:
        if _compute_overridden(self, FileCountReductionTrait):
            return super().compute_batch(statistics)  # honour overridden compute()
        return [float(s.small_file_count) for s in statistics]


class RelativeFileCountReductionTrait(Trait):
    """ΔF_c as a fraction of the candidate's file count.

    The unconstrained-scenario example in §4.3 triggers when the estimated
    reduction reaches at least 10% — i.e. on this trait ≥ 0.1.
    """

    name = "relative_file_count_reduction"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        if statistics.file_count == 0:
            return 0.0
        return statistics.small_file_count / statistics.file_count


class FileEntropyTrait(Trait):
    """File-size entropy: total squared relative shortfall below target.

    ``H = Σ_{s_i < T} ((T − s_i)/T)²`` with ``T`` the target size — the
    unnormalised form Netflix's auto-optimize uses, made dimensionless by
    dividing each shortfall by the target.  0 when every file meets the
    target; each near-empty file contributes ≈1, so H acts as a
    *severity-weighted* small-file count (which is why entropy- and
    count-based triggers tune to comparable behaviour in Figure 9).
    """

    name = "file_entropy"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        if statistics.file_count == 0:
            return 0.0
        target = float(statistics.target_file_size)
        total = 0.0
        for size in statistics.file_sizes:
            if size < target:
                shortfall = (target - size) / target
                total += shortfall * shortfall
        return total


class ComputeCostTrait(Trait):
    """GBHr_c: estimated compute cost of compacting the candidate (§4.2).

    ``GBHr_c = ExecutorMemoryGB × (DataSize_c / RewriteBytesPerHour)``

    ``DataSize_c`` is the bytes a rewrite must process — the candidate's
    small-file bytes (files already at target are not rewritten).

    Args:
        executor_memory_gb: memory allocated to the compaction executors.
        rewrite_bytes_per_hour: system rewrite throughput.
    """

    name = "compute_cost_gbhr"
    direction = COST

    def __init__(self, executor_memory_gb: float, rewrite_bytes_per_hour: float) -> None:
        if executor_memory_gb <= 0:
            raise ValidationError("executor_memory_gb must be positive")
        if rewrite_bytes_per_hour <= 0:
            raise ValidationError("rewrite_bytes_per_hour must be positive")
        self.executor_memory_gb = executor_memory_gb
        self.rewrite_bytes_per_hour = rewrite_bytes_per_hour

    def compute(self, statistics: CandidateStatistics) -> float:
        return self.executor_memory_gb * (
            statistics.small_file_bytes / self.rewrite_bytes_per_hour
        )

    def compute_batch(self, statistics: list[CandidateStatistics]) -> list[float]:
        if _compute_overridden(self, ComputeCostTrait):
            return super().compute_batch(statistics)  # honour overridden compute()
        memory = self.executor_memory_gb
        throughput = self.rewrite_bytes_per_hour
        return [memory * (s.small_file_bytes / throughput) for s in statistics]


class SmallFileBytesTrait(Trait):
    """Bytes sitting in small files — a benefit proxy for IO-bound goals."""

    name = "small_file_bytes"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return float(statistics.small_file_bytes)


class DeleteFileCountTrait(Trait):
    """Merge-on-read delete files in force — read-amplification pressure."""

    name = "delete_file_count"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return float(statistics.delete_file_count)


class TraitRegistry:
    """An ordered set of traits applied in the orient phase."""

    def __init__(self, traits: list[Trait] | None = None) -> None:
        self._traits: dict[str, Trait] = {}
        for trait in traits or []:
            self.register(trait)

    def register(self, trait: Trait) -> None:
        """Add a trait.

        Raises:
            ValidationError: on duplicate names.
        """
        if trait.name in self._traits:
            raise ValidationError(f"duplicate trait name {trait.name!r}")
        self._traits[trait.name] = trait

    def get(self, name: str) -> Trait:
        """Look up a registered trait by name.

        Raises:
            ValidationError: if unknown.
        """
        if name not in self._traits:
            raise ValidationError(
                f"no trait named {name!r}; registered: {sorted(self._traits)}"
            )
        return self._traits[name]

    def names(self) -> list[str]:
        """Registered trait names in registration order."""
        return list(self._traits)

    def annotate_all(self, candidates: list[Candidate], only_missing: bool = False) -> None:
        """Compute every registered trait on every candidate.

        Args:
            only_missing: skip candidates that already carry every
                registered trait.  Only safe when the caller guarantees
                existing trait values were computed by this registry from
                the candidate's *current* statistics — the contract of
                candidate-reusing connectors
                (:attr:`~repro.core.connectors.Connector.reuses_candidates`).
        """
        traits = list(self._traits.values())
        names = list(self._traits)
        if only_missing:
            # Reused candidates carry the full registered set; fresh ones
            # have empty traits (cheap falsy check).
            todo = [
                c
                for c in candidates
                if not (c.traits and all(name in c.traits for name in names))
            ]
        else:
            todo = list(candidates)
        if not todo:
            return
        # Batched compute skips Trait.annotate's per-call overhead; traits
        # that override annotate() (subclass or instance attribute) keep
        # their per-candidate behaviour.
        if any(
            "annotate" in trait.__dict__ or type(trait).annotate is not Trait.annotate
            for trait in traits
        ):
            for candidate in todo:
                for trait in traits:
                    trait.annotate(candidate)
            return
        statistics: list[CandidateStatistics] = []
        for candidate in todo:
            if candidate.statistics is None:
                raise ValidationError(f"candidate {candidate.key} has no statistics")
            statistics.append(candidate.statistics)
        for trait in traits:
            name = trait.name
            for candidate, value in zip(todo, trait.compute_batch(statistics)):
                candidate.traits[name] = value
