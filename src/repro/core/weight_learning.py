"""Feedback-driven MOOP weight adaptation (§8).

The paper proposes "leveraging regression analysis techniques ... to move
beyond the reliance on fixed weights".  This module closes AutoComp's
feedback loop: a :class:`WeightLearner` observes completed cycles (via the
pipeline's ``feedback_hooks``), regresses *realised* file-count reduction
per GBHr on the decide-phase estimates, and nudges the benefit weight up
when compaction is paying off better than expected (and down otherwise).

The learner is deliberately conservative — bounded weights, small steps,
and a minimum sample count — because it adjusts a production control loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.pipeline import CycleReport
from repro.core.ranking import Objective, WeightedSumPolicy
from repro.errors import ValidationError


@dataclass
class WeightUpdate:
    """One adjustment made by the learner."""

    cycle_index: int
    observed_efficiency: float
    expected_efficiency: float
    new_benefit_weight: float


class WeightLearner:
    """Adapts a two-objective :class:`WeightedSumPolicy` from outcomes.

    Efficiency is defined as *actual files reduced per actual GBHr spent*.
    The learner keeps a running expectation; when a cycle beats it, spending
    compute is evidently cheap relative to benefit, so the benefit weight
    rises (more aggressive compaction); when a cycle underperforms, the
    weight falls back toward cost-consciousness.

    Args:
        policy: the live policy to adjust (objectives are replaced in
            place at each update).
        benefit_trait: the maximised trait name.
        cost_trait: the minimised trait name.
        learning_rate: step size per cycle, in weight units.
        min_weight / max_weight: clamp range for the benefit weight.
        warmup_cycles: cycles observed before any adjustment.
        prior_efficiencies: offline efficiency observations (files reduced
            per GBHr) seeding the running expectation — e.g. the Policy
            Lab's :meth:`~repro.replay.whatif.WhatIfReport.prior_efficiencies`.
            Priors count toward the warmup, so a learner seeded with
            ``warmup_cycles`` or more of them adapts from its very first
            live cycle.
    """

    def __init__(
        self,
        policy: WeightedSumPolicy,
        benefit_trait: str = "file_count_reduction",
        cost_trait: str = "compute_cost_gbhr",
        learning_rate: float = 0.02,
        min_weight: float = 0.3,
        max_weight: float = 0.9,
        warmup_cycles: int = 2,
        prior_efficiencies: "Sequence[float]" = (),
    ) -> None:
        if not 0 < learning_rate < 0.5:
            raise ValidationError("learning_rate must be in (0, 0.5)")
        if not 0 < min_weight < max_weight < 1:
            raise ValidationError("need 0 < min_weight < max_weight < 1")
        if warmup_cycles < 0:
            raise ValidationError("warmup_cycles must be >= 0")
        self.policy = policy
        self.benefit_trait = benefit_trait
        self.cost_trait = cost_trait
        self.learning_rate = learning_rate
        self.min_weight = min_weight
        self.max_weight = max_weight
        self.warmup_cycles = warmup_cycles
        if any(e < 0 for e in prior_efficiencies):
            raise ValidationError("prior efficiencies must be >= 0")
        self._efficiencies: list[float] = list(prior_efficiencies)
        self.updates: list[WeightUpdate] = []

    @property
    def benefit_weight(self) -> float:
        """Current benefit weight of the managed policy."""
        for objective in self.policy.objectives:
            if objective.trait_name == self.benefit_trait:
                return objective.weight
        raise ValidationError(
            f"policy has no objective on {self.benefit_trait!r}"
        )

    def _set_benefit_weight(self, weight: float) -> None:
        weight = min(max(weight, self.min_weight), self.max_weight)
        self.policy.objectives = [
            Objective(self.benefit_trait, weight, maximize=True),
            Objective(self.cost_trait, 1.0 - weight, maximize=False),
        ]

    def absorb_priors(self, efficiencies: "Sequence[float]") -> None:
        """Fold additional offline efficiency observations into the expectation.

        The running counterpart of the constructor's ``prior_efficiencies``:
        the :class:`~repro.core.promoter.PolicyPromoter` streams each
        shadow report's ranked efficiencies (and each guard window's
        realised efficiency) in here, so the learner's expectation tracks
        what the policy plane has actually measured.  Absorbed priors
        count toward the warmup, like constructor priors.
        """
        efficiencies = list(efficiencies)
        if any(e < 0 for e in efficiencies):
            raise ValidationError("prior efficiencies must be >= 0")
        self._efficiencies.extend(efficiencies)

    def observe(self, report: CycleReport) -> None:
        """Feedback hook: fold one finished cycle into the weights.

        Register with the pipeline as ``feedback_hooks=[learner.observe]``.
        """
        reduced = sum(r.actual_reduction for r in report.results if r.success)
        spent = sum(r.gbhr for r in report.results if r.success)
        if spent <= 0:
            return
        efficiency = reduced / spent
        expected = (
            float(np.mean(self._efficiencies)) if self._efficiencies else efficiency
        )
        self._efficiencies.append(efficiency)
        if len(self._efficiencies) <= self.warmup_cycles:
            return
        direction = 1.0 if efficiency > expected else -1.0
        new_weight = self.benefit_weight + direction * self.learning_rate
        self._set_benefit_weight(new_weight)
        self.updates.append(
            WeightUpdate(
                cycle_index=report.cycle_index,
                observed_efficiency=efficiency,
                expected_efficiency=expected,
                new_benefit_weight=self.benefit_weight,
            )
        )

    def regress_efficiency(
        self, reports: list[CycleReport]
    ) -> tuple[float, float] | None:
        """Least-squares fit of realised reduction against realised cost.

        Returns:
            ``(slope, intercept)`` of ``files_reduced ~ gbhr`` across all
            successful results in ``reports`` (the §8 regression analysis),
            or None with fewer than two samples.
        """
        xs = []
        ys = []
        for report in reports:
            for result in report.results:
                if result.success:
                    xs.append(result.gbhr)
                    ys.append(float(result.actual_reduction))
        if len(xs) < 2 or len(set(xs)) < 2:
            return None
        design = np.vstack([np.array(xs), np.ones(len(xs))]).T
        (slope, intercept), *_ = np.linalg.lstsq(design, np.array(ys), rcond=None)
        return float(slope), float(intercept)
