"""Execution triggers: when compaction runs (FR3, §5).

Two automatic modes, as in the paper:

* **Periodic** (:class:`PeriodicTrigger`) — a pull model: the pipeline runs
  on a schedule (hourly in §6, daily in the LinkedIn deployment),
  evaluating the whole candidate space each cycle.
* **Optimize-after-write** (:class:`OptimizeAfterWriteHook`) — a push
  model: an engine-side hook fires after each write commit, re-evaluates
  the written table's trigger trait, and either compacts immediately
  (unlimited budget; the §6.3 auto-tuning setup) or merely notifies the
  standalone service that traits need recalculation (decoupled mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.candidates import Candidate, CandidateKey, CandidateScope
from repro.core.connectors import Connector
from repro.core.pipeline import AutoCompPipeline, CycleReport
from repro.core.scheduling import CompactionTask, ExecutionBackend, ExecutionResult
from repro.core.traits import Trait
from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.simulation.simulator import Simulator


class PeriodicTrigger:
    """Run a pipeline every ``interval_s`` simulated seconds.

    Args:
        pipeline: the configured AutoComp pipeline.
        interval_s: cycle spacing (1 hour in the §6 experiments).
        until: stop scheduling cycles at/after this simulated time.

    Attributes:
        reports: accumulated :class:`CycleReport` objects, one per cycle.
    """

    def __init__(
        self, pipeline: AutoCompPipeline, interval_s: float, until: float | None = None
    ) -> None:
        if interval_s <= 0:
            raise ValidationError("interval_s must be positive")
        self.pipeline = pipeline
        self.interval_s = interval_s
        self.until = until
        self.reports: list[CycleReport] = []

    def attach(self, simulator: Simulator) -> "PeriodicTrigger":
        """Arm the trigger on a simulator; returns self for chaining."""

        def fire() -> None:
            report = self.pipeline.run_cycle(simulator=simulator)
            self.reports.append(report)

        simulator.every(self.interval_s, fire, name="autocomp-cycle", until=self.until)
        return self


@dataclass
class HookDecision:
    """What an optimize-after-write evaluation concluded."""

    table: str
    trait_value: float
    triggered: bool
    result: ExecutionResult | None = None


class OptimizeAfterWriteHook:
    """Engine-side post-write compaction hook (§5, push model).

    Args:
        connector: used to (re)collect statistics for the written table.
        trait: trigger trait (e.g. small-file count or file entropy —
            the two traits tuned in §6.3).
        threshold: trait value at/above which the hook fires.
        backend: used in ``immediate`` mode to run the compaction job
            synchronously.
        mode: ``immediate`` (compact now, unconstrained budget) or
            ``notify`` (invoke ``notify`` and let the standalone service
            schedule work — decoupled, resource-controlled).
        notify: callback receiving the :class:`CandidateKey` in
            ``notify`` mode.
        cooldown_s: minimum spacing between triggers per table, preventing
            compaction storms on hot tables.

    Attributes:
        decisions: every evaluation the hook made (for explainability).
    """

    def __init__(
        self,
        connector: Connector,
        trait: Trait,
        threshold: float,
        backend: ExecutionBackend | None = None,
        mode: str = "immediate",
        notify: Callable[[CandidateKey], None] | None = None,
        cooldown_s: float = 0.0,
    ) -> None:
        if mode not in ("immediate", "notify"):
            raise ValidationError(f"mode must be immediate|notify, got {mode!r}")
        if mode == "immediate" and backend is None:
            raise ValidationError("immediate mode requires an execution backend")
        if mode == "notify" and notify is None:
            raise ValidationError("notify mode requires a notify callback")
        if cooldown_s < 0:
            raise ValidationError("cooldown_s must be >= 0")
        self.connector = connector
        self.trait = trait
        self.threshold = threshold
        self.backend = backend
        self.mode = mode
        self.notify = notify
        self.cooldown_s = cooldown_s
        self.decisions: list[HookDecision] = []
        self._last_trigger: dict[str, float] = {}

    def on_write(self, table: BaseTable) -> HookDecision:
        """Evaluate the hook after a write committed to ``table``.

        Returns:
            The :class:`HookDecision`, including the compaction result when
            one ran.
        """
        now = table.clock.now
        ident = table.identifier
        key = CandidateKey(
            database=ident.database, table=ident.name, scope=CandidateScope.TABLE
        )
        stats = self.connector.collect_statistics(key)
        value = float(self.trait.compute(stats))
        qualified = key.qualified_table

        in_cooldown = (
            qualified in self._last_trigger
            and now - self._last_trigger[qualified] < self.cooldown_s
        )
        if value < self.threshold or in_cooldown:
            decision = HookDecision(table=qualified, trait_value=value, triggered=False)
            self.decisions.append(decision)
            return decision

        self._last_trigger[qualified] = now
        result: ExecutionResult | None = None
        if self.mode == "immediate":
            candidate = Candidate(key=key, statistics=stats)
            self.trait.annotate(candidate)
            task = CompactionTask.from_candidate(candidate)
            job = self.backend.prepare(task)
            if job is None:
                result = ExecutionResult.skipped_result(task, now)
            else:
                job.start()
                result = job.finish()
        else:
            self.notify(key)

        decision = HookDecision(
            table=qualified, trait_value=value, triggered=True, result=result
        )
        self.decisions.append(decision)
        return decision

    @property
    def trigger_count(self) -> int:
        """How many times the hook fired."""
        return sum(1 for d in self.decisions if d.triggered)
