"""Incremental observation: a statistics cache for the observe phase.

The paper's deployment (§7) runs daily OODA cycles over tens of thousands
of tables, but only a fraction of the fleet writes on any given day.
Re-collecting :class:`~repro.core.candidates.CandidateStatistics` for every
candidate every cycle makes observation O(fleet size); caching the frozen
statistics of *clean* tables makes it O(dirty tables) instead.

Invalidation has three independent sources, mirroring how a deployment
learns about writes:

* **write events** — the :class:`~repro.core.service.AutoCompService`
  notification inbox (§5's decoupled optimize-after-write hooks) maps
  directly onto :meth:`StatsCache.invalidate`;
* **version tokens** — connectors that can read a cheap per-table change
  counter (e.g. the fleet model's ``stats_version`` array, or an LST
  table's metadata sequence number) pass it to :meth:`StatsCache.get`; a
  mismatch evicts the entry without any event plumbing;
* **TTL fallback** — entries older than ``ttl_s`` expire, bounding the
  staleness of slowly varying inputs (such as the §7 quota utilisation,
  which shifts as *other* tables in the database grow) even when no write
  event arrives.

Statistics objects are frozen dataclasses, so returning the cached object
itself is safe — the same value a fresh observation of unchanged state
would produce, which is what keeps cached cycles byte-identical to cold
ones (NFR2).
"""

from __future__ import annotations

import math
import numbers
import threading
from dataclasses import dataclass

from repro.core.candidates import Candidate, CandidateKey, CandidateStatistics
from repro.errors import ValidationError


@dataclass
class _Entry:
    statistics: CandidateStatistics
    stored_at: float
    token: object | None


class StatsCache:
    """Candidate-statistics cache with event, token and TTL invalidation.

    Args:
        ttl_s: maximum entry age in seconds; ``math.inf`` (the default)
            disables expiry so only events/tokens invalidate.
        version_slack: opt-in approximate staleness tolerance for *integer*
            version tokens: an entry whose stored token lags the lookup
            token by at most this many versions is still served (0, the
            default, requires exact freshness).  A table that trickled a
            handful of commits since its last observation has nearly
            unchanged statistics, so deployments can trade a bounded
            observation error for skipping the re-collection entirely.
            Non-integer tokens always require exact equality.

    Attributes:
        hits: lookups served from the cache.
        misses: lookups that found no usable entry.
        invalidations: entries dropped by :meth:`invalidate` /
            :meth:`invalidate_key`.
        expirations: entries dropped by TTL or token mismatch.

    Thread safety: shards of a sharded pipeline may share one key-hashed
    cache on a thread pool (their key slices are disjoint, but ``hits`` /
    ``misses`` and the two dicts are not), so every mutating method takes
    the cache's lock — the same discipline as
    :class:`IndexedCandidateCache`'s cross-slot mutations.
    """

    def __init__(self, ttl_s: float = math.inf, version_slack: int = 0) -> None:
        if ttl_s <= 0:
            raise ValidationError(f"ttl_s must be positive, got {ttl_s}")
        if version_slack < 0:
            raise ValidationError(f"version_slack must be >= 0, got {version_slack}")
        self.ttl_s = ttl_s
        self.version_slack = version_slack
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0
        self._entries: dict[CandidateKey, _Entry] = {}
        self._by_table: dict[str, set[CandidateKey]] = {}
        # Reentrant: apply_delta holds it across its batch while reusing
        # put(), and get() drops entries it finds stale.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CandidateKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(
        self, key: CandidateKey, now: float = 0.0, token: object | None = None
    ) -> CandidateStatistics | None:
        """The cached statistics for ``key``, or None on a miss.

        Args:
            key: candidate identity.
            now: current time, compared against the entry's ``stored_at``
                for TTL expiry.
            token: optional freshness token; when given, the entry is only
                valid if it was stored under an equal token.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expired = now - entry.stored_at >= self.ttl_s
            stale = token is not None and entry.token != token
            if (
                stale
                and self.version_slack
                and isinstance(token, numbers.Integral)
                and isinstance(entry.token, numbers.Integral)
                and 0 <= token - entry.token <= self.version_slack
            ):
                # Approximate-freshness hit: the table advanced, but by few
                # enough versions that the cached statistics are close enough.
                stale = False
            if expired or stale:
                self._drop(key)
                self.expirations += 1
                self.misses += 1
                return None
            self.hits += 1
            return entry.statistics

    def put(
        self,
        key: CandidateKey,
        statistics: CandidateStatistics,
        now: float = 0.0,
        token: object | None = None,
    ) -> None:
        """Store ``statistics`` for ``key`` observed at ``now``."""
        with self._lock:
            self._entries[key] = _Entry(statistics, now, token)
            self._by_table.setdefault(key.qualified_table, set()).add(key)

    def invalidate(self, key: CandidateKey) -> int:
        """Drop every entry touching ``key``'s table; returns the count.

        A write event for any scope dirties all scopes of the table (a
        partition append changes the table-scope statistics too), so
        invalidation is deliberately table-granular.
        """
        with self._lock:
            keys = self._by_table.pop(key.qualified_table, None)
            if not keys:
                return 0
            for cached_key in keys:
                self._entries.pop(cached_key, None)
            self.invalidations += len(keys)
            return len(keys)

    def invalidate_key(self, key: CandidateKey) -> bool:
        """Drop exactly one entry; returns whether it existed."""
        with self._lock:
            if key not in self._entries:
                return False
            self._drop(key)
            self.invalidations += 1
            return True

    def apply_delta(self, delta, statistics: list[CandidateStatistics]) -> int:
        """Merge a shard worker's :class:`~repro.core.workers.CacheDelta`.

        Process-mode shard workers observe in another address space, so
        their cache writes would be lost with the worker's memory;
        replaying the delta here keeps invalidation tokens alive across
        the round trip — the next cycle's lookups hit exactly as if the
        observation had happened in-process.

        Args:
            delta: slots are :class:`~repro.core.candidates.CandidateKey`
                objects for this key-hashed cache.
            statistics: position-aligned statistics to store.

        Returns:
            Entries written.
        """
        if len(delta.slots) != len(statistics):
            raise ValidationError(
                f"cache delta has {len(delta.slots)} slots for "
                f"{len(statistics)} statistics"
            )
        with self._lock:
            for key, token, stats in zip(delta.slots, delta.tokens, statistics):
                self.put(key, stats, now=delta.stored_at, token=token)
        return len(statistics)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._by_table.clear()

    def _drop(self, key: CandidateKey) -> None:
        self._entries.pop(key, None)
        siblings = self._by_table.get(key.qualified_table)
        if siblings is not None:
            siblings.discard(key)
            if not siblings:
                del self._by_table[key.qualified_table]

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0 when nothing was looked up)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def counters_snapshot(self) -> dict[str, int]:
        """All four counters read atomically under the lock.

        A caller sampling ``hits``/``misses``/... attribute-by-attribute can
        interleave with a concurrent lookup and report a torn state (e.g.
        a hit counted but not yet its lookup); telemetry paths should use
        this instead.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
            }


class IndexedCandidateCache:
    """Dense, index-addressed sibling of :class:`StatsCache`.

    Vectorised connectors (the fleet) address tables by integer index, so
    this cache trades the generic key-hashed dictionary for flat per-index
    slots: freshness is a single integer-token comparison per lookup, and
    the cached value is the whole observed :class:`Candidate` — which the
    pipeline annotates *in place* during orient, so a hit skips both the
    statistics build and the trait recompute on the next cycle.  That is
    what makes a warm cycle O(dirty tables) end to end.

    Invalidation semantics match :class:`StatsCache`: write events
    (:meth:`invalidate_index`), version tokens (a stale token on lookup
    evicts), and a TTL fallback bounding the staleness of slowly varying
    statistics such as quota utilisation.

    Candidate reuse makes entries private to one pipeline's configuration:
    a cache must not be shared between pipelines with different trait
    registries.

    Args:
        ttl_s: maximum entry age in seconds (``math.inf`` disables).
        version_slack: opt-in approximate staleness tolerance (see
            :class:`StatsCache`): entries whose stored integer token lags
            the lookup token by at most this many versions still hit.
            Connectors running the validity check inline over the bulk
            accessors read this attribute and apply the same rule.
    """

    def __init__(self, ttl_s: float = math.inf, version_slack: int = 0) -> None:
        if ttl_s <= 0:
            raise ValidationError(f"ttl_s must be positive, got {ttl_s}")
        if version_slack < 0:
            raise ValidationError(f"version_slack must be >= 0, got {version_slack}")
        self.ttl_s = ttl_s
        self.version_slack = version_slack
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Entries dropped by TTL or token mismatch — parity with
        #: :attr:`StatsCache.expirations`, so the two cache kinds report
        #: identical accounting for the same lookup scenario.
        self.expirations = 0
        self._candidates: list[Candidate | None] = []
        self._tokens: list[int] = []
        self._stored_at: list[float] = []
        # Shards observing on a thread pool may share one cache (their
        # index slices are disjoint): growth and bulk-counter updates are
        # the only cross-slot mutations, so they take this lock.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for c in self._candidates if c is not None)

    def ensure_capacity(self, count: int) -> None:
        """Grow the slot arrays to hold indices ``0..count-1`` (thread-safe)."""
        # Lock-free fast path: _stored_at is extended *last* under the
        # lock, so its length bounds all three lists from below.
        if count <= len(self._stored_at):  # repro-lint: disable=RL001 -- append-only growth; _stored_at extended last under the lock bounds all three lists from below
            return
        with self._lock:
            grow = count - len(self._candidates)
            if grow > 0:
                self._candidates.extend([None] * grow)
                self._tokens.extend([-1] * grow)
                self._stored_at.extend([-math.inf] * grow)

    def record_lookups(self, hits: int, misses: int, expirations: int = 0) -> None:
        """Bulk counter update for connectors classifying inline (thread-safe).

        ``expirations`` counts the misses whose slot held an entry that
        failed the token/TTL check — the inline twin of the eviction
        accounting :meth:`get` does itself.
        """
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.expirations += expirations

    # Bulk accessors: vectorised connectors run the validity check inline
    # over these parallel lists (a method call per lookup would dominate a
    # warm cycle).  Treat them as read/write slots, never resize them —
    # use :meth:`ensure_capacity`; update ``hits``/``misses`` in bulk.

    @property
    def candidates(self) -> list[Candidate | None]:
        """Slot storage: the cached candidate per index (None = empty)."""
        return self._candidates  # repro-lint: disable=RL001 -- bulk accessor hands out the live storage; shards own disjoint slices

    @property
    def tokens(self) -> list[int]:
        """Slot storage: freshness token each entry was stored under."""
        return self._tokens  # repro-lint: disable=RL001 -- bulk accessor hands out the live storage; shards own disjoint slices

    @property
    def stored_ats(self) -> list[float]:
        """Slot storage: observation time of each entry (for TTL)."""
        return self._stored_at  # repro-lint: disable=RL001 -- bulk accessor hands out the live storage; shards own disjoint slices

    def get(self, index: int, now: float = 0.0, token: int = 0) -> Candidate | None:
        """The cached candidate at ``index``, or None on a miss.

        An entry is valid iff ``0 <= token - stored_token <= version_slack``
        (exact equality when slack is 0, the default) and it is younger
        than the TTL; stale entries are evicted.

        Thread-sharded connectors call this concurrently for disjoint
        indices (e.g. the catalog connector's per-key dense path), so the
        shared counters are updated under the lock — the slot accesses
        themselves need none, because shards own disjoint slices.
        """
        # Slot accesses below are deliberately lock-free: shards own
        # disjoint index slices (see the class docstring), so no two
        # threads ever touch the same slot.
        if index >= len(self._candidates):  # repro-lint: disable=RL001 -- shards own disjoint slices; lists only grow
            with self._lock:
                self.misses += 1
            return None
        candidate = self._candidates[index]  # repro-lint: disable=RL001 -- shards own disjoint slices
        if (
            candidate is None
            or not 0 <= token - self._tokens[index] <= self.version_slack  # repro-lint: disable=RL001 -- shards own disjoint slices
            or now - self._stored_at[index] >= self.ttl_s  # repro-lint: disable=RL001 -- shards own disjoint slices
        ):
            expired = candidate is not None
            if expired:
                self._candidates[index] = None  # repro-lint: disable=RL001 -- shards own disjoint slices
            with self._lock:
                if expired:
                    self.expirations += 1
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return candidate

    def put(self, index: int, candidate: Candidate, now: float = 0.0, token: int = 0) -> None:
        """Store ``candidate`` at ``index`` under freshness ``token``."""
        self.ensure_capacity(index + 1)
        self._candidates[index] = candidate  # repro-lint: disable=RL001 -- shards own disjoint slices; growth is locked in ensure_capacity
        self._tokens[index] = token  # repro-lint: disable=RL001 -- shards own disjoint slices
        self._stored_at[index] = now  # repro-lint: disable=RL001 -- shards own disjoint slices

    def apply_delta(self, delta, candidates: list[Candidate]) -> int:
        """Merge a shard worker's :class:`~repro.core.workers.CacheDelta`.

        The dense counterpart of :meth:`StatsCache.apply_delta`: slots are
        integer indices and the stored value is the whole oriented
        candidate, so after the merge the next cycle reuses the worker's
        observation *and* its trait computation.  Shards own disjoint index
        slices, so concurrent merges never race on a slot.

        Returns:
            Entries written.
        """
        if len(delta.slots) != len(candidates):
            raise ValidationError(
                f"cache delta has {len(delta.slots)} slots for "
                f"{len(candidates)} candidates"
            )
        for index, token, candidate in zip(delta.slots, delta.tokens, candidates):
            self.put(index, candidate, now=delta.stored_at, token=token)
        return len(candidates)

    def invalidate_index(self, index: int) -> bool:
        """Write-event eviction; returns whether an entry existed."""
        if index >= len(self._candidates) or self._candidates[index] is None:  # repro-lint: disable=RL001 -- shards own disjoint slices; lists only grow
            return False
        self._candidates[index] = None  # repro-lint: disable=RL001 -- shards own disjoint slices
        with self._lock:
            self.invalidations += 1
        return True

    def clear(self) -> None:
        """Drop all entries in place (counters and aliases are preserved).

        Mutates the existing slot lists rather than rebinding them, so
        holders of the bulk accessors keep observing the live storage.
        """
        with self._lock:
            del self._candidates[:]
            del self._tokens[:]
            del self._stored_at[:]

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0 when nothing was looked up)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def counters_snapshot(self) -> dict[str, int]:
        """All four counters read atomically under the lock.

        Mirrors :meth:`StatsCache.counters_snapshot` so telemetry code can
        duck-type over either cache kind without risking a torn
        attribute-by-attribute read.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
            }
