"""Cron-style calendar cadence for the daemonized control plane.

The daemon's fixed ``interval_s`` cadence answers "every N seconds"; a
production compaction service usually wants "03:30 every night" or
"on the hour, weekdays" — off-peak windows expressed on the calendar.
:class:`CronSchedule` parses the classic five-field crontab spec
(``minute hour day-of-month month day-of-week``) and answers the one
question a scheduler loop needs: :meth:`CronSchedule.next_after`.

Semantics follow Vixie cron:

* fields accept ``*``, single values, ranges (``a-b``), steps (``*/n``,
  ``a-b/n``) and comma lists, all combinable (``0,30 2-4 * * 1-5``);
* day-of-week runs 0–7 with both 0 and 7 meaning Sunday;
* when *both* day-of-month and day-of-week are restricted, a time
  matches if **either** field matches (the classic cron OR rule);
  when only one is restricted, that one decides.

Times are local (``time.localtime`` / ``time.mktime``), matching what an
operator writing a crontab expects.  The daemon treats a cron cadence as
calendar-anchored rather than completion-anchored: a cycle that runs past
the next boundary skips to the following one instead of stacking overdue
firings — the same no-stacking guarantee the fixed interval gives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ValidationError

#: (name, lo, hi) per field, in spec order.
_FIELDS = (
    ("minute", 0, 59),
    ("hour", 0, 23),
    ("day-of-month", 1, 31),
    ("month", 1, 12),
    ("day-of-week", 0, 7),
)

#: Search horizon: a spec with no matching time within this many minutes
#: (4 years — covers Feb 29) is rejected as unsatisfiable.
_MAX_SEARCH_MINUTES = 4 * 366 * 24 * 60


def _parse_field(text: str, name: str, lo: int, hi: int) -> tuple[frozenset[int], bool]:
    """One crontab field → (allowed values, was it ``*``).

    The star flag matters only for the day fields (the OR rule); values
    are normalised so day-of-week 7 folds onto 0 (Sunday).
    """
    is_star = text == "*"
    values: set[int] = set()
    for part in text.split(","):
        if not part:
            raise ValidationError(f"empty item in cron {name} field {text!r}")
        step = 1
        if "/" in part:
            part, _, step_text = part.partition("/")
            try:
                step = int(step_text)
            except ValueError:
                raise ValidationError(
                    f"bad step {step_text!r} in cron {name} field"
                ) from None
            if step <= 0:
                raise ValidationError(f"cron {name} step must be positive")
        if part == "*":
            first, last = lo, hi
        elif "-" in part:
            first_text, _, last_text = part.partition("-")
            try:
                first, last = int(first_text), int(last_text)
            except ValueError:
                raise ValidationError(
                    f"bad range {part!r} in cron {name} field"
                ) from None
        else:
            try:
                first = last = int(part)
            except ValueError:
                raise ValidationError(
                    f"bad value {part!r} in cron {name} field"
                ) from None
        if first > last:
            raise ValidationError(
                f"inverted range {part!r} in cron {name} field"
            )
        if first < lo or last > hi:
            raise ValidationError(
                f"cron {name} value out of range {lo}-{hi}: {part!r}"
            )
        values.update(range(first, last + 1, step))
    if name == "day-of-week" and 7 in values:
        values.discard(7)
        values.add(0)
    return frozenset(values), is_star


@dataclass(frozen=True)
class CronSchedule:
    """A parsed five-field crontab spec; build via :meth:`parse`.

    Instances are immutable and hashable; ``str()`` round-trips the
    original spec text.  Anything with a compatible
    ``next_after(ts) -> float`` method is accepted wherever the daemon
    takes a schedule, so tests can substitute fast fakes.
    """

    spec: str
    minutes: frozenset[int]
    hours: frozenset[int]
    days: frozenset[int]
    months: frozenset[int]
    weekdays: frozenset[int]
    #: Star flags drive the classic dom/dow OR rule.
    dom_star: bool
    dow_star: bool

    @classmethod
    def parse(cls, spec: str) -> "CronSchedule":
        """Parse ``"m h dom mon dow"`` into a schedule.

        Raises:
            ValidationError: malformed spec, out-of-range values, or a
                spec with no satisfiable time (e.g. ``0 0 31 2 *``).
        """
        fields = spec.split()
        if len(fields) != 5:
            raise ValidationError(
                f"cron spec needs 5 fields (m h dom mon dow), got {len(fields)}: "
                f"{spec!r}"
            )
        parsed = [
            _parse_field(text, name, lo, hi)
            for text, (name, lo, hi) in zip(fields, _FIELDS)
        ]
        schedule = cls(
            spec=spec,
            minutes=parsed[0][0],
            hours=parsed[1][0],
            days=parsed[2][0],
            months=parsed[3][0],
            weekdays=parsed[4][0],
            dom_star=parsed[2][1],
            dow_star=parsed[4][1],
        )
        # Fail unsatisfiable specs at parse time, not in the daemon loop.
        schedule.next_after(time.time())
        return schedule

    def __str__(self) -> str:
        return self.spec

    def _day_matches(self, lt: time.struct_time) -> bool:
        dom_ok = lt.tm_mday in self.days
        # struct_time counts Monday=0; cron counts Sunday=0.
        dow_ok = (lt.tm_wday + 1) % 7 in self.weekdays
        if self.dom_star and self.dow_star:
            return True
        if self.dom_star:
            return dow_ok
        if self.dow_star:
            return dom_ok
        return dom_ok or dow_ok  # both restricted: Vixie cron ORs them

    def matches(self, ts: float) -> bool:
        """Whether local time ``ts`` falls on the schedule (minute granularity)."""
        lt = time.localtime(ts)
        return (
            lt.tm_min in self.minutes
            and lt.tm_hour in self.hours
            and lt.tm_mon in self.months
            and self._day_matches(lt)
        )

    def next_after(self, ts: float) -> float:
        """The first scheduled time strictly after ``ts`` (epoch seconds).

        Walks forward by skipping whole non-matching months, days and
        hours (via ``mktime`` field normalisation), so far-future matches
        like "Feb 29" resolve in a few hundred steps rather than
        minute-by-minute.
        """
        # Start at the next whole minute boundary after ts.
        t = (int(ts) // 60 + 1) * 60
        searched = 0
        while searched < _MAX_SEARCH_MINUTES:
            lt = time.localtime(t)
            if lt.tm_mon not in self.months:
                # First minute of the next month.
                t = time.mktime((lt.tm_year, lt.tm_mon + 1, 1, 0, 0, 0, 0, 0, -1))
                searched += 1
                continue
            if not self._day_matches(lt):
                t = time.mktime(
                    (lt.tm_year, lt.tm_mon, lt.tm_mday + 1, 0, 0, 0, 0, 0, -1)
                )
                searched += 1
                continue
            if lt.tm_hour not in self.hours:
                t = time.mktime(
                    (lt.tm_year, lt.tm_mon, lt.tm_mday, lt.tm_hour + 1, 0, 0, 0, 0, -1)
                )
                searched += 1
                continue
            if lt.tm_min not in self.minutes:
                t += 60
                searched += 1
                continue
            return float(t)
        raise ValidationError(
            f"cron spec {self.spec!r} has no matching time within 4 years"
        )


def as_schedule(spec) -> "CronSchedule | object | None":
    """Normalise a daemon ``schedule`` argument.

    ``None`` passes through (fixed-interval cadence), strings are parsed
    as crontab specs, and any object already exposing ``next_after`` is
    accepted as-is (duck-typed — tests use fast fakes).
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        return CronSchedule.parse(spec)
    if hasattr(spec, "next_after"):
        return spec
    raise ValidationError(
        "schedule must be a crontab string, an object with next_after(), or None"
    )
