"""The AutoComp daemon: scheduled multi-tenant cycles that survive crashes.

The paper's §7 production story is a *continuously running* compaction
service; :class:`AutoCompDaemon` is that run-forever layer over
:class:`~repro.core.service.AutoCompService`:

* **cadence** — a background thread fires ``service.run_cycle`` every
  ``interval_s`` wall-clock seconds, anchored to cycle *completion* (a
  long cycle delays the next tick instead of stacking overdue firings),
  or on a cron-style calendar schedule
  (:class:`~repro.core.cron.CronSchedule`, ``schedule="30 3 * * *"``);
* **self-driving policy** — an optional
  :class:`~repro.core.promoter.PolicyPromoter` ticks on its own cadence
  thread (``promoter_interval_s`` / ``promoter_schedule``),
  shadow-evaluating the candidate pool and promoting winners behind the
  guard window, with its state surfaced under ``status()["promoter"]``;
* **concurrency safety** — before any selected candidate executes, the
  daemon's act gates run: an optional
  :class:`~repro.core.fairness.AdmissionController` applies per-database
  quotas, then every candidate must win its per-table/partition lock file
  (:class:`~repro.core.locks.LockManager`).  Two daemon instances sharing
  one lock directory therefore never double-compact, however their
  schedules interleave — the lock audit log proves it after the fact
  (:func:`~repro.core.locks.verify_audit`);
* **crash safety** — :meth:`AutoCompDaemon.start` reclaims stale locks
  (dead pid or stale heartbeat mtime) left by crashed siblings, and a
  heartbeat thread keeps this instance's locks visibly alive;
* **graceful drain** — :meth:`AutoCompDaemon.stop` finishes or cancels
  in-flight shard work with a bounded timeout
  (:meth:`~repro.core.workers.WorkerPool.close`), releases all locks, and
  spills the service's :class:`~repro.replay.catalog_trace.CatalogHistoryRing`
  to chunked trace segments so ``evaluate_recent`` history survives the
  restart;
* **durable progress** — :meth:`AutoCompDaemon.backfill` walks a large
  unit list through a file-based resumable state machine
  (:class:`ResumableStateMachine`, ``INIT → LOCKED → RUNNING → COMPLETE``
  per unit with :meth:`ResumableStateMachine.get_next_chunk` resume), so
  a 10k-table backfill killed with ``kill -9`` mid-fleet resumes from the
  last ``COMPLETE`` unit instead of starting over;
* **observability** — with ``obs_dir`` set the daemon runs a
  :class:`~repro.obs.exporter.MetricsExporter` that periodically writes
  the telemetry sink (Prometheus text + JSONL snapshots), the attached
  tracer's spans, and :meth:`AutoCompDaemon.status` to files under that
  directory; :meth:`AutoCompDaemon.serve_status` additionally exposes
  ``/status`` and ``/metrics`` over stdlib HTTP.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.core.candidates import Candidate
from repro.core.cron import as_schedule
from repro.core.fairness import AdmissionController
from repro.core.locks import LockManager, lock_slug
from repro.core.scheduling import CompactionTask, ExecutionResult
from repro.core.service import AutoCompService
from repro.errors import ValidationError
from repro.obs.exporter import MetricsExporter, render_prometheus

#: Resumable-unit lifecycle states, in order.
UNIT_STATES = ("INIT", "LOCKED", "RUNNING", "COMPLETE")


class ResumableStateMachine:
    """File-backed per-unit progress: ``INIT → LOCKED → RUNNING → COMPLETE``.

    One JSON file per unit under ``state_dir`` (atomic tmp-write +
    ``os.replace`` transitions), so progress survives ``kill -9`` at any
    point: on restart, :meth:`recover` demotes units caught mid-flight
    (``LOCKED``/``RUNNING``) back to ``INIT`` — their work may or may not
    have happened, and redoing an idempotent compaction unit is safe while
    skipping one is not — and :meth:`get_next_chunk` hands out only units
    still in ``INIT``, never touching ``COMPLETE`` ones.

    Args:
        state_dir: directory of unit state files (created if missing).
        clock: timestamp source for ``updated_at`` stamps.
    """

    def __init__(self, state_dir: str | os.PathLike, clock=time.time) -> None:
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        self._clock = clock
        self._mutex = threading.Lock()
        self._states: dict[str, dict] = {}
        self._scan()

    def _path_for(self, unit: str) -> str:
        return os.path.join(self.state_dir, lock_slug(unit) + ".json")

    def _scan(self) -> None:
        for name in sorted(os.listdir(self.state_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.state_dir, name), encoding="utf-8") as stream:
                    record = json.load(stream)
            except (OSError, json.JSONDecodeError):
                continue  # torn write mid-crash: unit re-registers as INIT
            unit = record.get("unit")
            if unit and record.get("state") in UNIT_STATES:
                self._states[unit] = record

    def _write(self, record: dict) -> None:
        path = self._path_for(record["unit"])
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(record, stream)
        os.replace(tmp, path)  # atomic: readers see old or new, never torn

    def register(self, units) -> int:
        """Ensure a state file exists for every unit (new ones start INIT).

        Returns how many units were newly registered; already-known units
        (any state) are left untouched, so re-running a backfill with the
        same unit list is a no-op for completed work.
        """
        added = 0
        with self._mutex:
            for unit in units:
                unit = str(unit)
                if unit in self._states:
                    continue
                record = {
                    "unit": unit,
                    "state": "INIT",
                    "updated_at": self._clock(),
                    "attempts": 0,
                }
                self._write(record)
                self._states[unit] = record
                added += 1
        return added

    def recover(self) -> list[str]:
        """Demote mid-flight units (``LOCKED``/``RUNNING``) back to ``INIT``.

        Call on startup after a crash; returns the demoted unit names.
        """
        reset = []
        with self._mutex:
            for unit, record in sorted(self._states.items()):
                if record["state"] in ("LOCKED", "RUNNING"):
                    self._transition(unit, "INIT")
                    reset.append(unit)
        return reset

    def _transition(self, unit: str, state: str) -> None:
        record = dict(self._states[unit])
        record["state"] = state
        record["updated_at"] = self._clock()
        if state == "RUNNING":
            record["attempts"] = record.get("attempts", 0) + 1
        self._write(record)
        self._states[unit] = record

    def get_next_chunk(self, n: int = 1, exclude=()) -> list[str]:
        """Claim up to ``n`` INIT units (moved to ``LOCKED``), sorted order.

        Empty list means the backfill is drained (or everything left is
        already claimed/complete).  Units in ``exclude`` are skipped —
        callers pass the units they just deferred (lock contention,
        unknown key) so releasing one back to ``INIT`` cannot make the
        claim loop spin on it.
        """
        if n <= 0:
            raise ValidationError("chunk size must be positive")
        claimed = []
        with self._mutex:
            for unit, record in sorted(self._states.items()):
                if record["state"] != "INIT" or unit in exclude:
                    continue
                self._transition(unit, "LOCKED")
                claimed.append(unit)
                if len(claimed) >= n:
                    break
        return claimed

    def mark_running(self, unit: str) -> None:
        """LOCKED → RUNNING (work is about to execute; attempts += 1)."""
        with self._mutex:
            self._transition(unit, "RUNNING")

    def mark_complete(self, unit: str) -> None:
        """→ COMPLETE (terminal; never handed out again)."""
        with self._mutex:
            self._transition(unit, "COMPLETE")

    def release(self, unit: str) -> None:
        """Put a claimed-but-unworked unit back to INIT (e.g. lock contention)."""
        with self._mutex:
            self._transition(unit, "INIT")

    def state_of(self, unit: str) -> str | None:
        """Current state of one unit (None = unknown)."""
        with self._mutex:
            record = self._states.get(str(unit))
            return record["state"] if record is not None else None

    def attempts_of(self, unit: str) -> int:
        """How many times the unit has entered ``RUNNING`` (0 = never)."""
        with self._mutex:
            record = self._states.get(str(unit))
            return int(record.get("attempts", 0)) if record is not None else 0

    def counts(self) -> dict[str, int]:
        """Units per state, every state present (possibly 0)."""
        totals = dict.fromkeys(UNIT_STATES, 0)
        with self._mutex:
            for record in self._states.values():
                totals[record["state"]] += 1
        return totals

    def complete_units(self) -> list[str]:
        """All COMPLETE unit names, sorted."""
        with self._mutex:
            return sorted(
                u for u, r in self._states.items() if r["state"] == "COMPLETE"
            )


class AutoCompDaemon:
    """Run an :class:`AutoCompService` continuously, safely, recoverably.

    Args:
        service: the service to drive (its pipeline may be sharded).
        locks: the lock manager shared (via its directory) by every daemon
            instance coordinating on this catalog.
        admission: optional per-database fairness quotas applied before
            lock acquisition each cycle.
        interval_s: wall-clock seconds between scheduled cycles (ignored
            for scheduling when ``schedule`` is set, but still bounds the
            scheduler-thread join at :meth:`stop`).
        schedule: optional cron-style calendar cadence for compaction
            cycles — a ``"m h dom mon dow"`` spec string (parsed by
            :class:`~repro.core.cron.CronSchedule`) or any object with a
            ``next_after(ts) -> float`` method.  Calendar-anchored: a
            cycle that overruns the next boundary skips to the following
            one instead of stacking firings.
        promoter: optional
            :class:`~repro.core.promoter.PolicyPromoter`; :meth:`start`
            attaches it to the service (policy-store seam, history ring,
            guard hooks) and drives :meth:`~repro.core.promoter.PolicyPromoter.step`
            on its own cadence thread.
        promoter_interval_s: fixed seconds between promoter steps
            (defaults to ``interval_s`` when no ``promoter_schedule``) —
            shadow evaluation is usually much rarer than compaction, so
            set this longer in production.
        promoter_schedule: cron-style cadence for promoter steps, same
            forms as ``schedule``; overrides ``promoter_interval_s``.
        spill_path: when set, :meth:`stop` spills the service's history
            ring here (and :meth:`start` restores it when the file
            exists), so ``evaluate_recent`` sees the same history across
            restarts.
        drain_timeout_s: bound on finishing in-flight shard work at
            shutdown (forwarded to the worker pools' draining close).
        tracer: optional :class:`~repro.obs.tracing.Tracer`; when given it
            is installed on the service pipeline (propagating to every
            shard) so cycles emit ``cycle → shard → observe/decide/act``
            spans, and the exporter dumps them alongside the metrics.
        obs_dir: when set, a :class:`~repro.obs.exporter.MetricsExporter`
            writes ``metrics.prom``/``metrics.jsonl``/``status.json`` (and
            trace dumps, when ``tracer`` is set) under this directory for
            the daemon's whole lifetime.
        export_interval_s: seconds between exporter flushes.

    Attributes:
        cycles_run: scheduled + manual cycles completed by this instance.
        cycle_errors: cycles that raised (logged to telemetry and
            swallowed — a daemon must outlive one bad cycle).
        promoter_steps: promoter ticks completed by this instance.
        promoter_errors: promoter ticks that raised and were survived.
    """

    def __init__(
        self,
        service: AutoCompService,
        locks: LockManager,
        admission: AdmissionController | None = None,
        interval_s: float = 60.0,
        schedule=None,
        promoter=None,
        promoter_interval_s: float | None = None,
        promoter_schedule=None,
        spill_path: str | os.PathLike | None = None,
        drain_timeout_s: float = 30.0,
        tracer=None,
        obs_dir: str | os.PathLike | None = None,
        export_interval_s: float = 5.0,
    ) -> None:
        if interval_s <= 0:
            raise ValidationError("interval_s must be positive")
        if promoter_interval_s is not None and promoter_interval_s <= 0:
            raise ValidationError("promoter_interval_s must be positive")
        if drain_timeout_s <= 0:
            raise ValidationError("drain_timeout_s must be positive")
        if export_interval_s <= 0:
            raise ValidationError("export_interval_s must be positive")
        self.service = service
        self.locks = locks
        self.admission = admission
        self.interval_s = interval_s
        self.schedule = as_schedule(schedule)
        self.promoter = promoter
        self.promoter_interval_s = (
            promoter_interval_s if promoter_interval_s is not None else interval_s
        )
        self.promoter_schedule = as_schedule(promoter_schedule)
        self.spill_path = os.fspath(spill_path) if spill_path is not None else None
        self.drain_timeout_s = drain_timeout_s
        self.tracer = tracer
        self.obs_dir = os.fspath(obs_dir) if obs_dir is not None else None
        self.export_interval_s = export_interval_s
        self.cycles_run = 0
        self.cycle_errors = 0
        self.promoter_steps = 0
        self.promoter_errors = 0
        self.reclaimed_on_start: list[str] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._promoter_thread: threading.Thread | None = None
        self._started = False
        self._cycle_mutex = threading.Lock()
        self._status_server = None
        telemetry = self._telemetry()
        if tracer is not None:
            # Both pipeline flavours accept a tracer; the sharded one
            # propagates the assignment to every shard pipeline.
            self.service.pipeline.tracer = tracer
        if telemetry is not None and self.locks.telemetry is None:
            self.locks.telemetry = telemetry
        if self.admission is not None and self.admission.telemetry is None:
            self.admission.telemetry = telemetry
        self.exporter: MetricsExporter | None = None
        if self.obs_dir is not None:
            if telemetry is None:
                raise ValidationError("obs_dir requires a pipeline with telemetry")
            self.exporter = MetricsExporter(
                telemetry,
                self.obs_dir,
                tracer=tracer,
                interval_s=export_interval_s,
                status_fn=self.status,
            )

    # --- wiring -----------------------------------------------------------------

    def _pipelines(self) -> list:
        shards = getattr(self.service.pipeline, "shards", None)
        return list(shards) if shards else [self.service.pipeline]

    def _telemetry(self):
        return getattr(self.service.pipeline, "telemetry", None)

    def _now(self) -> float:
        # Simulated deployments carry their own clock; honour it so the
        # daemon's cycles stamp the same timeline as the catalog's commits.
        try:
            return self.service._catalog().clock.now
        except ValidationError:
            return time.time()

    def _attach_catalog_locks(self) -> None:
        # Wire the compaction-audit hook onto the catalog so every replace
        # commit is stamped against the shared lock directory's state.
        try:
            catalog = self.service._catalog()
        except ValidationError:
            return
        catalog.attach_locks(self.locks)

    def _lock_gate(self, selected: list[Candidate]) -> list[Candidate]:
        admitted = []
        for candidate in selected:
            if self.locks.acquire(candidate.key):
                admitted.append(candidate)
            else:
                telemetry = self._telemetry()
                if telemetry is not None:
                    telemetry.increment("autocomp.daemon.lock_contended")
        return admitted

    def _install_gates(self) -> None:
        gates = []
        if self.admission is not None:
            gates.append(self.admission.admit)
        gates.append(self._lock_gate)
        for pipeline in self._pipelines():
            for gate in gates:
                if gate not in pipeline.act_gates:
                    pipeline.act_gates.append(gate)

    def _uninstall_gates(self) -> None:
        mine = {self._lock_gate}
        if self.admission is not None:
            mine.add(self.admission.admit)
        for pipeline in self._pipelines():
            pipeline.act_gates = [g for g in pipeline.act_gates if g not in mine]

    # --- lifecycle --------------------------------------------------------------

    def start(self) -> "AutoCompDaemon":
        """Recover, arm the gates, and start the scheduler thread.

        Startup order matters: stale locks are reclaimed *before* the
        first cycle can contend on them, spilled history is restored
        before any new cycle appends to the ring, and the heartbeat runs
        before any lock is acquired so none of ours ever looks stale.
        """
        if self._started:
            return self
        self._started = True
        self._attach_catalog_locks()
        self.reclaimed_on_start = self.locks.recover_stale()
        if self.spill_path is not None and os.path.exists(self.spill_path):
            self.service.restore_history(self.spill_path)
        if self.promoter is not None:
            # Before the first cycle: attach wires the policy-store seam
            # (and history taps) the cycle will resolve the policy through.
            self.promoter.attach(self.service)
        self._install_gates()
        self.locks.start_heartbeat()
        if self.exporter is not None:
            self.exporter.start()
        self._stop.clear()
        thread = threading.Thread(target=self._loop, name="autocomp-daemon", daemon=True)
        self._thread = thread
        thread.start()
        if self.promoter is not None:
            promoter_thread = threading.Thread(
                target=self._promoter_loop, name="autocomp-promoter", daemon=True
            )
            self._promoter_thread = promoter_thread
            promoter_thread.start()
        return self

    def _next_delay(self, schedule, interval_s: float) -> float:
        """Seconds until the next firing under the given cadence."""
        if schedule is None:
            return interval_s
        now = time.time()
        return max(schedule.next_after(now) - now, 0.0)

    def _loop(self) -> None:
        # Fixed interval: wait() starts after run_once returns —
        # completion-anchored cadence, matching the service's simulator
        # attachment semantics.  Cron: the delay is recomputed after each
        # cycle, so an overrunning cycle skips to the next calendar
        # boundary instead of stacking overdue firings.
        while not self._stop.wait(self._next_delay(self.schedule, self.interval_s)):
            self.run_once()

    def _promoter_loop(self) -> None:
        delay = lambda: self._next_delay(  # noqa: E731
            self.promoter_schedule, self.promoter_interval_s
        )
        while not self._stop.wait(delay()):
            self.run_promoter_once()

    def run_promoter_once(self) -> dict | None:
        """One promoter tick now (also the promoter-thread body).

        A raising step is counted and swallowed, like a raising cycle —
        the daemon must outlive a bad shadow evaluation.  Returns the
        promoter's decision dict, or None (no promoter / step raised).
        """
        if self.promoter is None:
            return None
        self.promoter.attach(self.service)  # idempotent for the same service
        try:
            decision = self.promoter.step(now=self._now())
        except Exception:
            self.promoter_errors += 1
            self.promoter.step_errors += 1
            telemetry = self._telemetry()
            if telemetry is not None:
                telemetry.increment("autocomp.promoter.step_errors")
            return None
        self.promoter_steps += 1
        return decision

    def run_once(self) -> object | None:
        """Run one daemon cycle now (also the scheduler-thread body).

        Admission counters reset, the lock context becomes this cycle's
        trigger id, the service cycle runs behind the act gates, and —
        win or lose — every lock this instance took is released before
        returning.  A raising cycle is counted and swallowed: the daemon
        must outlive one bad cycle.
        """
        if not self._cycle_mutex.acquire(blocking=False):
            return None  # a manual run_once raced the scheduler tick
        try:
            # Both idempotent, so manual run_once works without start().
            self._attach_catalog_locks()
            self._install_gates()
            cycle_id = f"{self.locks.owner}/cycle:{self.cycles_run}"
            self.locks.context = cycle_id
            if self.admission is not None:
                self.admission.begin_cycle()
            try:
                report = self.service.run_cycle(now=self._now())
            except Exception:
                self.cycle_errors += 1
                telemetry = self._telemetry()
                if telemetry is not None:
                    telemetry.increment("autocomp.daemon.cycle_errors")
                return None
            finally:
                self.locks.release_all()
                self.locks.context = None
            self.cycles_run += 1
            return report
        finally:
            self._cycle_mutex.release()

    # --- observability ----------------------------------------------------------

    def status(self) -> dict:
        """One JSON-safe snapshot of what the daemon is doing right now.

        Covers scheduling (running, interval, cycles run/errored, whether
        a cycle is in flight), coordination (owner id, currently held
        lock keys, overlap skips, locks reclaimed at startup), and the
        latency story (summary of every ``autocomp.hist.*`` histogram:
        count/sum/min/max/p50/p95/p99).
        """
        telemetry = self._telemetry()
        histograms: dict[str, dict] = {}
        snapshot = getattr(telemetry, "snapshot", None)
        if snapshot is not None:
            histograms = {
                name: hist.summary()
                for name, hist in snapshot()["histograms"].items()
                if name.startswith("autocomp.hist.")
            }
        status = {
            "owner": self.locks.owner,
            "running": self._started,
            "interval_s": self.interval_s,
            "schedule": str(self.schedule) if self.schedule is not None else None,
            "cycles_run": self.cycles_run,
            "cycle_errors": self.cycle_errors,
            "cycle_in_flight": self._cycle_mutex.locked(),
            "overlap_skips": getattr(self.service, "overlap_skips", 0),
            "held_locks": self.locks.held_keys(),
            "reclaimed_on_start": list(self.reclaimed_on_start),
            "histograms": histograms,
        }
        if self.promoter is not None:
            status["promoter"] = {
                **self.promoter.status(),
                "steps_run": self.promoter_steps,
                "step_errors": self.promoter_errors,
                "interval_s": self.promoter_interval_s,
                "schedule": (
                    str(self.promoter_schedule)
                    if self.promoter_schedule is not None
                    else None
                ),
            }
        return status

    def serve_status(self, host: str = "127.0.0.1", port: int = 0):
        """Start (and return) an HTTP server for ``/status`` + ``/metrics``.

        Idempotent while running; :meth:`stop` shuts the server down with
        the daemon.  Use ``port=0`` to bind an ephemeral port — the bound
        address is ``server.address`` on the returned
        :class:`~repro.obs.http.StatusServer`.
        """
        if self._status_server is not None:
            return self._status_server
        from repro.obs.http import StatusServer

        telemetry = self._telemetry()
        metrics_fn = None
        if telemetry is not None:
            metrics_fn = lambda: render_prometheus(telemetry)  # noqa: E731
        server = StatusServer(self.status, metrics_fn=metrics_fn, host=host, port=port)
        server.start()
        self._status_server = server
        return server

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop scheduling, drain, spill, release.

        With ``drain`` (the default), in-flight shard work gets up to
        ``drain_timeout_s`` to finish before worker children are joined
        and, if necessary, terminated; without it, pools are told to
        drop queued work immediately.  Either way the history ring is
        spilled (when ``spill_path`` is set), the act gates are removed,
        the heartbeat stops, and every held lock is released.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s + self.drain_timeout_s)
            self._thread = None
        if self._promoter_thread is not None:
            # The wait() wakes on the stop event; only an in-flight shadow
            # evaluation keeps the thread alive, bounded by the drain.
            self._promoter_thread.join(timeout=self.drain_timeout_s)
            self._promoter_thread = None
        close = getattr(self.service.pipeline, "close", None)
        if close is not None:
            close(timeout=self.drain_timeout_s if drain else 0.001)
        if self.spill_path is not None:
            self.service.spill_history(self.spill_path)
        self._uninstall_gates()
        self.locks.stop_heartbeat()
        self.locks.release_all()
        self._started = False
        if self._status_server is not None:
            self._status_server.stop()
            self._status_server = None
        if self.exporter is not None:
            # Last: the final export then reflects the fully-drained state.
            self.exporter.stop()

    def __enter__(self) -> "AutoCompDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # --- backfill ---------------------------------------------------------------

    def _connector_and_backend(self):
        pipeline = self._pipelines()[0]
        return pipeline.connector, pipeline.backend

    def _compact_one(self, candidate_key) -> ExecutionResult:
        """Compact one unit immediately (the optimize-after-write sequence)."""
        connector, backend = self._connector_and_backend()
        stats = connector.collect_statistics(candidate_key)
        candidate = Candidate(key=candidate_key, statistics=stats)
        pipeline = self._pipelines()[0]
        pipeline.traits.annotate_all([candidate])
        task = CompactionTask.from_candidate(candidate)
        job = backend.prepare(task)
        now = self._now()
        if job is None:
            return ExecutionResult.skipped_result(task, now)
        job.start()
        result = job.finish()
        connector.invalidate(candidate_key)
        return result

    def backfill(
        self,
        keys,
        state_dir: str | os.PathLike,
        chunk_size: int = 1,
        unit_hook=None,
    ) -> dict[str, int]:
        """Compact every key once, durably, resumably.

        Registers each key as a unit in a :class:`ResumableStateMachine`
        under ``state_dir``, demotes units a previous (killed) run left
        mid-flight, then claims and works chunks until the state machine
        is drained: per unit, take the per-table lock (contended units go
        back to ``INIT`` for whoever holds them to finish or for a later
        pass), ``RUNNING``, compact, ``COMPLETE``, release.  Keys whose
        unit is already ``COMPLETE`` are never re-compacted — the
        restart-after-``kill -9`` guarantee.

        Args:
            keys: candidate keys to compact (``str(key)`` is the unit id).
            state_dir: durable home of the unit state files.
            chunk_size: units claimed per :meth:`~ResumableStateMachine.get_next_chunk`.
            unit_hook: optional callable invoked with each unit name while
                its lock is held and its state is ``RUNNING`` (test
                instrumentation — e.g. journaling or widening a kill
                window).

        Returns:
            The state machine's final :meth:`~ResumableStateMachine.counts`.
        """
        by_unit = {str(key): key for key in keys}
        machine = ResumableStateMachine(state_dir)
        machine.register(by_unit)
        machine.recover()
        self._attach_catalog_locks()
        self.locks.recover_stale()
        stalled: set[str] = set()
        while True:
            chunk = machine.get_next_chunk(chunk_size, exclude=stalled)
            if not chunk:
                break
            for unit in chunk:
                key = by_unit.get(unit)
                if key is None:
                    # Registered by an earlier run with a key this call
                    # does not carry; leave it for the run that does.
                    machine.release(unit)
                    stalled.add(unit)
                    continue
                # The attempt number keys the lock context: a crash-retry
                # is a *new* trigger, so its (legitimate, idempotent)
                # re-compaction never reads as a double-compaction in the
                # audit — only two commits for the same attempt would.
                attempt = machine.attempts_of(unit) + 1
                if not self.locks.acquire(key, context=f"backfill:{unit}#try{attempt}"):
                    # Held elsewhere (e.g. a scheduled cycle): back to
                    # INIT for a later pass or the current holder.
                    machine.release(unit)
                    stalled.add(unit)
                    continue
                try:
                    machine.mark_running(unit)
                    self._compact_one(key)
                    if unit_hook is not None:
                        unit_hook(unit)
                    machine.mark_complete(unit)
                finally:
                    self.locks.release(key)
        return machine.counts()
