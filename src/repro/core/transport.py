"""The ``WorkerTransport`` seam: one protocol between connectors and workers.

Process-mode sharding used to reach into connectors through three ad-hoc
methods (``export_shard_work`` / ``merge_shard_result`` /
``apply_shard_delta``) gated by a ``supports_worker_observe`` boolean,
with raw ``version:`` checks sprinkled over every result.  This module
collapses that into a first-class protocol:

* :class:`WorkerTransport` — the contract the sharded pipeline drives:
  ``export`` a shard's keys into hits + a picklable spec,
  ``attach_decide`` the decide phase, ``merge`` / ``merge_decision`` a
  worker's answer back, ``release`` the spec's shared resources.
* :class:`PickleTransport` — the per-object encoding, delegating to the
  connector's existing export/merge implementations.
* :class:`ColumnarTransport` — the zero-copy encoding
  (:mod:`repro.core.columnar`): flat arrays in shared memory out, trait
  matrices and selection references back, with every miss riding the
  cache delta so process-mode caches stay as warm as thread-mode ones.
* :class:`LegacyPickleTransport` — the deprecation shim wrapping
  third-party connectors that still implement the old method trio.

Capability negotiation is two-layered: a connector advertises the
transport *kinds* it speaks (:meth:`Connector.worker_transport_kinds`)
and builds a transport on request
(:meth:`Connector.worker_transport`); the
:class:`~repro.core.workers.WorkerPool` then performs the contract
handshake (:meth:`~repro.core.workers.WorkerPool.negotiate`) verifying
the worker side runs the same spec version and transport before any spec
ships.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.core.candidates import Candidate
from repro.core.columnar import ColumnarHitPayload
from repro.core.workers import ShardDecideSpec, ShardDecision, ShardWorkSpec

#: The old connector worker-observe method trio, detected for the
#: deprecation shim.
LEGACY_WORKER_METHODS = (
    "export_shard_work",
    "merge_shard_result",
    "apply_shard_delta",
)


class WorkerTransport(abc.ABC):
    """How one shard's work crosses (or does not cross) a process boundary.

    A transport is bound to one connector and optionally to the
    :class:`~repro.core.workers.WorkerPool` executing its specs
    (:meth:`bind_pool` lets the pool track shared resources for
    crash-safe cleanup).  The sharded pipeline drives the same five calls
    whatever the encoding, which is what lets transports be negotiated
    per pool instead of hard-coded per connector.
    """

    #: The negotiated capability name (:data:`~repro.core.workers.TRANSPORT_KINDS`).
    kind: str = "pickle"

    def __init__(self, connector) -> None:
        self.connector = connector
        self._pool = None

    def bind_pool(self, pool) -> None:
        """Attach the executing pool so shared resources survive crashes."""
        self._pool = pool

    @abc.abstractmethod
    def export(
        self, keys: list, shard_index: int, traits
    ) -> tuple[list, ShardWorkSpec | None]:
        """Split ``keys`` into local cache hits and a shippable spec.

        Returns ``(placed, spec)``: ``placed`` is the generation-order
        candidate list with ``None`` holes at miss positions; ``spec``
        covers the holes in order (``None`` when everything hit).
        """

    @abc.abstractmethod
    def attach_decide(
        self,
        spec: ShardWorkSpec,
        placed: list,
        policy,
        selector,
        stats_filters,
        trait_filters,
    ) -> ShardWorkSpec:
        """Extend a spec with the worker-side decide phase."""

    @abc.abstractmethod
    def merge(self, spec: ShardWorkSpec, placed: list, result) -> list[Candidate]:
        """Fill ``placed``'s holes from a worker result; absorb its cache delta."""

    @abc.abstractmethod
    def merge_decision(self, spec: ShardWorkSpec, placed: list, result) -> ShardDecision:
        """Resolve a worker's decide answer into a decision with real candidates."""

    def release(self, spec: ShardWorkSpec | None) -> None:
        """Free any shared resources the spec holds (idempotent, crash-safe)."""

    def close(self) -> None:
        """Transport-lifetime teardown (pipeline close)."""


class PickleTransport(WorkerTransport):
    """Per-object encoding: candidates and snapshots cross as pickles.

    Delegates to the connector's export/merge/apply implementations —
    the encoding every connector with worker-observe support already
    speaks, and the fallback when columnar negotiation fails.
    """

    kind = "pickle"

    def export(self, keys, shard_index, traits):
        return self.connector.export_shard_work(keys, shard_index, traits)

    def attach_decide(self, spec, placed, policy, selector, stats_filters, trait_filters):
        return dataclasses.replace(
            spec,
            decide=ShardDecideSpec(
                policy=policy,
                selector=selector,
                stats_filters=tuple(stats_filters),
                trait_filters=tuple(trait_filters),
                hits=tuple(placed),
            ),
        )

    def merge(self, spec, placed, result):
        return self.connector.merge_shard_result(placed, result)

    def merge_decision(self, spec, placed, result):
        self.connector.apply_shard_delta(result)
        return result.decision


class LegacyPickleTransport(PickleTransport):
    """Deprecation shim over the old connector worker-observe method trio.

    Third-party connectors that implement ``export_shard_work`` /
    ``merge_shard_result`` / ``apply_shard_delta`` without overriding
    :meth:`~repro.core.connectors.Connector.worker_transport` get wrapped
    into this adapter (with a :class:`DeprecationWarning`) so they keep
    working for one release; behaviour is exactly the pickle transport's.
    """

    kind = "pickle"


class ColumnarTransport(WorkerTransport):
    """Zero-copy encoding: flat arrays in shared memory, references back.

    Export packs the miss observations into a
    :class:`~repro.core.columnar.ColumnarMissBlock` (one shared-memory
    segment per spec) via the connector's ``export_columnar`` hook; the
    worker reads the coordinator's bytes in place and answers with a
    trait matrix plus — under worker decide — selection references and a
    cache delta covering *every* miss.  The coordinator rebuilds miss
    candidates from its **retained** export arrays, so no candidate
    object crosses the boundary in either direction, and its caches end
    the cycle exactly as warm as a thread-mode cycle would leave them.

    Hit statistics ship as scalar columns plus the precomputed trait
    matrix; per-file sizes and custom statistics stay behind (hits
    carrying custom statistics fall back to object pickling).  A custom
    ``stats_filter`` that reads ``file_sizes`` therefore sees empty sizes
    on worker-side hits under this transport — select ``pickle`` when
    that matters.
    """

    kind = "columnar"

    def export(self, keys, shard_index, traits):
        placed, spec = self.connector.export_columnar(keys, shard_index, traits)
        if spec is not None and self._pool is not None:
            self._pool.track_resource(spec.snapshot)
        return placed, spec

    def attach_decide(self, spec, placed, policy, selector, stats_filters, trait_filters):
        names = tuple(spec.traits.names())
        payload = ColumnarHitPayload.try_pack(placed, names)
        if payload is not None and self._pool is not None:
            self._pool.track_resource(payload)
        decide = ShardDecideSpec(
            policy=policy,
            selector=selector,
            stats_filters=tuple(stats_filters),
            trait_filters=tuple(trait_filters),
            hits=() if payload is not None else tuple(placed),
            hits_payload=payload,
        )
        return dataclasses.replace(spec, decide=decide)

    def _rebuild(self, spec: ShardWorkSpec, result) -> list[Candidate]:
        """Miss candidates from the retained arrays + the returned matrix."""
        payload = result.columnar
        names = payload.trait_names
        statistics = spec.snapshot.statistics_batch()  # type: ignore[attr-defined]
        rows = payload.matrix.tolist()
        return [
            Candidate(key=key, statistics=stats, traits=dict(zip(names, row)))
            for key, stats, row in zip(spec.keys, statistics, rows)
        ]

    def merge(self, spec, placed, result):
        rebuilt = self._rebuild(spec, result)
        self.connector.store_worker_observations(result.cache_delta, rebuilt)
        fill = iter(rebuilt)
        return [c if c is not None else next(fill) for c in placed]

    def merge_decision(self, spec, placed, result):
        rebuilt = self._rebuild(spec, result)
        self.connector.store_worker_observations(result.cache_delta, rebuilt)
        payload = result.columnar
        selected: list[Candidate] = []
        hit_selected: list[Candidate] = []
        for (origin, position), score in zip(payload.selected, payload.scores):
            if origin == "hit":
                candidate = placed[position]
                hit_selected.append(candidate)
            else:
                candidate = rebuilt[position]
            candidate.score = score
            selected.append(candidate)
        # Selected hits are the coordinator's own cached candidates; a
        # non-reusing cache hands them over without traits (the worker
        # annotated its transient copies, which never cross back), so the
        # act phase's trait reads need them recomputed here — same
        # registry, same statistics, hence bit-identical values.
        spec.traits.annotate_all(hit_selected, only_missing=True)
        worker = result.decision
        return ShardDecision(
            after_stats_filters=worker.after_stats_filters,
            after_trait_filters=worker.after_trait_filters,
            ranked=worker.ranked,
            selected=selected,
        )

    def release(self, spec):
        if spec is None:
            return
        snapshot = spec.snapshot
        if snapshot is not None:
            snapshot.dispose()  # type: ignore[attr-defined]
            if self._pool is not None:
                self._pool.untrack_resource(snapshot)
        if spec.decide is not None and spec.decide.hits_payload is not None:
            payload = spec.decide.hits_payload
            payload.dispose()  # type: ignore[attr-defined]
            if self._pool is not None:
                self._pool.untrack_resource(payload)
