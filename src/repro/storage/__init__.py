"""Simulated distributed storage (HDFS/ADLS stand-in).

The paper's storage-health story is about *objects*, not bytes on disk: the
HDFS NameNode can only manage a bounded number of namespace objects, small
files inflate RPC traffic, and per-tenant namespace quotas get breached
(§1–§2).  This package models exactly that surface:

* :class:`~repro.storage.namenode.NameNode` — the namespace tree with object
  accounting and per-directory quotas;
* :class:`~repro.storage.filesystem.SimulatedFileSystem` — the client façade
  that records create/open/delete/list RPC traffic into telemetry.

No actual bytes are stored; file sizes are bookkeeping attributes.
"""

from repro.storage.namenode import FileInfo, NameNode
from repro.storage.filesystem import SimulatedFileSystem

__all__ = ["FileInfo", "NameNode", "SimulatedFileSystem"]
