"""NameNode: namespace tree, object accounting, and quotas.

The namespace is a flat dict of absolute POSIX-style paths.  Directories are
implicit but *counted*: HDFS charges both files and directories against a
namespace quota, and the paper's §7 weight formula
``w1 = 0.5 × (1 + UsedQuota/TotalQuota)`` depends on that accounting, so we
track it exactly.  Quotas are attached to directory subtrees (one per
database in the OpenHouse deployment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import (
    FileExistsInStorageError,
    FileNotFoundInStorageError,
    QuotaExceededError,
    ValidationError,
)
from repro.units import MiB


def normalize_path(path: str) -> str:
    """Normalise to an absolute path with no trailing slash.

    Raises:
        ValidationError: for empty or relative paths.
    """
    if not path or not path.startswith("/"):
        raise ValidationError(f"paths must be absolute, got {path!r}")
    parts = [part for part in path.split("/") if part]
    return "/" + "/".join(parts)


def parent_directories(path: str) -> list[str]:
    """All ancestor directories of ``path``, excluding root, outermost first.

    ``'/a/b/c.txt'`` -> ``['/a', '/a/b']``.
    """
    parts = [part for part in path.split("/") if part]
    return ["/" + "/".join(parts[:i]) for i in range(1, len(parts))]


@dataclass(frozen=True)
class FileInfo:
    """Metadata for one stored file."""

    path: str
    size_bytes: int
    created_at: float
    block_size: int

    @property
    def block_count(self) -> int:
        """Number of storage blocks the file occupies (at least one)."""
        if self.size_bytes <= 0:
            return 1
        return math.ceil(self.size_bytes / self.block_size)


@dataclass
class _Quota:
    limit: int
    used: int = 0


@dataclass
class NameNode:
    """Namespace metadata server.

    Attributes:
        block_size: storage block size; files below it are "small" in HDFS
            health metrics (default 128 MiB, the paper's threshold).
    """

    block_size: int = 128 * MiB
    _files: dict[str, FileInfo] = field(default_factory=dict)
    _dirs: set[str] = field(default_factory=set)
    _quotas: dict[str, _Quota] = field(default_factory=dict)
    _total_bytes: int = 0

    # --- namespace-wide accounting ---------------------------------------------

    @property
    def file_count(self) -> int:
        """Number of files in the namespace."""
        return len(self._files)

    @property
    def directory_count(self) -> int:
        """Number of (implicitly created) directories, excluding root."""
        return len(self._dirs)

    @property
    def object_count(self) -> int:
        """Files + directories: what an HDFS namespace quota charges."""
        return len(self._files) + len(self._dirs)

    @property
    def total_bytes(self) -> int:
        """Sum of all file sizes."""
        return self._total_bytes

    @property
    def total_blocks(self) -> int:
        """Sum of per-file block counts (NameNode block-map pressure)."""
        return sum(info.block_count for info in self._files.values())

    # --- file operations --------------------------------------------------------

    def create(self, path: str, size_bytes: int, created_at: float) -> FileInfo:
        """Create a file, implicitly creating (and quota-charging) parents.

        Raises:
            FileExistsInStorageError: if the path already exists.
            QuotaExceededError: if any enclosing quota would overflow; the
                namespace is left unchanged in that case.
        """
        path = normalize_path(path)
        if size_bytes < 0:
            raise ValidationError(f"file size must be >= 0, got {size_bytes}")
        if path in self._files or path in self._dirs:
            raise FileExistsInStorageError(path)
        for ancestor in parent_directories(path):
            if ancestor in self._files:
                raise FileExistsInStorageError(
                    f"{path}: ancestor {ancestor!r} is a file"
                )

        new_dirs = [d for d in parent_directories(path) if d not in self._dirs]
        self._check_quotas(path, new_dirs)
        for directory in new_dirs:
            self._dirs.add(directory)
            self._charge_quotas(directory, +1)
        info = FileInfo(
            path=path,
            size_bytes=int(size_bytes),
            created_at=float(created_at),
            block_size=self.block_size,
        )
        self._files[path] = info
        self._charge_quotas(path, +1)
        self._total_bytes += info.size_bytes
        return info

    def lookup(self, path: str) -> FileInfo:
        """Return the file at ``path``.

        Raises:
            FileNotFoundInStorageError: if absent.
        """
        path = normalize_path(path)
        info = self._files.get(path)
        if info is None:
            raise FileNotFoundInStorageError(path)
        return info

    def exists(self, path: str) -> bool:
        """Whether ``path`` names a file or directory."""
        path = normalize_path(path)
        return path in self._files or path in self._dirs

    def delete(self, path: str) -> FileInfo:
        """Delete a file (directories are never garbage-collected).

        Raises:
            FileNotFoundInStorageError: if absent.
        """
        path = normalize_path(path)
        info = self._files.pop(path, None)
        if info is None:
            raise FileNotFoundInStorageError(path)
        self._charge_quotas(path, -1)
        self._total_bytes -= info.size_bytes
        return info

    def files_under(self, prefix: str = "/") -> list[FileInfo]:
        """All files whose path lies under directory ``prefix``."""
        prefix = normalize_path(prefix)
        if prefix == "/":
            return list(self._files.values())
        needle = prefix + "/"
        return [info for path, info in self._files.items() if path.startswith(needle)]

    def directories_under(self, prefix: str = "/") -> list[str]:
        """All directories strictly under ``prefix``, sorted.

        Directories are never garbage-collected (matching HDFS), so empty
        ones keep counting against namespace quotas until removed by an
        operator.
        """
        prefix = normalize_path(prefix)
        if prefix == "/":
            return sorted(self._dirs)
        needle = prefix + "/"
        return sorted(d for d in self._dirs if d.startswith(needle))

    def count_under(self, prefix: str = "/") -> int:
        """Number of files under ``prefix`` (cheaper than materialising)."""
        prefix = normalize_path(prefix)
        if prefix == "/":
            return len(self._files)
        needle = prefix + "/"
        return sum(1 for path in self._files if path.startswith(needle))

    # --- quotas -------------------------------------------------------------------

    def set_quota(self, directory: str, max_objects: int) -> None:
        """Attach a namespace-object quota to a directory subtree.

        The quota's ``used`` count is initialised from the current contents
        of the subtree (files + directories strictly below it).
        """
        directory = normalize_path(directory)
        if max_objects <= 0:
            raise ValidationError(f"quota limit must be positive, got {max_objects}")
        needle = "/" if directory == "/" else directory + "/"
        used = sum(1 for p in self._files if p.startswith(needle))
        used += sum(1 for d in self._dirs if d.startswith(needle))
        self._quotas[directory] = _Quota(limit=int(max_objects), used=used)

    def quota_usage(self, directory: str) -> tuple[int, int]:
        """``(used, limit)`` for the quota on ``directory``.

        Raises:
            ValidationError: if no quota is set there.
        """
        directory = normalize_path(directory)
        quota = self._quotas.get(directory)
        if quota is None:
            raise ValidationError(f"no quota set on {directory!r}")
        return quota.used, quota.limit

    def quota_directories(self) -> list[str]:
        """Directories that carry a quota, sorted."""
        return sorted(self._quotas)

    def _enclosing_quotas(self, path: str) -> list[_Quota]:
        quotas = []
        for directory, quota in self._quotas.items():
            needle = "/" if directory == "/" else directory + "/"
            if path.startswith(needle):
                quotas.append(quota)
        return quotas

    def _check_quotas(self, path: str, new_dirs: list[str]) -> None:
        # Count how many new objects each quota root would absorb.
        for directory, quota in self._quotas.items():
            needle = "/" if directory == "/" else directory + "/"
            added = sum(1 for d in new_dirs if d.startswith(needle))
            if path.startswith(needle):
                added += 1
            if added and quota.used + added > quota.limit:
                raise QuotaExceededError(directory, quota.used, quota.limit)

    def _charge_quotas(self, path: str, delta: int) -> None:
        for quota in self._enclosing_quotas(path):
            quota.used += delta
