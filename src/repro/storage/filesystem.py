"""Client façade over the NameNode with RPC accounting.

Every client-visible operation increments an RPC counter in telemetry under
the ``storage.rpc.*`` namespace.  Figure 11b of the paper plots exactly this
signal — ``filesystem open() calls`` per month — before and after compaction
rollouts, so the counters here are the ground truth for that experiment.
"""

from __future__ import annotations

from typing import Iterable

from repro.simulation.clock import SimClock
from repro.simulation.telemetry import Telemetry
from repro.storage.namenode import FileInfo, NameNode
from repro.units import MiB, SMALL_FILE_THRESHOLD


class SimulatedFileSystem:
    """HDFS-like filesystem client.

    Args:
        namenode: namespace server; a fresh one is created if omitted.
        telemetry: sink for RPC counters; a private one if omitted.
        clock: source of creation timestamps; a private zero clock if omitted.
    """

    def __init__(
        self,
        namenode: NameNode | None = None,
        telemetry: Telemetry | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.namenode = namenode if namenode is not None else NameNode()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.clock = clock if clock is not None else SimClock()

    # --- RPC-counted operations ---------------------------------------------

    def create_file(self, path: str, size_bytes: int) -> FileInfo:
        """Create a file of ``size_bytes`` at ``path`` (counts a create RPC)."""
        self.telemetry.increment("storage.rpc.create")
        return self.namenode.create(path, size_bytes, created_at=self.clock.now)

    def open_file(self, path: str) -> FileInfo:
        """Open (read) a file (counts an open RPC)."""
        self.telemetry.increment("storage.rpc.open")
        return self.namenode.lookup(path)

    def record_opens(self, count: int) -> None:
        """Bulk-record ``count`` open RPCs without path lookups.

        Query execution opens every scanned file; looking each up by path
        would be pure overhead in large simulations, so the engine calls this
        with the per-query file count instead.
        """
        if count > 0:
            self.telemetry.increment("storage.rpc.open", count)

    def delete_file(self, path: str) -> FileInfo:
        """Delete a file (counts a delete RPC)."""
        self.telemetry.increment("storage.rpc.delete")
        return self.namenode.delete(path)

    def list_files(self, prefix: str = "/") -> list[FileInfo]:
        """List all files under a directory (counts a list RPC)."""
        self.telemetry.increment("storage.rpc.list")
        return self.namenode.files_under(prefix)

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists (counts a getFileInfo RPC)."""
        self.telemetry.increment("storage.rpc.stat")
        return self.namenode.exists(path)

    # --- quota management -------------------------------------------------------

    def set_quota(self, directory: str, max_objects: int) -> None:
        """Attach a namespace quota to ``directory``."""
        self.namenode.set_quota(directory, max_objects)

    def quota_usage(self, directory: str) -> tuple[int, int]:
        """``(used, limit)`` for the quota on ``directory``."""
        return self.namenode.quota_usage(directory)

    def quota_utilization(self, directory: str) -> float:
        """``UsedQuota / TotalQuota`` for ``directory`` — the §7 weight input."""
        used, limit = self.namenode.quota_usage(directory)
        return used / limit

    # --- health metrics (not RPC-counted; these are operator-side reads) ---------

    def file_count(self, prefix: str = "/") -> int:
        """Number of files under ``prefix``."""
        return self.namenode.count_under(prefix)

    def total_bytes(self) -> int:
        """Total stored bytes."""
        return self.namenode.total_bytes

    def small_file_count(
        self, prefix: str = "/", threshold: int = SMALL_FILE_THRESHOLD
    ) -> int:
        """Files under ``prefix`` smaller than ``threshold`` (default 128 MiB)."""
        return sum(
            1 for info in self.namenode.files_under(prefix) if info.size_bytes < threshold
        )

    def small_file_fraction(
        self, prefix: str = "/", threshold: int = SMALL_FILE_THRESHOLD
    ) -> float:
        """Fraction of files under ``prefix`` below ``threshold`` (0 if empty)."""
        files = self.namenode.files_under(prefix)
        if not files:
            return 0.0
        small = sum(1 for info in files if info.size_bytes < threshold)
        return small / len(files)

    def size_histogram(
        self, bucket_edges_mib: Iterable[int], prefix: str = "/"
    ) -> dict[str, int]:
        """File counts per size bucket, for Figure 1/2-style distributions.

        Args:
            bucket_edges_mib: ascending bucket upper edges in MiB; a final
                overflow bucket is added automatically.
            prefix: directory to restrict to.

        Returns:
            Ordered mapping from bucket label (``'<16MiB'``, ``'16-32MiB'``,
            ``'>=512MiB'``) to file count.
        """
        edges = sorted(int(e) for e in bucket_edges_mib)
        if not edges:
            raise ValueError("need at least one bucket edge")
        labels = [f"<{edges[0]}MiB"]
        labels += [f"{lo}-{hi}MiB" for lo, hi in zip(edges, edges[1:])]
        labels.append(f">={edges[-1]}MiB")
        counts = dict.fromkeys(labels, 0)
        for info in self.namenode.files_under(prefix):
            size_mib = info.size_bytes / MiB
            for edge, label in zip(edges, labels):
                if size_mib < edge:
                    counts[label] += 1
                    break
            else:
                counts[labels[-1]] += 1
        return counts
