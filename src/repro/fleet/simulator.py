"""Month-scale fleet simulation with pluggable compaction strategies.

Reproduces the §7 deployment narrative: months of no compaction, then the
ad-hoc *manual* strategy (a fixed set of ~100 susceptible tables compacted
daily), then AutoComp — first with a conservative fixed k, later with
dynamic (budget-based) k.  The simulator steps one day at a time, runs the
active strategy, and records the telemetry series behind Figures 2, 10
and 11:

* ``fleet.total_files``, ``fleet.files_below_128``, ``fleet.deployment_size``;
* ``fleet.files_reduced``, ``fleet.gbhr`` (per day, aggregated weekly in
  Figure 10a/10b);
* ``fleet.files_scanned``, ``fleet.query_time``, ``fleet.query_cost``,
  ``fleet.open_calls`` (Figure 11);
* per-compaction estimator accuracy pairs for the §7 model-accuracy study.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import AutoCompPipeline
from repro.core.ranking import Objective, QuotaAwareWeightedSumPolicy, WeightedSumPolicy
from repro.core.selection import BudgetSelector, Selector, TopKSelector
from repro.core.scheduling import SequentialScheduler
from repro.core.sharding import ShardedPipeline
from repro.core.statscache import IndexedCandidateCache
from repro.core.traits import ComputeCostTrait, FileCountReductionTrait, TraitRegistry
from repro.errors import ValidationError
from repro.fleet.connectors import FleetBackend, FleetConnector
from repro.fleet.model import FleetConfig, FleetModel
from repro.simulation.taps import TapBus
from repro.simulation.telemetry import Telemetry
from repro.units import DAY


@dataclass
class DailyCompactionOutcome:
    """Aggregate of one day's compaction activity."""

    day: int
    tables_compacted: int = 0
    files_reduced: int = 0
    gbhr: float = 0.0
    estimate_pairs: list[tuple[float, float, float, float]] = field(default_factory=list)
    """``(est_reduction, actual_reduction, est_gbhr, actual_gbhr)`` tuples."""


class CompactionStrategy(abc.ABC):
    """A daily compaction decision procedure over the fleet."""

    name: str = "strategy"

    @abc.abstractmethod
    def run_day(self, model: FleetModel, day: int) -> DailyCompactionOutcome:
        """Execute one day's compaction."""


class NoCompactionStrategy(CompactionStrategy):
    """The do-nothing baseline."""

    name = "none"

    def run_day(self, model: FleetModel, day: int) -> DailyCompactionOutcome:
        return DailyCompactionOutcome(day=day)


class ManualCompactionStrategy(CompactionStrategy):
    """LinkedIn's initial mitigation: a fixed top-k list compacted daily.

    The table set is chosen *once*, when the strategy first runs, by
    current small-file count — exactly the "susceptibility to high
    fragmentation" selection of §7 — and never revisited, which is why its
    returns diminish once those tables are clean.
    """

    name = "manual"

    def __init__(self, k: int = 100) -> None:
        if k <= 0:
            raise ValidationError("k must be positive")
        self.k = k
        self._chosen: list[int] | None = None

    def run_day(self, model: FleetModel, day: int) -> DailyCompactionOutcome:
        if self._chosen is None:
            small = model.small_files_per_table()
            order = np.argsort(-small, kind="stable")
            self._chosen = [int(i) for i in order[: self.k]]
        outcome = DailyCompactionOutcome(day=day)
        for index in self._chosen:
            application = model.compact(index)
            if application.actual_reduction <= 0:
                continue
            outcome.tables_compacted += 1
            outcome.files_reduced += application.actual_reduction
            outcome.gbhr += application.actual_gbhr
            outcome.estimate_pairs.append(
                (
                    application.estimated_reduction,
                    application.actual_reduction,
                    application.estimated_gbhr,
                    application.actual_gbhr,
                )
            )
        return outcome


def _fleet_decision_components(
    model: FleetModel,
    k: int | None,
    budget_gbhr: float | None,
    quota_aware: bool,
) -> tuple[TraitRegistry, WeightedSumPolicy | QuotaAwareWeightedSumPolicy, Selector]:
    """Traits, policy and selector shared by the fleet strategies."""
    if k is None and budget_gbhr is None:
        raise ValidationError("provide k or budget_gbhr")
    traits = TraitRegistry(
        [
            FileCountReductionTrait(),
            ComputeCostTrait(
                executor_memory_gb=model.config.executor_memory_gb,
                rewrite_bytes_per_hour=model.config.rewrite_bytes_per_hour,
            ),
        ]
    )
    if quota_aware:
        policy = QuotaAwareWeightedSumPolicy()
    else:
        policy = WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.7, maximize=True),
                Objective("compute_cost_gbhr", 0.3, maximize=False),
            ]
        )
    selector: Selector
    if budget_gbhr is not None:
        selector = BudgetSelector(budget_gbhr)
    else:
        selector = TopKSelector(k if k is not None else 10)
    return traits, policy, selector


def _outcome_from_results(day: int, results) -> DailyCompactionOutcome:
    """Aggregate act-phase results into one day's outcome."""
    outcome = DailyCompactionOutcome(day=day)
    for result in results:
        if not result.success:
            continue
        outcome.tables_compacted += 1
        outcome.files_reduced += result.actual_reduction
        outcome.gbhr += result.gbhr
        outcome.estimate_pairs.append(
            (
                result.estimated_reduction,
                float(result.actual_reduction),
                result.estimated_gbhr,
                result.gbhr,
            )
        )
    return outcome


class AutoCompStrategy(CompactionStrategy):
    """AutoComp over the fleet: the real pipeline on the fleet connector.

    Args:
        model: fleet state.
        k: fixed top-k selection (the conservative §7 rollout, k≈10).
        budget_gbhr: dynamic-k budget selection (the week-22 transition);
            overrides ``k`` when given.
        quota_aware: use the §7 quota-aware weights instead of fixed
            0.7/0.3 MOOP weights.
    """

    name = "autocomp"

    def __init__(
        self,
        model: FleetModel,
        k: int | None = 10,
        budget_gbhr: float | None = None,
        quota_aware: bool = True,
    ) -> None:
        traits, policy, selector = _fleet_decision_components(
            model, k, budget_gbhr, quota_aware
        )
        self.pipeline = AutoCompPipeline(
            connector=FleetConnector(model, min_small_files=2),
            backend=FleetBackend(model),
            traits=traits,
            policy=policy,
            selector=selector,
            scheduler=SequentialScheduler(),
            generation="table",
        )

    def run_day(self, model: FleetModel, day: int) -> DailyCompactionOutcome:
        report = self.pipeline.run_cycle(now=float(day) * DAY)
        return _outcome_from_results(day, report.results)


class ShardedAutoCompStrategy(CompactionStrategy):
    """AutoComp behind the scale-out control plane.

    The same decision components as :class:`AutoCompStrategy`, but candidate
    keys are consistent-hashed across ``n_shards`` per-shard pipelines whose
    connectors carry incremental-observation caches — daily cycles observe
    only the tables that wrote or were compacted since the last cycle
    (version-token invalidation), with a TTL bounding quota staleness.

    Args:
        model: fleet state.
        n_shards: number of per-shard pipelines.
        k / budget_gbhr / quota_aware: as for :class:`AutoCompStrategy`.
        stats_cache_ttl_s: TTL fallback for cached statistics.
        version_slack: opt-in approximate staleness tolerance (default 0 =
            exact): cached observations of tables whose ``stats_version``
            advanced by at most this many versions are served without
            re-observation, trading a bounded statistics error for cache
            hits on trickle-writing tables.
        selection: ``"global"`` (exactly the unsharded decisions) or
            ``"local"`` (split budgets, fully independent shards).
        workers: shard execution mode — ``"threads"`` (default),
            ``"processes"`` (true multi-core observe/orient via picklable
            shard work; see :mod:`repro.core.workers`) or ``"auto"``
            (per-cycle adaptive choice from observed observe walls).  All
            produce byte-identical cycle reports.
        worker_decide: ship the decide phase into process workers for
            local selection (see
            :class:`~repro.core.sharding.ShardedPipeline`).
        transport: worker-transport kind for process cycles (``None``
            negotiates; the fleet connector speaks both ``"columnar"``
            and ``"pickle"`` — see
            :class:`~repro.core.sharding.ShardedPipeline`).
        max_workers: worker-pool width (see
            :class:`~repro.core.sharding.ShardedPipeline`).
        observe_cost: per-candidate CPU units emulating real statistics-
            collection cost (see
            :attr:`~repro.fleet.connectors.FleetConnector.observe_cost`).
        telemetry: fleet-level metric sink.

    The strategy owns a persistent worker pool; call :meth:`close` (or use
    the strategy as a context manager) when done with it.
    """

    name = "autocomp-sharded"

    def __init__(
        self,
        model: FleetModel,
        n_shards: int = 4,
        k: int | None = 10,
        budget_gbhr: float | None = None,
        quota_aware: bool = True,
        stats_cache_ttl_s: float = 7 * DAY,
        version_slack: int = 0,
        selection: str = "global",
        workers: str = "threads",
        worker_decide: bool | None = None,
        transport: str | None = None,
        max_workers: int | None = None,
        observe_cost: int = 0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValidationError("n_shards must be positive")
        traits, policy, selector = _fleet_decision_components(
            model, k, budget_gbhr, quota_aware
        )
        # One cache shared by every shard: consistent hashing partitions
        # the table-index space disjointly, so shards never contend for a
        # slot, and a single slot table keeps the working set compact.
        cache = IndexedCandidateCache(ttl_s=stats_cache_ttl_s, version_slack=version_slack)
        self.caches = [cache]
        shards = [
            AutoCompPipeline(
                connector=FleetConnector(
                    model,
                    min_small_files=2,
                    stats_cache=cache,
                    observe_cost=observe_cost,
                ),
                backend=FleetBackend(model),
                traits=traits,
                policy=policy,
                selector=selector,
                scheduler=SequentialScheduler(),
                generation="table",
            )
            for _ in range(n_shards)
        ]
        self.pipeline = ShardedPipeline(
            shards,
            selection=selection,
            # The fleet policies normalise over the candidate set and sort
            # into a key-tie-broken total order, so merge order is free.
            merge_order="any",
            workers=workers,
            worker_decide=worker_decide,
            transport=transport,
            max_workers=max_workers,
            telemetry=telemetry,
        )

    def run_day(self, model: FleetModel, day: int) -> DailyCompactionOutcome:
        sharded = self.pipeline.run_cycle(now=float(day) * DAY)
        return _outcome_from_results(day, sharded.report.results)

    def close(self) -> None:
        """Shut the pipeline's worker pool down."""
        self.pipeline.close()

    def __enter__(self) -> "ShardedAutoCompStrategy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FleetSimulator:
    """Day-stepped fleet simulation with a strategy schedule.

    Args:
        config: fleet parameters.
        telemetry: metric sink (a private one if omitted).

    The strategy schedule maps a start day to a strategy; the most recent
    entry at or before the current day is active.
    """

    def __init__(
        self,
        config: FleetConfig,
        telemetry: Telemetry | None = None,
        taps: TapBus | None = None,
    ) -> None:
        self.config = config
        self.taps = taps
        self.model = FleetModel(config, taps=taps)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.schedule: dict[int, CompactionStrategy] = {0: NoCompactionStrategy()}
        self.outcomes: list[DailyCompactionOutcome] = []

    def set_strategy(self, start_day: int, strategy: CompactionStrategy) -> None:
        """Activate ``strategy`` from ``start_day`` onwards."""
        if start_day < 0:
            raise ValidationError("start_day must be >= 0")
        self.schedule[start_day] = strategy

    def active_strategy(self, day: int) -> CompactionStrategy:
        """The strategy in force on ``day``."""
        eligible = [d for d in self.schedule if d <= day]
        return self.schedule[max(eligible)]

    def run_days(self, days: int, onboard_monthly: bool = True) -> None:
        """Advance the simulation ``days`` days.

        Each day: onboarding (on 30-day boundaries), organic fragmentation
        growth, the active strategy's compactions, then telemetry.
        """
        if days <= 0:
            raise ValidationError("days must be positive")
        for _ in range(days):
            day = self.model.day
            if onboard_monthly and day > 0 and day % 30 == 0:
                self.model.onboard(self.config.onboarded_per_month)
            self.model.step_day()
            strategy = self.active_strategy(day)
            outcome = strategy.run_day(self.model, day)
            self.outcomes.append(outcome)
            self._record(day, strategy, outcome)
            if self.taps is not None and self.taps.has_subscribers("cycle"):
                # Stamped with the post-step model clock (like compact
                # events) so trace event days stay non-decreasing; the
                # outcome itself belongs to logical day ``model.day - 1``.
                self.taps.publish(
                    "cycle",
                    {
                        "day": self.model.day,
                        "strategy": strategy.name,
                        "tables_compacted": outcome.tables_compacted,
                        "files_reduced": outcome.files_reduced,
                        "gbhr": outcome.gbhr,
                    },
                )

    def _record(
        self, day: int, strategy: CompactionStrategy, outcome: DailyCompactionOutcome
    ) -> None:
        t = float(day) * DAY
        telemetry = self.telemetry
        model = self.model
        telemetry.record("fleet.total_files", t, model.total_files)
        telemetry.record("fleet.files_below_128", t, model.files_below_threshold)
        telemetry.record("fleet.small_file_fraction", t, model.small_file_fraction)
        telemetry.record("fleet.deployment_size", t, model.count)
        telemetry.record("fleet.files_reduced", t, outcome.files_reduced)
        telemetry.record("fleet.gbhr", t, outcome.gbhr)
        telemetry.record("fleet.tables_compacted", t, outcome.tables_compacted)
        scan = model.daily_scan_metrics()
        telemetry.record("fleet.files_scanned", t, scan["files_scanned"])
        telemetry.record("fleet.query_time", t, scan["query_time"])
        telemetry.record("fleet.query_cost", t, scan["query_cost_gbhr"])
        telemetry.record("fleet.open_calls", t, scan["open_calls"])

    # --- analysis helpers -------------------------------------------------------

    def weekly_totals(self, series_name: str) -> list[float]:
        """Sum a daily series into 7-day buckets."""
        series = self.telemetry.series(series_name)
        return [value for _, value in series.bucket(7 * DAY, agg="sum")]

    def estimator_accuracy(self) -> dict[str, float]:
        """Mean relative estimator errors across all compactions (§7).

        Returns:
            ``reduction_overestimate`` — mean (est − actual)/actual for
            file-count reduction (paper: ~+28%), and
            ``cost_underestimate`` — mean (actual − est)/est for compute
            cost (paper: ~+19%).
        """
        reduction_errors = []
        cost_errors = []
        for outcome in self.outcomes:
            for est_red, act_red, est_cost, act_cost in outcome.estimate_pairs:
                if act_red > 0:
                    reduction_errors.append((est_red - act_red) / act_red)
                if est_cost > 0:
                    cost_errors.append((act_cost - est_cost) / est_cost)
        return {
            "reduction_overestimate": float(np.mean(reduction_errors))
            if reduction_errors
            else 0.0,
            "cost_underestimate": float(np.mean(cost_errors)) if cost_errors else 0.0,
        }
