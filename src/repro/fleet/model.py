"""Vectorised fleet state and fragmentation processes.

Each table's live files are summarised in three size classes:

* **tiny** — below 128 MiB (the paper's small-file reporting threshold);
* **mid** — 128 MiB to the 512 MiB target;
* **large** — at or above target.

The ΔF_c estimator counts tiny+mid (files below target); the storage-health
metric of Figure 2 is the tiny share.  Tables belong to archetypes that
mirror §2's populations: centrally managed raw ingestion (well-sized, high
volume), hot derived tables (trickle/CDC writers — fast tiny-file growth),
batch derived tables (bursty moderate growth), and static tables.

Compaction applies the *partition-boundary* reality of §7: only a fraction
of a table's small files can actually merge (they must share partitions),
so realised reduction falls short of the table-level estimate (~28% in the
paper), while realised compute cost overshoots the GBHr estimate (~19%).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.simulation.rng import derive_rng
from repro.simulation.taps import TapBus
from repro.units import DAY, GiB, MiB, SMALL_FILE_THRESHOLD, DEFAULT_TARGET_FILE_SIZE


class Archetype(enum.IntEnum):
    """Table population archetypes (§2's workload mix)."""

    RAW_INGESTION = 0
    DERIVED_HOT = 1
    DERIVED_BATCH = 2
    STATIC = 3


#: Default archetype mix (fractions of onboarded tables).
DEFAULT_ARCHETYPE_MIX: dict[Archetype, float] = {
    Archetype.RAW_INGESTION: 0.15,
    Archetype.DERIVED_HOT: 0.30,
    Archetype.DERIVED_BATCH: 0.35,
    Archetype.STATIC: 0.20,
}

#: Per-archetype (tiny files/day, mid files/day, large files/day) growth means.
_GROWTH_RATES: dict[Archetype, tuple[float, float, float]] = {
    Archetype.RAW_INGESTION: (0.5, 0.3, 2.0),
    Archetype.DERIVED_HOT: (14.0, 1.2, 0.1),
    Archetype.DERIVED_BATCH: (5.0, 0.8, 0.3),
    Archetype.STATIC: (0.15, 0.02, 0.0),
}

#: Per-archetype daily read frequency (scans/day) means.
_READ_FREQ: dict[Archetype, float] = {
    Archetype.RAW_INGESTION: 6.0,
    Archetype.DERIVED_HOT: 10.0,
    Archetype.DERIVED_BATCH: 4.0,
    Archetype.STATIC: 0.5,
}

#: Mean sizes of newly written files per class.
TINY_MEAN_BYTES = 24 * MiB
MID_MEAN_BYTES = 256 * MiB
LARGE_MEAN_BYTES = 512 * MiB


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of a fleet simulation."""

    #: Tables live at day 0.
    initial_tables: int = 2000
    #: Tables onboarded per 30-day month (deployment growth, Figure 10c).
    onboarded_per_month: int = 250
    #: Tenant databases tables are spread across.
    databases: int = 40
    #: Namespace-object quota per database (drives §7's w₁ weight).
    quota_objects_per_db: int = 400_000
    #: Compaction target size.
    target_file_size: int = DEFAULT_TARGET_FILE_SIZE
    #: Memory term of the GBHr estimator.
    executor_memory_gb: float = 192.0
    #: Throughput term of the GBHr estimator (768 GiB rewritten per hour).
    rewrite_bytes_per_hour: float = 768 * GiB
    #: Mean fraction of a table's small files that actually merge
    #: (partition-boundary efficiency; yields the ~28% overestimate).
    merge_efficiency_mean: float = 0.88
    merge_efficiency_sd: float = 0.08
    #: Log-normal multiplier on realised cost (yields the ~19% underestimate).
    cost_noise_mu: float = 0.17
    cost_noise_sigma: float = 0.10
    #: Root seed.
    seed: int = 123

    def __post_init__(self) -> None:
        if self.initial_tables <= 0:
            raise ValidationError("initial_tables must be positive")
        if self.databases <= 0:
            raise ValidationError("databases must be positive")
        if not 0 < self.merge_efficiency_mean <= 1:
            raise ValidationError("merge_efficiency_mean must be in (0, 1]")


@dataclass(frozen=True)
class ObserveView:
    """Per-day observation columns, unboxed to plain Python lists.

    Shared by every shard of the scale-out control plane within one cycle:
    the vectorised derivations and the numpy→Python conversion happen once
    per :attr:`FleetModel.mutation_tick`, so per-shard batch observation is
    pure list indexing with no per-call numpy overhead.
    """

    files: list[int]
    small_files: list[int]
    small_bytes: list[int]
    total_bytes: list[int]
    created_s: list[float]
    modified_s: list[float]
    quota: list[float]
    versions: list[int]

    #: Column names, in declaration order (what :meth:`take` copies).
    COLUMNS = (
        "files",
        "small_files",
        "small_bytes",
        "total_bytes",
        "created_s",
        "modified_s",
        "quota",
        "versions",
    )

    def take(self, indices: list[int]) -> "ObserveView":
        """The view restricted to ``indices``, row for row.

        Everything inside is a plain Python list, so the result is a
        picklable connector snapshot — exactly what a
        :class:`~repro.core.workers.ShardWorkSpec` ships to a shard worker
        process: only the dirty slice crosses the boundary, never the
        whole fleet.
        """
        picked = {}
        for name in self.COLUMNS:
            column = getattr(self, name)
            picked[name] = [column[i] for i in indices]
        return ObserveView(**picked)


#: Per-table state columns, in canonical order.  One name per array attribute
#: of :class:`FleetModel`; capacity growth, trace capture
#: (:mod:`repro.replay`) and snapshot/restore all iterate this list so the
#: three can never drift apart.
TABLE_COLUMNS = (
    "archetype",
    "database",
    "created_day",
    "last_write_day",
    "tiny_files",
    "mid_files",
    "large_files",
    "tiny_bytes",
    "mid_bytes",
    "large_bytes",
    "growth_tiny",
    "growth_mid",
    "growth_large",
    "read_freq",
    "merge_efficiency",
    "stats_version",
)

#: The per-class file/byte state rewritten by a compaction (the payload of a
#: recorded ``compact`` event, and the input of :meth:`FleetModel.apply_compact_state`).
COMPACT_STATE_FIELDS = (
    "tiny_files",
    "mid_files",
    "large_files",
    "tiny_bytes",
    "mid_bytes",
    "large_bytes",
    "stats_version",
)


@dataclass
class FleetSnapshot:
    """A restorable copy of a :class:`FleetModel`'s full state.

    Columns are defensive copies, so one snapshot supports any number of
    :meth:`FleetModel.restore` calls — the Policy Lab restores the same
    snapshot once per policy variant it evaluates.
    """

    count: int
    day: int
    mutation_tick: int
    columns: dict[str, np.ndarray]
    rng_state: dict


@dataclass
class CompactionApplication:
    """Realised outcome of compacting one fleet table."""

    table_index: int
    estimated_reduction: float
    actual_reduction: int
    estimated_gbhr: float
    actual_gbhr: float
    rewritten_bytes: int


class FleetModel:
    """Numpy-backed state of every table in the fleet."""

    def __init__(
        self,
        config: FleetConfig,
        taps: TapBus | None = None,
        onboard_initial: bool = True,
    ) -> None:
        """Build a fleet.

        Args:
            config: fleet parameters.
            taps: optional event bus; when given, the model publishes
                ``onboard`` / ``day`` / ``compact`` events carrying the full
                realised state change (what a
                :class:`~repro.replay.recorder.TraceRecorder` serializes).
            onboard_initial: onboard ``config.initial_tables`` immediately
                (the normal path).  Trace replay passes False and rebuilds
                the population from recorded ``onboard`` events instead.
        """
        self.config = config
        self.taps = taps
        self._rng = derive_rng(config.seed, "fleet-model")
        capacity = config.initial_tables
        self.count = 0
        self.day = 0

        self.archetype = np.zeros(capacity, dtype=np.int64)
        self.database = np.zeros(capacity, dtype=np.int64)
        self.created_day = np.zeros(capacity, dtype=np.int64)
        self.last_write_day = np.zeros(capacity, dtype=np.int64)
        self.tiny_files = np.zeros(capacity, dtype=np.int64)
        self.mid_files = np.zeros(capacity, dtype=np.int64)
        self.large_files = np.zeros(capacity, dtype=np.int64)
        self.tiny_bytes = np.zeros(capacity, dtype=np.int64)
        self.mid_bytes = np.zeros(capacity, dtype=np.int64)
        self.large_bytes = np.zeros(capacity, dtype=np.int64)
        self.growth_tiny = np.zeros(capacity, dtype=np.float64)
        self.growth_mid = np.zeros(capacity, dtype=np.float64)
        self.growth_large = np.zeros(capacity, dtype=np.float64)
        self.read_freq = np.zeros(capacity, dtype=np.float64)
        self.merge_efficiency = np.zeros(capacity, dtype=np.float64)
        #: Per-table change counter: bumped on every write day and every
        #: compaction.  Connectors use it as a freshness token for the
        #: incremental-observation cache (O(dirty) observe cycles).
        self.stats_version = np.zeros(capacity, dtype=np.int64)
        #: Whole-model mutation counter (any step/compact/onboard); keys
        #: the memoised :meth:`observe_view`.
        self.mutation_tick = 0
        self._observe_view: tuple[int, ObserveView] | None = None

        if onboard_initial:
            self.onboard(config.initial_tables)

    # --- population -----------------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        capacity = len(self.archetype)
        if self.count + extra <= capacity:
            return
        new_capacity = max(capacity * 2, self.count + extra)
        for name in TABLE_COLUMNS:
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self.count] = old[: self.count]
            setattr(self, name, grown)

    def onboard(self, n: int) -> None:
        """Onboard ``n`` new tables with archetype-mixed initial state."""
        if n <= 0:
            return
        self._ensure_capacity(n)
        rng = self._rng
        start, end = self.count, self.count + n
        kinds = list(DEFAULT_ARCHETYPE_MIX)
        probs = np.array([DEFAULT_ARCHETYPE_MIX[k] for k in kinds])
        chosen = rng.choice(len(kinds), size=n, p=probs / probs.sum())
        self.archetype[start:end] = [int(kinds[c]) for c in chosen]
        self.database[start:end] = rng.integers(0, self.config.databases, size=n)
        self.created_day[start:end] = self.day
        self.last_write_day[start:end] = self.day

        for i in range(start, end):
            kind = Archetype(self.archetype[i])
            g_tiny, g_mid, g_large = _GROWTH_RATES[kind]
            # Heavy-tailed per-table scale: production fragmentation is
            # highly skewed — a few hundred tables hold most small files
            # (the paper's worst offenders averaged 42M files each).
            scale = float(rng.lognormal(0.0, 1.5))
            self.growth_tiny[i] = g_tiny * scale
            self.growth_mid[i] = g_mid * scale
            self.growth_large[i] = g_large * scale
            self.read_freq[i] = _READ_FREQ[kind] * float(rng.lognormal(0.0, 0.4))
            self.merge_efficiency[i] = float(
                np.clip(
                    rng.normal(
                        self.config.merge_efficiency_mean,
                        self.config.merge_efficiency_sd,
                    ),
                    0.3,
                    1.0,
                )
            )
            # Existing tables arrive with history: ~60 days of accumulation.
            backlog = rng.uniform(10, 90)
            self.tiny_files[i] = int(self.growth_tiny[i] * backlog)
            self.mid_files[i] = int(self.growth_mid[i] * backlog)
            self.large_files[i] = int(self.growth_large[i] * backlog) + 1
        count = end - start
        self.tiny_bytes[start:end] = (
            self.tiny_files[start:end]
            * rng.uniform(0.5, 1.5, size=count)
            * TINY_MEAN_BYTES
        ).astype(np.int64)
        self.mid_bytes[start:end] = (
            self.mid_files[start:end]
            * rng.uniform(0.8, 1.2, size=count)
            * MID_MEAN_BYTES
        ).astype(np.int64)
        self.large_bytes[start:end] = (
            self.large_files[start:end]
            * rng.uniform(0.9, 1.3, size=count)
            * LARGE_MEAN_BYTES
        ).astype(np.int64)
        self.count = end
        self.mutation_tick += 1
        if self.taps is not None and self.taps.has_subscribers("onboard"):
            self.taps.publish(
                "onboard",
                {
                    "day": self.day,
                    "start": start,
                    "count": n,
                    "columns": {
                        name: getattr(self, name)[start:end].tolist()
                        for name in TABLE_COLUMNS
                    },
                },
            )

    def load_tables(self, columns: dict[str, list]) -> None:
        """Append tables with explicit per-table state (trace replay).

        The deterministic counterpart of :meth:`onboard`: instead of
        sampling archetypes and backlogs, every :data:`TABLE_COLUMNS` value
        is supplied by the caller — typically from a recorded ``onboard``
        event — so the resulting population is bit-identical to the one the
        source run drew.

        Args:
            columns: name → per-table values; all :data:`TABLE_COLUMNS`
                keys are required and must share one length.
        """
        missing = [name for name in TABLE_COLUMNS if name not in columns]
        if missing:
            raise ValidationError(f"load_tables missing columns: {missing}")
        lengths = {len(columns[name]) for name in TABLE_COLUMNS}
        if len(lengths) != 1:
            raise ValidationError(f"load_tables column lengths differ: {sorted(lengths)}")
        n = lengths.pop()
        if n == 0:
            return
        self._ensure_capacity(n)
        start, end = self.count, self.count + n
        for name in TABLE_COLUMNS:
            array = getattr(self, name)
            array[start:end] = np.asarray(columns[name], dtype=array.dtype)
        self.count = end
        self.mutation_tick += 1

    # --- daily dynamics -------------------------------------------------------------

    def step_day(self) -> None:
        """Advance one day: every table accumulates new files."""
        n = self.count
        rng = self._rng
        new_tiny = rng.poisson(self.growth_tiny[:n])
        new_mid = rng.poisson(self.growth_mid[:n])
        new_large = rng.poisson(self.growth_large[:n])
        self._grow(new_tiny, new_mid, new_large)

    def apply_growth(
        self,
        indices: list[int],
        new_tiny: list[int],
        new_mid: list[int],
        new_large: list[int],
    ) -> None:
        """Apply one recorded day of growth (trace replay).

        The deterministic counterpart of :meth:`step_day`: instead of
        Poisson draws, the per-table file deltas come from a recorded
        ``day`` event (sparse — only tables that wrote appear).  Byte
        deltas, write stamps and version bumps are derived exactly as
        :meth:`step_day` derives them, so replayed state matches the
        source run bit for bit.
        """
        n = self.count
        tiny = np.zeros(n, dtype=np.int64)
        mid = np.zeros(n, dtype=np.int64)
        large = np.zeros(n, dtype=np.int64)
        if indices:
            if max(indices) >= n or min(indices) < 0:
                raise ValidationError("growth index out of range for replayed fleet")
            if not len(indices) == len(new_tiny) == len(new_mid) == len(new_large):
                # Guard against numpy's silent length-1 broadcast on fancy
                # assignment: a truncated event must fail, not fan out.
                raise ValidationError("growth delta lists must match indices length")
            tiny[indices] = new_tiny
            mid[indices] = new_mid
            large[indices] = new_large
        self._grow(tiny, mid, large)

    def _grow(self, new_tiny, new_mid, new_large) -> None:
        """One day's worth of per-table file deltas (shared step/replay path)."""
        n = self.count
        self.tiny_files[:n] += new_tiny
        self.mid_files[:n] += new_mid
        self.large_files[:n] += new_large
        self.tiny_bytes[:n] += (new_tiny * TINY_MEAN_BYTES).astype(np.int64)
        self.mid_bytes[:n] += (new_mid * MID_MEAN_BYTES).astype(np.int64)
        self.large_bytes[:n] += (new_large * LARGE_MEAN_BYTES).astype(np.int64)
        totals = new_tiny + new_mid + new_large
        wrote = totals > 0
        self.last_write_day[:n][wrote] = self.day
        self.stats_version[:n][wrote] += 1
        self.mutation_tick += 1
        if self.taps is not None and self.taps.has_subscribers("day"):
            written = np.nonzero(wrote)[0]
            self.taps.publish(
                "day",
                {
                    "day": self.day,
                    "indices": written.tolist(),
                    "tiny": new_tiny[written].tolist(),
                    "mid": new_mid[written].tolist(),
                    "large": new_large[written].tolist(),
                },
            )
        self.day += 1

    # --- aggregate metrics ----------------------------------------------------------

    @property
    def total_files(self) -> int:
        """All live data files in the fleet."""
        n = self.count
        return int(
            self.tiny_files[:n].sum()
            + self.mid_files[:n].sum()
            + self.large_files[:n].sum()
        )

    @property
    def files_below_threshold(self) -> int:
        """Files below 128 MiB (the Figure 2 reporting metric)."""
        return int(self.tiny_files[: self.count].sum())

    @property
    def small_file_fraction(self) -> float:
        """Share of files below 128 MiB."""
        total = self.total_files
        return self.files_below_threshold / total if total else 0.0

    def small_files_per_table(self) -> np.ndarray:
        """Files below target per table (the ΔF_c estimator input)."""
        n = self.count
        return self.tiny_files[:n] + self.mid_files[:n]

    def small_bytes_per_table(self) -> np.ndarray:
        """Bytes below target per table (the GBHr estimator input)."""
        n = self.count
        return self.tiny_bytes[:n] + self.mid_bytes[:n]

    def files_per_table(self) -> np.ndarray:
        """Total live files per table."""
        n = self.count
        return self.tiny_files[:n] + self.mid_files[:n] + self.large_files[:n]

    def database_quota_utilization(self) -> np.ndarray:
        """Per-database UsedQuota/TotalQuota (clipped to [0, 1])."""
        n = self.count
        files = self.files_per_table()
        used = np.bincount(
            self.database[:n], weights=files, minlength=self.config.databases
        )
        return np.clip(used / self.config.quota_objects_per_db, 0.0, 1.0)

    def observe_view(self) -> ObserveView:
        """The memoised per-cycle observation columns (see :class:`ObserveView`)."""
        cached = self._observe_view
        if cached is not None and cached[0] == self.mutation_tick:
            return cached[1]
        n = self.count
        tiny, mid, large = self.tiny_files[:n], self.mid_files[:n], self.large_files[:n]
        tiny_b, mid_b = self.tiny_bytes[:n], self.mid_bytes[:n]
        small = tiny + mid
        small_b = tiny_b + mid_b
        quota_by_db = self.database_quota_utilization()
        view = ObserveView(
            files=(small + large).tolist(),
            small_files=small.tolist(),
            small_bytes=small_b.tolist(),
            total_bytes=(small_b + self.large_bytes[:n]).tolist(),
            created_s=(self.created_day[:n].astype(np.float64) * DAY).tolist(),
            modified_s=(self.last_write_day[:n].astype(np.float64) * DAY).tolist(),
            quota=quota_by_db[self.database[:n]].tolist(),
            versions=self.stats_version[:n].tolist(),
        )
        self._observe_view = (self.mutation_tick, view)
        return view

    def daily_scan_metrics(self) -> dict[str, float]:
        """Workload-side metrics for one day (Figure 11a/11b inputs).

        Query time and cost use the same per-file + per-byte decomposition
        as the engine cost model, scaled to fleet units.
        """
        n = self.count
        files = self.files_per_table().astype(np.float64)
        data_bytes = (
            self.tiny_bytes[:n] + self.mid_bytes[:n] + self.large_bytes[:n]
        ).astype(np.float64)
        scans = self.read_freq[:n]
        files_scanned = float((scans * files).sum())
        bytes_scanned = float((scans * data_bytes).sum())
        # Per-file overheads dominate fragmented scans (the paper's causal
        # mechanism): 0.3 s-equivalents per file vs 8 GiB/s-equivalent
        # bandwidth, so file-count reductions show up directly in query
        # time (Figure 11a's "closely corresponds").
        query_time = files_scanned * 0.3 + bytes_scanned / (8.0 * GiB)
        query_cost_gbhr = query_time / 3600.0 * 64.0
        open_calls = files_scanned
        return {
            "files_scanned": files_scanned,
            "query_time": query_time,
            "query_cost_gbhr": query_cost_gbhr,
            "open_calls": open_calls,
        }

    # --- estimators & compaction -----------------------------------------------------

    def estimate_reduction(self, index: int) -> float:
        """ΔF_c (paper formula): files below target."""
        return float(self.tiny_files[index] + self.mid_files[index])

    def estimate_gbhr(self, index: int) -> float:
        """GBHr_c (paper formula) from the table's small-file bytes."""
        small_bytes = float(self.tiny_bytes[index] + self.mid_bytes[index])
        return self.config.executor_memory_gb * (
            small_bytes / self.config.rewrite_bytes_per_hour
        )

    def compact(self, index: int) -> CompactionApplication:
        """Compact one table, realising estimator noise.

        Returns:
            The realised :class:`CompactionApplication`.

        Raises:
            ValidationError: for out-of-range indices.
        """
        if not 0 <= index < self.count:
            raise ValidationError(f"table index {index} out of range")
        rng = self._rng
        est_reduction = self.estimate_reduction(index)
        est_gbhr = self.estimate_gbhr(index)

        efficiency = self.merge_efficiency[index]
        mergeable_tiny = int(round(float(self.tiny_files[index]) * efficiency))
        mergeable_mid = int(round(float(self.mid_files[index]) * efficiency))
        merged_files = mergeable_tiny + mergeable_mid
        if merged_files == 0:
            return CompactionApplication(index, est_reduction, 0, est_gbhr, 0.0, 0)

        frac_tiny = mergeable_tiny / max(float(self.tiny_files[index]), 1.0)
        frac_mid = mergeable_mid / max(float(self.mid_files[index]), 1.0)
        merged_bytes = int(
            self.tiny_bytes[index] * frac_tiny + self.mid_bytes[index] * frac_mid
        )
        new_large = max(1, math.ceil(merged_bytes / self.config.target_file_size))
        actual_reduction = merged_files - new_large
        if actual_reduction <= 0:
            return CompactionApplication(index, est_reduction, 0, est_gbhr, 0.0, 0)

        self.tiny_files[index] -= mergeable_tiny
        self.mid_files[index] -= mergeable_mid
        self.tiny_bytes[index] = int(self.tiny_bytes[index] * (1 - frac_tiny))
        self.mid_bytes[index] = int(self.mid_bytes[index] * (1 - frac_mid))
        self.large_files[index] += new_large
        self.large_bytes[index] += merged_bytes
        self.stats_version[index] += 1
        self.mutation_tick += 1

        cost_noise = float(
            rng.lognormal(self.config.cost_noise_mu, self.config.cost_noise_sigma)
        )
        actual_gbhr = est_gbhr * cost_noise
        application = CompactionApplication(
            table_index=index,
            estimated_reduction=est_reduction,
            actual_reduction=actual_reduction,
            estimated_gbhr=est_gbhr,
            actual_gbhr=actual_gbhr,
            rewritten_bytes=merged_bytes,
        )
        if self.taps is not None and self.taps.has_subscribers("compact"):
            self.taps.publish(
                "compact",
                {
                    "day": self.day,
                    "index": index,
                    "state": {
                        name: int(getattr(self, name)[index])
                        for name in COMPACT_STATE_FIELDS
                    },
                    "application": {
                        "estimated_reduction": application.estimated_reduction,
                        "actual_reduction": application.actual_reduction,
                        "estimated_gbhr": application.estimated_gbhr,
                        "actual_gbhr": application.actual_gbhr,
                        "rewritten_bytes": application.rewritten_bytes,
                    },
                },
            )
        return application

    def apply_compact_state(self, index: int, state: dict[str, int]) -> None:
        """Set one table's post-compaction class state (trace replay).

        The deterministic counterpart of :meth:`compact`: a recorded
        ``compact`` event carries the table's exact file/byte state after
        the source run's rewrite, and verbatim replay assigns it directly —
        no merge-efficiency or cost-noise draws, so reconstruction is exact.
        """
        if not 0 <= index < self.count:
            raise ValidationError(f"table index {index} out of range")
        missing = [name for name in COMPACT_STATE_FIELDS if name not in state]
        if missing:
            raise ValidationError(f"compact state missing fields: {missing}")
        for name in COMPACT_STATE_FIELDS:
            getattr(self, name)[index] = int(state[name])
        self.mutation_tick += 1

    # --- snapshot / restore -----------------------------------------------------

    def snapshot(self) -> FleetSnapshot:
        """Capture the full model state (columns, clock, RNG) for later restore."""
        return FleetSnapshot(
            count=self.count,
            day=self.day,
            mutation_tick=self.mutation_tick,
            columns={
                name: getattr(self, name)[: self.count].copy()
                for name in TABLE_COLUMNS
            },
            rng_state=self._rng.bit_generator.state,
        )

    def restore(self, snapshot: FleetSnapshot) -> None:
        """Reset the model to a snapshot taken from it (or an equal-config model).

        The snapshot's columns are copied in, so the same snapshot can be
        restored repeatedly — the Policy Lab's what-if runner branches many
        policy variants off one reconstructed base state this way.
        """
        n = snapshot.count
        self.count = 0
        self._ensure_capacity(n)
        for name in TABLE_COLUMNS:
            array = getattr(self, name)
            array[:n] = snapshot.columns[name]
        self.count = n
        self.day = snapshot.day
        self.mutation_tick = snapshot.mutation_tick + 1
        self._rng.bit_generator.state = snapshot.rng_state
        self._observe_view = None
