"""Production-fleet simulator (§7: LinkedIn's OpenHouse deployment).

Figures 10–11 aggregate months of telemetry over 21K–35K tables; holding
that many live LST objects would be wasteful when the quantities that
matter are per-table file-class counts and byte totals.  This package keeps
fleet state in numpy arrays (:class:`~repro.fleet.model.FleetModel`) driven
by per-archetype fragmentation processes, and exposes it to the *unchanged*
AutoComp core through :class:`~repro.fleet.connectors.FleetConnector` /
:class:`~repro.fleet.connectors.FleetBackend` — the decision logic under
test is byte-for-byte the same code that runs against live tables.

Estimator noise is explicit: compaction cost realises ~19% above the GBHr
estimate and file-count reduction ~28% below the ΔF_c estimate, matching
the model-accuracy observations in §7.
"""

from repro.fleet.model import (
    Archetype,
    COMPACT_STATE_FIELDS,
    FleetConfig,
    FleetModel,
    FleetSnapshot,
    TABLE_COLUMNS,
)
from repro.fleet.connectors import FleetBackend, FleetConnector
from repro.fleet.simulator import (
    AutoCompStrategy,
    FleetSimulator,
    ManualCompactionStrategy,
    NoCompactionStrategy,
    ShardedAutoCompStrategy,
)

__all__ = [
    "Archetype",
    "AutoCompStrategy",
    "COMPACT_STATE_FIELDS",
    "FleetBackend",
    "FleetConfig",
    "FleetConnector",
    "FleetModel",
    "FleetSimulator",
    "FleetSnapshot",
    "ManualCompactionStrategy",
    "NoCompactionStrategy",
    "ShardedAutoCompStrategy",
    "TABLE_COLUMNS",
]
