"""Fleet-backed connector and execution backend for the AutoComp core.

These adapters let the *unchanged* OODA pipeline (traits, ranking,
selection) drive the vectorised fleet: candidates map to table indices,
statistics come from the model's arrays, and act-phase jobs apply
:meth:`~repro.fleet.model.FleetModel.compact`.  Because the decision code is
shared with the live-table backend, the §7 production experiments exercise
exactly the logic validated by the §6 synthetic ones (NFR3 in practice).
"""

from __future__ import annotations

from repro.core.candidates import (
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
)
from repro.core.connectors import Connector
from repro.core.scheduling import (
    CompactionTask,
    ExecutionBackend,
    ExecutionResult,
    PreparedJob,
)
from repro.errors import ValidationError
from repro.fleet.model import FleetModel
from repro.units import DAY


def _key_for_index(model: FleetModel, index: int) -> CandidateKey:
    return CandidateKey(
        database=f"tenant{int(model.database[index]):03d}",
        table=f"table{index:06d}",
        scope=CandidateScope.TABLE,
    )


def _index_for_key(key: CandidateKey) -> int:
    if not key.table.startswith("table"):
        raise ValidationError(f"not a fleet candidate key: {key}")
    return int(key.table[len("table") :])


class FleetConnector(Connector):
    """Exposes fleet tables as table-scope candidates.

    Args:
        model: the fleet state.
        min_small_files: tables with fewer small files are not even listed
            (a cheap generation-time screen that keeps candidate volume
            manageable at fleet scale).
    """

    def __init__(self, model: FleetModel, min_small_files: int = 1) -> None:
        self.model = model
        self.min_small_files = min_small_files

    def list_candidates(self, strategy: str = "table") -> list[CandidateKey]:
        if strategy != "table":
            raise ValidationError(
                "the fleet connector scopes candidates at table level only "
                f"(got strategy {strategy!r})"
            )
        small = self.model.small_files_per_table()
        return [
            _key_for_index(self.model, i)
            for i in range(self.model.count)
            if small[i] >= self.min_small_files
        ]

    def observe(self, keys: list[CandidateKey]) -> list:
        # One quota computation per cycle instead of per candidate: the
        # per-database utilisation is O(fleet size) to derive.
        quota = self.model.database_quota_utilization()
        from repro.core.candidates import Candidate

        return [
            Candidate(key=key, statistics=self._statistics(key, quota)) for key in keys
        ]

    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        return self._statistics(key, self.model.database_quota_utilization())

    def _statistics(self, key: CandidateKey, quota_by_db) -> CandidateStatistics:
        model = self.model
        i = _index_for_key(key)
        if not 0 <= i < model.count:
            raise ValidationError(f"fleet table index {i} out of range")
        tiny = int(model.tiny_files[i])
        mid = int(model.mid_files[i])
        large = int(model.large_files[i])
        tiny_b = int(model.tiny_bytes[i])
        mid_b = int(model.mid_bytes[i])
        large_b = int(model.large_bytes[i])
        quota = quota_by_db[int(model.database[i])]
        return CandidateStatistics(
            file_count=tiny + mid + large,
            total_bytes=tiny_b + mid_b + large_b,
            small_file_count=tiny + mid,
            small_file_bytes=tiny_b + mid_b,
            target_file_size=model.config.target_file_size,
            file_sizes=(),
            partition_count=1,
            created_at=float(model.created_day[i]) * DAY,
            last_modified_at=float(model.last_write_day[i]) * DAY,
            quota_utilization=float(quota),
        )


class _FleetPreparedJob(PreparedJob):
    def __init__(self, model: FleetModel, task: CompactionTask, index: int) -> None:
        self._model = model
        self._task = task
        self._index = index
        self._started_at = 0.0

    def start(self) -> float:
        self._started_at = float(self._model.day) * DAY
        return 0.0

    def finish(self) -> ExecutionResult:
        model = self._model
        files_before = int(
            model.tiny_files[self._index]
            + model.mid_files[self._index]
            + model.large_files[self._index]
        )
        application = model.compact(self._index)
        files_after = int(
            model.tiny_files[self._index]
            + model.mid_files[self._index]
            + model.large_files[self._index]
        )
        return ExecutionResult(
            candidate=self._task.candidate.key,
            success=application.actual_reduction > 0,
            skipped=application.actual_reduction == 0,
            conflict_reason=None,
            started_at=self._started_at,
            finished_at=self._started_at,
            duration_s=0.0,
            gbhr=application.actual_gbhr,
            files_before=files_before,
            files_after=files_after,
            estimated_reduction=application.estimated_reduction,
            actual_reduction=application.actual_reduction,
            rewritten_bytes=application.rewritten_bytes,
            estimated_gbhr=application.estimated_gbhr,
        )


class FleetBackend(ExecutionBackend):
    """Applies selected candidates to the fleet model."""

    def __init__(self, model: FleetModel) -> None:
        self.model = model

    def prepare(self, task: CompactionTask) -> PreparedJob | None:
        index = _index_for_key(task.candidate.key)
        small = int(self.model.tiny_files[index] + self.model.mid_files[index])
        if small < 2:
            return None
        return _FleetPreparedJob(self.model, task, index)
