"""Fleet-backed connector and execution backend for the AutoComp core.

These adapters let the *unchanged* OODA pipeline (traits, ranking,
selection) drive the vectorised fleet: candidates map to table indices,
statistics come from the model's arrays, and act-phase jobs apply
:meth:`~repro.fleet.model.FleetModel.compact`.  Because the decision code is
shared with the live-table backend, the §7 production experiments exercise
exactly the logic validated by the §6 synthetic ones (NFR3 in practice).
"""

from __future__ import annotations

import hashlib
import operator

import numpy as np

from repro.core.candidates import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
)
from repro.core.connectors import Connector
from repro.core.scheduling import (
    CompactionTask,
    ExecutionBackend,
    ExecutionResult,
    PreparedJob,
)
from repro.core.statscache import IndexedCandidateCache
from repro.core.workers import ShardCycleResult, ShardWorkSpec, burn_cpu
from repro.errors import ValidationError
from repro.fleet.model import FleetModel
from repro.units import DAY


def _key_for_index(model: FleetModel, index: int) -> CandidateKey:
    key = CandidateKey(
        database=f"tenant{int(model.database[index]):03d}",
        table=f"table{index:06d}",
        scope=CandidateScope.TABLE,
    )
    # Stash the table index on the interned key so hot paths resolve it
    # with one attribute read instead of a parse or a hashed lookup.
    object.__setattr__(key, "_fleet_index", index)
    return key


def _index_for_key(key: CandidateKey) -> int:
    index = getattr(key, "_fleet_index", None)
    if index is not None:
        return index
    if not key.table.startswith("table"):
        raise ValidationError(f"not a fleet candidate key: {key}")
    return int(key.table[len("table") :])


class FleetConnector(Connector):
    """Exposes fleet tables as table-scope candidates.

    Args:
        model: the fleet state.
        min_small_files: tables with fewer small files are not even listed
            (a cheap generation-time screen that keeps candidate volume
            manageable at fleet scale).
        stats_cache: optional incremental-observation cache (the dense
            :class:`~repro.core.statscache.IndexedCandidateCache`).  When
            set, observation is O(dirty tables): each lookup carries the
            table's ``stats_version`` as a freshness token, so entries
            self-evict exactly when the table wrote or was compacted, and
            the misses are rebuilt through a vectorised batch path.  Hits
            return the previously observed (and, after orient, annotated)
            candidate objects, so clean tables skip the trait recompute
            too.  Database-level quota utilisation is re-stamped on every
            hit (it drifts while tables stay clean), keeping cached
            observations exactly equal to fresh ones; the TTL fallback
            bounds staleness of anything else.

    Candidate keys are interned per table index (identity and database
    never change), so steady-state generation allocates no new key objects.
    """

    #: Observation state is exportable as picklable column slices, so this
    #: connector can feed process-mode shard workers.
    supports_worker_observe = True

    def worker_transport_kinds(self) -> tuple[str, ...]:
        return ("columnar", "pickle")

    def worker_transport(self, kind: str | None = None):
        from repro.core.transport import ColumnarTransport, PickleTransport

        if kind in (None, "columnar"):
            return ColumnarTransport(self)
        if kind == "pickle":
            return PickleTransport(self)
        raise ValidationError(
            f"FleetConnector does not speak the {kind!r} worker transport "
            f"(supported: {self.worker_transport_kinds()})"
        )

    def __init__(
        self,
        model: FleetModel,
        min_small_files: int = 1,
        stats_cache: IndexedCandidateCache | None = None,
        observe_cost: int = 0,
    ) -> None:
        if stats_cache is not None and not isinstance(stats_cache, IndexedCandidateCache):
            raise ValidationError(
                "FleetConnector takes the index-addressed cache "
                f"(IndexedCandidateCache), got {type(stats_cache).__name__}"
            )
        if observe_cost < 0:
            raise ValidationError(f"observe_cost must be >= 0, got {observe_cost}")
        self.model = model
        self.min_small_files = min_small_files
        self.stats_cache = stats_cache
        #: Per-candidate CPU units burned on every statistics (re)build
        #: (:func:`~repro.core.workers.burn_cpu`), emulating the
        #: collection cost — manifest parsing, file listing — a live
        #: connector pays.  Applied identically on the in-process and
        #: worker-process observe paths, so worker-mode comparisons stay
        #: honest.  0 (the default) disables the emulation entirely.
        self.observe_cost = observe_cost
        #: Interned keys by table index (None = not yet built).
        self._keys_by_index: list[CandidateKey | None] = []
        #: Consistent-hash digests per table index (uint64; grown lazily).
        self._digests = np.zeros(0, dtype=np.uint64)
        #: Last listing produced by this connector: (keys, indices).  The
        #: observe fast path recognises its own listing by identity and
        #: skips per-key index resolution.
        self._last_listing: tuple[list[CandidateKey], list[int]] | None = None

    @property
    def reuses_candidates(self) -> bool:  # type: ignore[override]
        return self.stats_cache is not None

    def invalidate(self, key: CandidateKey) -> None:
        """Write-event hook: evict ``key``'s table from the cache."""
        if self.stats_cache is not None:
            self.stats_cache.invalidate_index(_index_for_key(key))

    def _key(self, index: int) -> CandidateKey:
        keys = self._keys_by_index
        if index >= len(keys):
            keys.extend([None] * (index + 1 - len(keys)))
        key = keys[index]
        if key is None:
            key = keys[index] = _key_for_index(self.model, index)
        return key

    def list_candidates(self, strategy: str = "table") -> list[CandidateKey]:
        if strategy != "table":
            raise ValidationError(
                "the fleet connector scopes candidates at table level only "
                f"(got strategy {strategy!r})"
            )
        small = self.model.small_files_per_table()
        eligible = np.nonzero(small >= self.min_small_files)[0].tolist()
        return self._keys_for_eligible(eligible)

    def list_candidates_sharded(
        self, strategy: str, n_shards: int, shard_index: int
    ) -> list[CandidateKey]:
        """Vectorised shard slice: one digest-mask pass over the fleet."""
        if strategy != "table":
            raise ValidationError(
                "the fleet connector scopes candidates at table level only "
                f"(got strategy {strategy!r})"
            )
        model = self.model
        self._ensure_digests(model.count)
        small = model.small_files_per_table()
        digests = self._digests[: model.count]
        mask = (small >= self.min_small_files) & (
            digests % np.uint64(n_shards) == np.uint64(shard_index)
        )
        return self._keys_for_eligible(np.nonzero(mask)[0].tolist())

    def _keys_for_eligible(self, eligible: list[int]) -> list[CandidateKey]:
        if not eligible:
            self._last_listing = ([], [])
            return []
        keys = self._keys_by_index
        if eligible[-1] >= len(keys):
            keys.extend([None] * (eligible[-1] + 1 - len(keys)))
        if any(keys[i] is None for i in eligible):
            for i in eligible:
                if keys[i] is None:
                    self._key(i)
        # C-speed multi-index pick over the interned key table.
        listed = (
            list(operator.itemgetter(*eligible)(keys))
            if len(eligible) > 1
            else [keys[eligible[0]]]
        )
        self._last_listing = (listed, eligible)
        return listed

    def _ensure_digests(self, count: int) -> None:
        """Consistent-hash digests (matching shard_for_key) for indices < count."""
        have = len(self._digests)
        if count <= have:
            return
        grown = np.zeros(count, dtype=np.uint64)
        grown[:have] = self._digests
        for index in range(have, count):
            digest = hashlib.blake2b(
                str(self._key(index)).encode("utf-8"), digest_size=8
            ).digest()
            grown[index] = int.from_bytes(digest, "big")
        self._digests = grown

    def observe(self, keys: list[CandidateKey]) -> list[Candidate]:
        if self.stats_cache is None:
            # One quota computation per cycle instead of per candidate: the
            # per-database utilisation is O(fleet size) to derive.
            quota = self.model.database_quota_utilization()
            return [
                Candidate(key=key, statistics=self._statistics(key, quota))
                for key in keys
            ]
        return self._observe_incremental(keys)

    def _split_cache_hits(
        self, keys: list[CandidateKey], indices: list[int], view, now: float
    ) -> tuple[list[Candidate | None], list[CandidateKey], list[int]]:
        """The single source of the cache hit-validity rule.

        A key is served from cache iff its slot's freshness token is
        within ``version_slack`` of the live version *and* the entry is
        younger than the TTL; hits get their database-level quota
        re-stamped in place (it drifts while the table stays clean), so
        cached observations stay exactly equal to fresh ones.  The
        shipped traits read only per-table file statistics — custom
        traits that read quota_utilization should not be combined with a
        stats cache.

        Shared by the in-process observe path and the process-worker
        export, so the two can never disagree about which keys need
        rebuilding — the worker modes' byte-identical cycle reports
        depend on exactly that.

        Returns:
            ``(placed, miss_keys, miss_indices, miss_positions)`` —
            ``placed`` holds the hit candidates with ``None`` holes at
            miss positions; the three miss lists describe the holes in
            order (keys, table indices, and positions within ``placed``).
        """
        count = self.model.count
        cache = self.stats_cache
        placed: list[Candidate | None] = [None] * len(keys)
        miss_keys: list[CandidateKey] = []
        miss_indices: list[int] = []
        miss_positions: list[int] = []
        if cache is None:
            for index in indices:
                if not 0 <= index < count:
                    raise ValidationError(f"fleet table index {index} out of range")
            return placed, list(keys), list(indices), list(range(len(keys)))
        cache.ensure_capacity(count)
        slots = cache.candidates
        tokens = cache.tokens
        stored_ats = cache.stored_ats
        ttl = cache.ttl_s
        slack = cache.version_slack
        versions, quota = view.versions, view.quota
        hits = 0
        expirations = 0
        for pos, (key, index) in enumerate(zip(keys, indices)):
            if not 0 <= index < count:
                raise ValidationError(f"fleet table index {index} out of range")
            candidate = slots[index]
            if (
                candidate is not None
                and 0 <= versions[index] - tokens[index] <= slack
                and now - stored_ats[index] < ttl
            ):
                hits += 1
                stats = candidate.statistics
                fresh_quota = quota[index]
                if stats.quota_utilization != fresh_quota:
                    object.__setattr__(stats, "quota_utilization", fresh_quota)
                placed[pos] = candidate
            else:
                if candidate is not None:
                    # Slot held an entry that failed the token/TTL check —
                    # the inline twin of IndexedCandidateCache.get's
                    # eviction accounting (the slot itself is reused in
                    # place by the rebuild, so no separate None store).
                    expirations += 1
                miss_keys.append(key)
                miss_indices.append(index)
                miss_positions.append(pos)
        cache.record_lookups(hits, len(miss_keys), expirations)
        return placed, miss_keys, miss_indices, miss_positions

    def _observe_incremental(self, keys: list[CandidateKey]) -> list[Candidate]:
        """Cache-first observation: only dirty tables rebuild statistics.

        The hit pass (:meth:`_split_cache_hits`) runs inline over the
        cache's slot lists (one list index + compare per key); stale slots
        reuse their Candidate object (statistics swapped, traits cleared
        for re-orientation), and fresh statistics come from the model's
        per-cycle :meth:`~repro.fleet.model.FleetModel.observe_view` —
        plain list reads shared across every shard of a sharded cycle.
        """
        model = self.model
        cache = self.stats_cache
        now = float(model.day) * DAY
        view = model.observe_view()
        indices = self._resolve_indices(keys)
        placed, miss_keys, miss_indices, miss_positions = self._split_cache_hits(
            keys, indices, view, now
        )
        if not miss_keys:
            return placed  # type: ignore[return-value] — no holes
        slots = cache.candidates
        tokens = cache.tokens
        stored_ats = cache.stored_ats
        versions = view.versions
        target = model.config.target_file_size
        build = CandidateStatistics.build_unchecked
        files, total_b = view.files, view.total_bytes
        small, small_b = view.small_files, view.small_bytes
        created, modified, quota = view.created_s, view.modified_s, view.quota
        observe_cost = self.observe_cost
        for key, index, pos in zip(miss_keys, miss_indices, miss_positions):
            if observe_cost:
                burn_cpu(observe_cost, str(key).encode("utf-8"))
            stats = build(
                file_count=files[index],
                total_bytes=total_b[index],
                small_file_count=small[index],
                small_file_bytes=small_b[index],
                target_file_size=target,
                partition_count=1,
                created_at=created[index],
                last_modified_at=modified[index],
                quota_utilization=quota[index],
            )
            stale = slots[index]
            if stale is not None:
                # Reuse the stale candidate in place: new statistics,
                # traits dropped so orient recomputes them.
                stale.statistics = stats
                stale.traits.clear()
                candidate = stale
            else:
                candidate = Candidate(key=key, statistics=stats)
                slots[index] = candidate
            tokens[index] = versions[index]
            stored_ats[index] = now
            placed[pos] = candidate
        return placed  # type: ignore[return-value] — all holes filled

    def _resolve_indices(self, keys: list[CandidateKey]) -> list[int]:
        """Table indices for ``keys``.

        Observing our own most recent listing (the common cycle path) skips
        per-key resolution: the listing's index list is already computed.
        """
        last = self._last_listing
        if last is not None and keys is last[0]:
            return last[1]
        return [_index_for_key(key) for key in keys]

    # --- process-mode shard workers ---------------------------------------------

    def export_shard_work(
        self, keys: list[CandidateKey], shard_index: int, traits
    ) -> tuple[list[Candidate | None], ShardWorkSpec | None]:
        """Resolve cache hits locally; snapshot the misses into a picklable spec.

        The hit pass *is* :meth:`_split_cache_hits` — the same code the
        in-process path runs — so a key is shipped to a worker if and only
        if :meth:`_observe_incremental` would have rebuilt it.  The spec's
        columns are plain-list slices of the memoised
        :meth:`~repro.fleet.model.FleetModel.observe_view` — only the dirty
        rows cross the process boundary.
        """
        model = self.model
        now = float(model.day) * DAY
        view = model.observe_view()
        indices = self._resolve_indices(keys)
        placed, miss_keys, miss_indices, _ = self._split_cache_hits(
            keys, indices, view, now
        )
        if not miss_keys:
            return placed, None
        sliced = view.take(miss_indices)
        spec = ShardWorkSpec(
            shard_index=shard_index,
            keys=tuple(miss_keys),
            columns={
                "file_count": tuple(sliced.files),
                "total_bytes": tuple(sliced.total_bytes),
                "small_file_count": tuple(sliced.small_files),
                "small_file_bytes": tuple(sliced.small_bytes),
                "partition_count": (1,) * len(miss_keys),
                "created_at": tuple(sliced.created_s),
                "last_modified_at": tuple(sliced.modified_s),
                "quota_utilization": tuple(sliced.quota),
            },
            slots=tuple(miss_indices),
            tokens=tuple(sliced.versions),
            target_file_size=model.config.target_file_size,
            now=now,
            traits=traits,
            observe_cost=self.observe_cost,
        )
        return placed, spec

    def export_columnar(
        self, keys: list[CandidateKey], shard_index: int, traits
    ) -> tuple[list[Candidate | None], ShardWorkSpec | None]:
        """Columnar export: the same hit rule, miss columns as int64/float64 arrays.

        The observe-view slice that :meth:`export_shard_work` ships as
        per-column tuples lands in one shared-memory block instead; the
        fleet model tracks no per-file sizes, so the block carries scalar
        columns only and rebuilt statistics have empty ``file_sizes`` —
        exactly like every other fleet observation path.
        """
        from repro.core.columnar import ColumnarMissBlock

        model = self.model
        now = float(model.day) * DAY
        view = model.observe_view()
        indices = self._resolve_indices(keys)
        placed, miss_keys, miss_indices, _ = self._split_cache_hits(
            keys, indices, view, now
        )
        if not miss_keys:
            return placed, None
        sliced = view.take(miss_indices)
        n = len(miss_keys)
        target = model.config.target_file_size
        block = ColumnarMissBlock.from_columns(
            {
                "file_count": sliced.files,
                "total_bytes": sliced.total_bytes,
                "small_file_count": sliced.small_files,
                "small_file_bytes": sliced.small_bytes,
                "target_file_size": [target] * n,
                "created_at": sliced.created_s,
                "last_modified_at": sliced.modified_s,
                "quota_utilization": sliced.quota,
            },
            n,
        )
        spec = ShardWorkSpec(
            shard_index=shard_index,
            keys=tuple(miss_keys),
            columns={},
            slots=tuple(miss_indices),
            tokens=tuple(sliced.versions),
            target_file_size=target,
            now=now,
            traits=traits,
            observe_cost=self.observe_cost,
            snapshot=block,
            transport="columnar",
        )
        return placed, spec

    def apply_shard_delta(self, result: ShardCycleResult) -> None:
        """Replay a worker result's cache delta (no hole filling).

        Applying the delta is what keeps process-mode cycles incremental:
        the worker's freshness tokens land in the coordinator's cache, so
        the next cycle's hit pass sees the observation as if it had
        happened here.  Version compatibility is the pool handshake's job
        (:meth:`~repro.core.workers.WorkerPool.negotiate`), not a
        per-result check.
        """
        if self.stats_cache is not None:
            self.stats_cache.apply_delta(result.cache_delta, result.candidates)

    def merge_shard_result(
        self, placed: list[Candidate | None], result: ShardCycleResult
    ) -> list[Candidate]:
        """Fill the miss holes from a worker's result; replay its cache delta."""
        holes = sum(1 for candidate in placed if candidate is None)
        if holes != len(result.candidates):
            raise ValidationError(
                f"shard result carries {len(result.candidates)} candidates "
                f"for {holes} miss positions"
            )
        self.apply_shard_delta(result)
        fill = iter(result.candidates)
        return [c if c is not None else next(fill) for c in placed]

    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        return self._statistics(key, self.model.database_quota_utilization())

    def _statistics(self, key: CandidateKey, quota_by_db) -> CandidateStatistics:
        if self.observe_cost:
            burn_cpu(self.observe_cost, str(key).encode("utf-8"))
        model = self.model
        i = _index_for_key(key)
        if not 0 <= i < model.count:
            raise ValidationError(f"fleet table index {i} out of range")
        tiny = int(model.tiny_files[i])
        mid = int(model.mid_files[i])
        large = int(model.large_files[i])
        tiny_b = int(model.tiny_bytes[i])
        mid_b = int(model.mid_bytes[i])
        large_b = int(model.large_bytes[i])
        quota = quota_by_db[int(model.database[i])]
        return CandidateStatistics(
            file_count=tiny + mid + large,
            total_bytes=tiny_b + mid_b + large_b,
            small_file_count=tiny + mid,
            small_file_bytes=tiny_b + mid_b,
            target_file_size=model.config.target_file_size,
            file_sizes=(),
            partition_count=1,
            created_at=float(model.created_day[i]) * DAY,
            last_modified_at=float(model.last_write_day[i]) * DAY,
            quota_utilization=float(quota),
        )


class _FleetPreparedJob(PreparedJob):
    def __init__(self, model: FleetModel, task: CompactionTask, index: int) -> None:
        self._model = model
        self._task = task
        self._index = index
        self._started_at = 0.0

    def start(self) -> float:
        self._started_at = float(self._model.day) * DAY
        return 0.0

    def finish(self) -> ExecutionResult:
        model = self._model
        files_before = int(
            model.tiny_files[self._index]
            + model.mid_files[self._index]
            + model.large_files[self._index]
        )
        application = model.compact(self._index)
        files_after = int(
            model.tiny_files[self._index]
            + model.mid_files[self._index]
            + model.large_files[self._index]
        )
        return ExecutionResult(
            candidate=self._task.candidate.key,
            success=application.actual_reduction > 0,
            skipped=application.actual_reduction == 0,
            conflict_reason=None,
            started_at=self._started_at,
            finished_at=self._started_at,
            duration_s=0.0,
            gbhr=application.actual_gbhr,
            files_before=files_before,
            files_after=files_after,
            estimated_reduction=application.estimated_reduction,
            actual_reduction=application.actual_reduction,
            rewritten_bytes=application.rewritten_bytes,
            estimated_gbhr=application.estimated_gbhr,
        )


class FleetBackend(ExecutionBackend):
    """Applies selected candidates to the fleet model."""

    def __init__(self, model: FleetModel) -> None:
        self.model = model

    def prepare(self, task: CompactionTask) -> PreparedJob | None:
        index = _index_for_key(task.candidate.key)
        small = int(self.model.tiny_files[index] + self.model.mid_files[index])
        if small < 2:
            return None
        return _FleetPreparedJob(self.model, task, index)
