"""Event taps: a lightweight publish/subscribe bus for simulation events.

The Policy Lab (:mod:`repro.replay`) needs to observe what a running
simulation *does* — write commits, compactions, onboarding batches, cycle
summaries — without the simulation knowing anything about trace formats.
A :class:`TapBus` decouples the two: producers (the fleet model and
simulator) publish named events with plain-dict payloads, and any number of
subscribers (a :class:`~repro.replay.recorder.TraceRecorder`, a live
dashboard, a test assertion) receive them synchronously in publish order.

Publishing to a bus with no subscribers for a kind is free apart from one
dict lookup, so producers can publish unconditionally; a producer handed no
bus at all (``taps=None``) skips even that.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ValidationError

#: Event kinds published by the fleet simulation (see
#: :class:`~repro.fleet.model.FleetModel` /
#: :class:`~repro.fleet.simulator.FleetSimulator`).
FLEET_EVENT_KINDS = ("onboard", "day", "compact", "cycle")

#: Event kinds published by the LST-catalog plane (see
#: :class:`~repro.catalog.catalog.Catalog` — database/table creation and
#: per-commit file deltas — and :class:`~repro.core.pipeline.AutoCompPipeline`,
#: which publishes one ``cycle`` summary per OODA pass when handed a bus).
CATALOG_EVENT_KINDS = ("db_create", "table_create", "table_commit", "cycle")

TapHandler = Callable[[str, dict], None]


class TapBus:
    """Synchronous publish/subscribe bus keyed by event kind.

    Handlers receive ``(kind, payload)`` and run inline in publish order;
    a handler subscribed to the wildcard kind ``"*"`` receives every event.
    """

    def __init__(self) -> None:
        self._handlers: dict[str, list[TapHandler]] = {}
        self.published = 0

    def subscribe(self, kind: str, handler: TapHandler) -> TapHandler:
        """Register ``handler`` for events of ``kind`` (``"*"`` = all).

        Returns the handler for symmetry with :meth:`unsubscribe`.
        """
        if not kind:
            raise ValidationError("tap kind must be non-empty")
        self._handlers.setdefault(kind, []).append(handler)
        return handler

    def unsubscribe(self, kind: str, handler: TapHandler) -> bool:
        """Remove one registration; returns whether it existed."""
        handlers = self._handlers.get(kind)
        if handlers is None or handler not in handlers:
            return False
        handlers.remove(handler)
        if not handlers:
            del self._handlers[kind]
        return True

    def publish(self, kind: str, payload: dict) -> None:
        """Deliver ``payload`` to every handler of ``kind`` and ``"*"``."""
        self.published += 1
        for handler in self._handlers.get(kind, ()):
            handler(kind, payload)
        for handler in self._handlers.get("*", ()):
            handler(kind, payload)

    def has_subscribers(self, kind: str) -> bool:
        """Whether anyone listens to ``kind`` (directly or via ``"*"``)."""
        return bool(self._handlers.get(kind)) or bool(self._handlers.get("*"))
