"""Discrete-event simulator loop.

The :class:`Simulator` owns a :class:`~repro.simulation.clock.SimClock` and an
:class:`~repro.simulation.events.EventQueue` and exposes the small scheduling
API the rest of the library builds on:

* ``at(t, fn)`` / ``after(dt, fn)`` — one-shot events;
* ``every(interval, fn)`` — recurring events (periodic compaction triggers,
  hourly workload waves);
* ``run_until(t)`` / ``run()`` — drive the loop.

Callbacks may schedule further events, including at the current instant.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ValidationError
from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.queue = EventQueue()
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    # --- scheduling ---------------------------------------------------------

    def at(self, time: float, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self.clock.now:
            raise ValidationError(
                f"cannot schedule event in the past ({time} < now={self.clock.now})"
            )
        return self.queue.push(time, action, name)

    def after(self, delay: float, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ValidationError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self.clock.now + delay, action, name)

    def every(
        self,
        interval: float,
        action: Callable[[], None],
        name: str = "",
        start: float | None = None,
        until: float | None = None,
    ) -> Event:
        """Schedule ``action`` to fire every ``interval`` seconds.

        Args:
            interval: spacing between firings; must be positive.
            action: zero-argument callable run at each firing.
            name: label used for the underlying events.
            start: absolute time of the first firing.  Defaults to
                ``now + interval`` (i.e. the first tick happens one interval
                from now, matching "triggered every hour" semantics in §6).
            until: if given, no firing is scheduled at or after this time.

        Returns:
            The event handle for the *first* firing; recurrence re-arms
            itself from within each firing.
        """
        if interval <= 0:
            raise ValidationError(f"interval must be positive, got {interval}")
        first = self.clock.now + interval if start is None else start

        def fire() -> None:
            action()
            next_time = self.clock.now + interval
            if until is None or next_time < until:
                self.queue.push(next_time, fire, name)

        if until is not None and first >= until:
            # Nothing to schedule; return a dummy cancelled event for API shape.
            event = self.queue.push(first, fire, name)
            self.queue.cancel(event)
            return event
        return self.queue.push(first, fire, name)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        self.queue.cancel(event)

    # --- execution ------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event, advancing the clock to it.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue was empty.
        """
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        event.action()
        self._events_fired += 1
        return True

    def run_until(self, end_time: float) -> None:
        """Run events with ``time <= end_time`` then set the clock to ``end_time``.

        Events scheduled beyond ``end_time`` remain queued, so simulations can
        be resumed with a later horizon.
        """
        if end_time < self.clock.now:
            raise ValidationError(
                f"end_time {end_time} is before current time {self.clock.now}"
            )
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
        self.clock.advance_to(end_time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue is empty.

        Args:
            max_events: safety valve against runaway self-rescheduling loops.

        Raises:
            RuntimeError: if more than ``max_events`` events fire.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
