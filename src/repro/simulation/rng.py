"""Deterministic random-number-generator derivation.

Every stochastic component (workload arrivals, writer skew, fleet
fragmentation processes) receives its own :class:`numpy.random.Generator`
derived from a root seed plus a stable string path, e.g.::

    rng = derive_rng(42, "cab", "db03", "stream-read")

Two properties matter for the paper's NFR2 (explainability / deterministic
decisions):

* the same ``(seed, *keys)`` always yields the same stream, across processes
  and Python versions (we hash with SHA-256, never ``hash()`` which is
  salted per-process); and
* sibling components get statistically independent streams, so adding a new
  consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(seed: int, *keys: object) -> int:
    """Derive a stable 64-bit child seed from a root seed and key path."""
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("utf-8"))
    for key in keys:
        digest.update(b"/")
        digest.update(str(key).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(seed: int, *keys: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(seed, *keys))
