"""Discrete-event simulation core.

Everything in the library that "takes time" — query execution, ingestion,
compaction jobs, periodic AutoComp cycles — runs against the simulated clock
and event queue defined here, so whole multi-hour experiments (Figures 6–8)
and month-scale deployments (Figures 10–11) execute in milliseconds of real
time while preserving event ordering and concurrency windows.
"""

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.rng import derive_rng, derive_seed
from repro.simulation.simulator import Simulator
from repro.simulation.taps import FLEET_EVENT_KINDS, TapBus
from repro.simulation.telemetry import (
    Histogram,
    MetricSeries,
    ScopedTelemetry,
    Telemetry,
    exponential_bounds,
)

__all__ = [
    "Event",
    "EventQueue",
    "FLEET_EVENT_KINDS",
    "Histogram",
    "MetricSeries",
    "ScopedTelemetry",
    "SimClock",
    "Simulator",
    "TapBus",
    "Telemetry",
    "exponential_bounds",
    "derive_rng",
    "derive_seed",
]
