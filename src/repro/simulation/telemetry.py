"""Telemetry: counters, time series and histograms for experiments.

Plays the role Logs Analytics plays in the paper's evaluation (§6): every
subsystem records what happened (file counts, GBHr per compaction app, query
latencies, conflict counts) into one :class:`Telemetry` sink, and benchmark
harnesses read it back as :class:`MetricSeries` to print tables and figures.

The sink is also the production observability plane's storage
(:mod:`repro.obs`): all three metric kinds — counters, series and
fixed-bucket :class:`Histogram` distributions — are **thread-safe** (shard
threads, daemon scheduler threads and exporter threads all write into one
sink), and :meth:`Telemetry.snapshot` hands the exporter a consistent copy
to render without holding writers up.  The well-known metric names live in
the :data:`repro.obs.METRICS` registry.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass
class MetricSeries:
    """An append-only time series of ``(time, value)`` observations."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def record(self, time: float, value: float) -> None:
        """Record an observation, keeping the series sorted by time.

        Appends in O(1) for the common in-order case; out-of-order records
        (e.g. a long-running job reporting a latency stamped at its *start*
        after shorter jobs already finished) are inserted at the right
        position.
        """
        time = float(time)
        if not self.times or time >= self.times[-1]:
            self.times.append(time)
            self.values.append(float(value))
            return
        index = bisect.bisect_right(self.times, time)
        self.times.insert(index, time)
        self.values.insert(index, float(value))

    def last(self, default: float = math.nan) -> float:
        """Most recent value, or ``default`` if the series is empty."""
        return self.values[-1] if self.values else default

    def between(self, start: float, end: float) -> list[float]:
        """Values observed in the half-open window ``[start, end)``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.values[lo:hi]

    def value_at(self, time: float, default: float = math.nan) -> float:
        """Step-function read: the last value recorded at or before ``time``."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def bucket(
        self, width: float, end: float | None = None, agg: str = "mean"
    ) -> list[tuple[float, float]]:
        """Aggregate observations into fixed-width buckets starting at t=0.

        Args:
            width: bucket width in seconds (e.g. one hour for Figures 6–8).
            end: horizon; defaults to the last observation time.
            agg: one of ``mean``, ``sum``, ``count``, ``min``, ``max``,
                ``last``.

        Returns:
            ``(bucket_start, aggregate)`` pairs; empty buckets yield NaN for
            ``mean``/``min``/``max``/``last`` and 0 for ``sum``/``count``.

            An **empty series** with no explicit ``end``, or an explicit
            ``end`` (or last observation) at or before ``t=0``, has a
            zero-length horizon and returns ``[]`` — there is no window to
            bucket, which is distinct from "one bucket with NaN in it".

        Raises:
            ValueError: if ``width`` is non-positive or non-finite, or if
                ``end`` is negative or non-finite (a negative or unbounded
                horizon is always a caller bug, not an empty window).
        """
        if not math.isfinite(width) or width <= 0:
            raise ValueError(f"bucket width must be positive and finite, got {width}")
        if end is not None:
            if not math.isfinite(end) or end < 0:
                raise ValueError(f"bucket horizon must be finite and >= 0, got {end}")
            horizon = end
        else:
            horizon = self.times[-1] if self.times else 0.0
        if horizon <= 0:
            # Explicitly empty: zero-length horizon (empty series, or all
            # observations at t<=0 with no end override) buckets nothing.
            return []
        out: list[tuple[float, float]] = []
        start = 0.0
        while start < horizon:
            window = self.between(start, start + width)
            out.append((start, _aggregate(window, agg)))
            start += width
        return out


def _aggregate(values: list[float], agg: str) -> float:
    if agg == "count":
        return float(len(values))
    if agg == "sum":
        return float(sum(values))
    if not values:
        return math.nan
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    if agg == "last":
        return values[-1]
    raise ValueError(f"unknown aggregation {agg!r}")


def exponential_bounds(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` exponentially spaced histogram bucket upper bounds.

    ``exponential_bounds(0.001, 2, 4)`` → ``(0.001, 0.002, 0.004, 0.008)``.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    edge = float(start)
    for _ in range(count):
        bounds.append(edge)
        edge *= factor
    return tuple(bounds)


#: Default bucket bounds for wall-clock latencies, in seconds (500µs – 5min).
LATENCY_BOUNDS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default bucket bounds for byte volumes (1 MiB – 32 GiB, powers of two).
BYTES_BOUNDS: tuple[float, ...] = exponential_bounds(float(1 << 20), 2.0, 16)

#: Default bucket bounds for ratios in [0, 1] (5% steps).
RATIO_BOUNDS: tuple[float, ...] = tuple(i / 20 for i in range(1, 21))

#: Default bucket bounds for small event counts (1 – 1024, powers of two).
COUNT_BOUNDS: tuple[float, ...] = exponential_bounds(1.0, 2.0, 11)


@dataclass
class Histogram:
    """A fixed-bucket distribution: mergeable, quantile-estimating, picklable.

    ``bounds`` are ascending bucket *upper* edges; ``counts`` has one slot
    per bound plus a final overflow slot (the implicit ``+Inf`` bucket), so a
    value lands in the first bucket whose bound is ``>= value``.  Because
    bounds are fixed at creation, two histograms with equal bounds can be
    merged exactly — shard threads and process workers each fill a local
    histogram, and the coordinator :meth:`merge`\\ s them into one
    distribution with no approximation beyond the shared bucketing.

    Quantiles interpolate linearly inside the winning bucket and clamp to
    the observed ``[min, max]``, the same estimate Prometheus'
    ``histogram_quantile`` produces from ``_bucket`` series.

    Holds no lock of its own (it must pickle cleanly across the worker
    boundary); :class:`Telemetry` serialises access to the histograms it
    owns.  Non-finite observations are dropped and tallied in ``dropped``
    rather than poisoning ``sum``.
    """

    name: str
    bounds: tuple[float, ...] = LATENCY_BOUNDS_S
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    dropped: int = 0

    def __post_init__(self) -> None:
        self.bounds = tuple(float(b) for b in self.bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in self.bounds):
            raise ValueError(f"histogram bounds must be finite: {self.bounds}")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly ascending: {self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} bucket counts, got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        """Record one observation (non-finite values are counted as dropped)."""
        value = float(value)
        if not math.isfinite(value):
            self.dropped += 1
            return
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (exact).

        Raises ValueError unless both histograms share identical bounds.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.name} vs {other.name}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self.dropped += other.dropped
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / n
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self.min, min(self.max, estimate))
            cumulative += n
        return self.max

    def copy(self) -> "Histogram":
        """An independent deep copy (for consistent exporter snapshots)."""
        return Histogram(
            name=self.name,
            bounds=self.bounds,
            counts=list(self.counts),
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            dropped=self.dropped,
        )

    def summary(self) -> dict[str, float]:
        """``{count, sum, min, max, p50, p95, p99}`` — the status-report view."""
        empty = self.count == 0
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": math.nan if empty else self.min,
            "max": math.nan if empty else self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Telemetry:
    """Central, thread-safe sink for counters, metric series and histograms.

    Counters answer "how many X happened" (conflicts, RPC calls); series
    answer "how did Y evolve over simulated time" (file counts, latencies);
    histograms answer "how was Z distributed" (observe wall p99, rewrite
    bytes).  All are keyed by plain string names; callers namespace with
    dots, e.g. ``'storage.rpc.open'`` or ``'autocomp.gbhr'``.

    Every mutation and read takes one internal :class:`threading.RLock`, so
    concurrent shard threads, the daemon scheduler thread and the metrics
    exporter thread can share a sink without torn counter updates or
    mid-insert series reads.  Note that objects *returned* by
    :meth:`series` / :meth:`histogram` are live references — writers should
    go through :meth:`record` / :meth:`observe`; readers that need a
    consistent view across metrics should use :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, float] = defaultdict(float)
        self._series: dict[str, MetricSeries] = {}
        self._histograms: dict[str, Histogram] = {}

    # --- counters -------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] += amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with ``prefix``.

        This is a plain string-prefix match: ``'autocomp.shard1'`` also
        matches ``'autocomp.shard10.files'``.  When selecting a dotted
        *namespace*, pass the trailing dot (``'autocomp.shard1.'``) or use
        :meth:`ScopedTelemetry.counters_with_prefix`, which is
        namespace-boundary aware.
        """
        with self._lock:
            return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    # --- series ---------------------------------------------------------------

    def record(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to series ``name`` (creating it)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = MetricSeries(name)
            series.record(time, value)

    def series(self, name: str) -> MetricSeries:
        """The series named ``name`` (an empty one if never recorded)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = MetricSeries(name)
            return series

    def series_names(self, prefix: str = "") -> list[str]:
        """Sorted names of all series starting with ``prefix``."""
        with self._lock:
            return sorted(name for name in self._series if name.startswith(prefix))

    def merge_values(self, names: Iterable[str]) -> list[float]:
        """Concatenate the values of several series (order: name, then time)."""
        merged: list[float] = []
        for name in names:
            merged.extend(self.series(name).values)
        return merged

    # --- histograms -----------------------------------------------------------

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] | None = None
    ) -> None:
        """Record ``value`` into histogram ``name`` (creating it).

        ``bounds`` picks the bucket layout when the histogram is first
        created (default :data:`LATENCY_BOUNDS_S`); later calls ignore it —
        bucket layouts are fixed for the life of the sink so shard-merged
        histograms stay exact.
        """
        with self._lock:
            self.histogram(name, bounds).observe(value)

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram named ``name`` (created empty on first access)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(
                    name, bounds if bounds is not None else LATENCY_BOUNDS_S
                )
            return hist

    def merge_histogram(self, other: Histogram) -> None:
        """Fold a remotely-filled histogram (e.g. from a process worker)
        into the local histogram of the same name, creating it if needed."""
        with self._lock:
            hist = self._histograms.get(other.name)
            if hist is None:
                self._histograms[other.name] = other.copy()
            else:
                hist.merge(other)

    def histogram_names(self, prefix: str = "") -> list[str]:
        """Sorted names of all histograms starting with ``prefix``."""
        with self._lock:
            return sorted(name for name in self._histograms if name.startswith(prefix))

    # --- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """A consistent deep copy of every metric, for exporters.

        Returns ``{"counters": {name: value}, "series": {name: (times,
        values)}, "histograms": {name: Histogram}}`` — all copies, safe to
        render or serialise while writers keep mutating the live sink.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "series": {
                    name: (list(s.times), list(s.values))
                    for name, s in self._series.items()
                },
                "histograms": {
                    name: h.copy() for name, h in self._histograms.items()
                },
            }

    # --- scoping ---------------------------------------------------------------

    def scoped(self, prefix: str) -> "ScopedTelemetry":
        """A view that prefixes every metric name with ``prefix`` + ``.``.

        Used by the scale-out control plane to give each shard its own
        namespace (``autocomp.shard00.…``) inside one shared sink, so
        fleet-level dashboards can aggregate across shards while per-shard
        series stay individually addressable.
        """
        return ScopedTelemetry(self, prefix)


class ScopedTelemetry:
    """A prefixing facade over a parent :class:`Telemetry`.

    All writes and reads delegate to the parent with ``prefix.name``;
    nothing is stored locally, so scoped views are free to create per
    shard / per subsystem.
    """

    def __init__(self, parent: Telemetry, prefix: str) -> None:
        if not prefix:
            raise ValueError("scoped telemetry needs a non-empty prefix")
        self._parent = parent
        self._prefix = prefix.rstrip(".")

    @property
    def prefix(self) -> str:
        """The namespace applied to every metric name."""
        return self._prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the prefixed counter."""
        self._parent.increment(self._qualify(name), amount)

    def counter(self, name: str) -> float:
        """Current value of the prefixed counter."""
        return self._parent.counter(self._qualify(name))

    def counters_with_prefix(self, prefix: str = "") -> dict[str, float]:
        """Counters inside this scope, keyed by their full (parent) names.

        Unlike :meth:`Telemetry.counters_with_prefix`, this is
        namespace-boundary aware: a scope named ``autocomp.shard1`` never
        matches ``autocomp.shard10.files``, because the scope prefix is
        always followed by a ``.`` separator.  ``prefix`` further narrows
        within the scope (again on a dotted-name boundary or an exact
        name match).
        """
        inner = self._qualify(prefix) if prefix else self._prefix
        candidates = self._parent.counters_with_prefix(inner)
        boundary = f"{inner}."
        return {
            name: value
            for name, value in candidates.items()
            if name == inner or name.startswith(boundary)
        }

    def record(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to the prefixed series."""
        self._parent.record(self._qualify(name), time, value)

    def series(self, name: str) -> MetricSeries:
        """The prefixed series (created empty on first access)."""
        return self._parent.series(self._qualify(name))

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] | None = None
    ) -> None:
        """Record ``value`` into the prefixed histogram."""
        self._parent.observe(self._qualify(name), value, bounds)

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """The prefixed histogram (created empty on first access)."""
        return self._parent.histogram(self._qualify(name), bounds)

    def scoped(self, prefix: str) -> "ScopedTelemetry":
        """A nested scope: ``parent_prefix.prefix.…``."""
        return ScopedTelemetry(self._parent, self._qualify(prefix))
