"""Telemetry: counters and time series for experiments.

Plays the role Logs Analytics plays in the paper's evaluation (§6): every
subsystem records what happened (file counts, GBHr per compaction app, query
latencies, conflict counts) into one :class:`Telemetry` sink, and benchmark
harnesses read it back as :class:`MetricSeries` to print tables and figures.
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass
class MetricSeries:
    """An append-only time series of ``(time, value)`` observations."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def record(self, time: float, value: float) -> None:
        """Record an observation, keeping the series sorted by time.

        Appends in O(1) for the common in-order case; out-of-order records
        (e.g. a long-running job reporting a latency stamped at its *start*
        after shorter jobs already finished) are inserted at the right
        position.
        """
        time = float(time)
        if not self.times or time >= self.times[-1]:
            self.times.append(time)
            self.values.append(float(value))
            return
        index = bisect.bisect_right(self.times, time)
        self.times.insert(index, time)
        self.values.insert(index, float(value))

    def last(self, default: float = math.nan) -> float:
        """Most recent value, or ``default`` if the series is empty."""
        return self.values[-1] if self.values else default

    def between(self, start: float, end: float) -> list[float]:
        """Values observed in the half-open window ``[start, end)``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.values[lo:hi]

    def value_at(self, time: float, default: float = math.nan) -> float:
        """Step-function read: the last value recorded at or before ``time``."""
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return default
        return self.values[idx]

    def bucket(
        self, width: float, end: float | None = None, agg: str = "mean"
    ) -> list[tuple[float, float]]:
        """Aggregate observations into fixed-width buckets starting at t=0.

        Args:
            width: bucket width in seconds (e.g. one hour for Figures 6–8).
            end: horizon; defaults to the last observation time.
            agg: one of ``mean``, ``sum``, ``count``, ``min``, ``max``,
                ``last``.

        Returns:
            ``(bucket_start, aggregate)`` pairs; empty buckets yield NaN for
            ``mean``/``min``/``max``/``last`` and 0 for ``sum``/``count``.
        """
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        horizon = end if end is not None else (self.times[-1] if self.times else 0.0)
        out: list[tuple[float, float]] = []
        start = 0.0
        while start < horizon:
            window = self.between(start, start + width)
            out.append((start, _aggregate(window, agg)))
            start += width
        return out


def _aggregate(values: list[float], agg: str) -> float:
    if agg == "count":
        return float(len(values))
    if agg == "sum":
        return float(sum(values))
    if not values:
        return math.nan
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    if agg == "last":
        return values[-1]
    raise ValueError(f"unknown aggregation {agg!r}")


class Telemetry:
    """Central sink for counters and metric series.

    Counters answer "how many X happened" (conflicts, RPC calls); series
    answer "how did Y evolve over simulated time" (file counts, latencies).
    Both are keyed by plain string names; callers namespace with dots, e.g.
    ``'storage.rpc.open'`` or ``'autocomp.gbhr'``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)
        self._series: dict[str, MetricSeries] = {}

    # --- counters -------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] += amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    # --- series ---------------------------------------------------------------

    def record(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to series ``name`` (creating it)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = MetricSeries(name)
        series.record(time, value)

    def series(self, name: str) -> MetricSeries:
        """The series named ``name`` (an empty one if never recorded)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = MetricSeries(name)
        return series

    def series_names(self, prefix: str = "") -> list[str]:
        """Sorted names of all series starting with ``prefix``."""
        return sorted(name for name in self._series if name.startswith(prefix))

    def merge_values(self, names: Iterable[str]) -> list[float]:
        """Concatenate the values of several series (order: name, then time)."""
        merged: list[float] = []
        for name in names:
            merged.extend(self.series(name).values)
        return merged

    # --- scoping ---------------------------------------------------------------

    def scoped(self, prefix: str) -> "ScopedTelemetry":
        """A view that prefixes every metric name with ``prefix`` + ``.``.

        Used by the scale-out control plane to give each shard its own
        namespace (``autocomp.shard00.…``) inside one shared sink, so
        fleet-level dashboards can aggregate across shards while per-shard
        series stay individually addressable.
        """
        return ScopedTelemetry(self, prefix)


class ScopedTelemetry:
    """A prefixing facade over a parent :class:`Telemetry`.

    All writes and reads delegate to the parent with ``prefix.name``;
    nothing is stored locally, so scoped views are free to create per
    shard / per subsystem.
    """

    def __init__(self, parent: Telemetry, prefix: str) -> None:
        if not prefix:
            raise ValueError("scoped telemetry needs a non-empty prefix")
        self._parent = parent
        self._prefix = prefix.rstrip(".")

    @property
    def prefix(self) -> str:
        """The namespace applied to every metric name."""
        return self._prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the prefixed counter."""
        self._parent.increment(self._qualify(name), amount)

    def counter(self, name: str) -> float:
        """Current value of the prefixed counter."""
        return self._parent.counter(self._qualify(name))

    def record(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to the prefixed series."""
        self._parent.record(self._qualify(name), time, value)

    def series(self, name: str) -> MetricSeries:
        """The prefixed series (created empty on first access)."""
        return self._parent.series(self._qualify(name))

    def scoped(self, prefix: str) -> "ScopedTelemetry":
        """A nested scope: ``parent_prefix.prefix.…``."""
        return ScopedTelemetry(self._parent, self._qualify(prefix))
