"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)``: two events scheduled for the same
instant fire in the order they were scheduled, which keeps simulations
deterministic (NFR2 in the paper) without relying on dict/heap tie-breaking
accidents.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: simulated second at which the event fires.
        sequence: tie-breaker preserving scheduling order at equal times.
        action: zero-argument callable executed when the event fires.
        name: optional label used in tracing and error messages.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)


class EventQueue:
    """Min-heap of :class:`Event` objects with cancellation support."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(self, time: float, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValidationError(f"cannot schedule event at negative time {time}")
        event = Event(time=float(time), sequence=next(self._sequence), action=action, name=name)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event.

        Cancellation is lazy: the event stays in the heap but is skipped when
        popped.  Cancelling an already-fired or unknown event is a no-op.
        """
        self._cancelled.add(event.sequence)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            IndexError: if the queue is empty.
        """
        self._drop_cancelled()
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].sequence in self._cancelled:
            dropped = heapq.heappop(self._heap)
            self._cancelled.discard(dropped.sequence)
