"""Simulated wall clock.

A :class:`SimClock` is a monotonically non-decreasing float of simulated
seconds.  It is deliberately dumb: advancing it is the :class:`~repro.simulation.simulator.Simulator`'s
job, and every other component only ever reads ``clock.now``.
"""

from __future__ import annotations

from repro.errors import ValidationError


class SimClock:
    """Monotonic simulated time in seconds.

    Args:
        start: initial simulated time (seconds).  Defaults to 0.0.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValidationError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValidationError: if ``timestamp`` is in the past — simulated time
                never flows backwards.
        """
        if timestamp < self._now:
            raise ValidationError(
                f"cannot move clock backwards from {self._now} to {timestamp}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValidationError(f"cannot advance clock by negative delta {delta}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
