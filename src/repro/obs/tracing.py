"""Structured spans for the AutoComp control plane.

One daemon cycle produces one trace shaped like the control loop itself::

    cycle
    ├── observe
    │   ├── shard (coordinator-side, one per shard)
    │   │   ├── observe   (worker-side, possibly another process)
    │   │   └── decide    (worker-side, when decide ships with the spec)
    │   └── …
    ├── decide             (global/local selection on the coordinator)
    └── act
        └── rewrite        (one per scheduled compaction job)

The coordinator owns a :class:`Tracer`.  Spans opened on the coordinator
thread nest implicitly via a thread-local stack; work that happens on pool
threads or in worker processes parents explicitly through a
:class:`SpanContext` — a picklable (trace_id, span_id) pair that rides
inside ``ShardWorkSpec`` across the process boundary.  Workers record
their spans with the dependency-free :class:`SpanRecorder`, ship them back
inside ``ShardCycleResult.spans``, and the coordinator stitches them into
the live trace with :meth:`Tracer.adopt` — one trace, correct parentage,
wall-clock times from each side's own ``time.time()``.

Finished traces dump as JSONL (one span per line) and as Chrome
``trace_event`` JSON, which Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` open directly.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Tracer",
    "make_span",
]

# itertools.count.__next__ is atomic under the GIL, so ids need no lock.
_id_counter = itertools.count(1)
# Per-process random salt, re-drawn after fork (a forked child inherits
# the parent's counter position, so salt alone keeps their ids disjoint).
_id_salt = {"pid": None, "salt": 0}


def _new_id() -> str:
    """A process-unique 16-hex-char id (per-process salt + counter)."""
    salt = _id_salt
    pid = os.getpid()
    if salt["pid"] != pid:
        salt["salt"] = int.from_bytes(os.urandom(4), "big") << 32
        salt["pid"] = pid
    return f"{salt['salt'] | (next(_id_counter) & 0xFFFFFFFF):016x}"


@dataclass(frozen=True)
class SpanContext:
    """The picklable coordinates of a span: enough to parent under it.

    This is what crosses the process boundary inside ``ShardWorkSpec`` —
    the worker never sees the coordinator's :class:`Tracer`, only the
    (trace_id, span_id) pair its own spans should hang from.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed operation; ``start_s``/``end_s`` are epoch seconds."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start_s: float = 0.0
    end_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "pid": self.pid,
            "tid": self.tid,
        }

    def to_chrome_event(self) -> dict:
        """A Chrome ``trace_event`` complete event (``ph: "X"``, µs)."""
        return {
            "name": self.name,
            "cat": "autocomp",
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "pid": self.pid,
            "tid": self.tid,
            "args": {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                **self.attrs,
            },
        }


def make_span(
    name: str,
    parent: "Span | SpanContext | None",
    start_s: float,
    end_s: float,
    **attrs,
) -> Span:
    """Build a finished span in one shot (for per-item hot paths).

    Cheaper than a begin/end pair when the caller already holds both
    timestamps; the result still needs :meth:`Tracer.adopt` (or a worker's
    result list) to land in a trace.
    """
    ctx = _resolve_parent(parent)
    return Span(
        name=name,
        trace_id=ctx.trace_id if ctx else _new_id(),
        span_id=_new_id(),
        parent_id=ctx.span_id if ctx else None,
        start_s=start_s,
        end_s=end_s,
        attrs=attrs,
        pid=os.getpid(),
        tid=threading.get_ident() & 0xFFFFFFFF,
    )


def _resolve_parent(parent: "Span | SpanContext | None") -> SpanContext | None:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.context
    return parent


class Tracer:
    """Thread-safe span factory and collector for one coordinator process.

    Spans started without an explicit ``parent`` nest under the innermost
    open span *on the calling thread* (each thread has its own stack, so
    pool threads never steal the coordinator's cycle span by accident —
    cross-thread work passes a parent context explicitly).  ``detached=True``
    skips the stack entirely: the span parents where told but never
    becomes an implicit parent itself, which is what asynchronous jobs
    (simulator-driven rewrites) need.
    """

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._local = threading.local()

    # --- span lifecycle -------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> SpanContext | None:
        """Context of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].context if stack else None

    def begin(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        detached: bool = False,
        **attrs,
    ) -> Span:
        """Open a span; it must later be passed to :meth:`end`."""
        ctx = _resolve_parent(parent) or self.current()
        span = Span(
            name=name,
            trace_id=ctx.trace_id if ctx else _new_id(),
            span_id=_new_id(),
            parent_id=ctx.span_id if ctx else None,
            start_s=self._clock(),
            attrs=attrs,  # the **kwargs dict is already fresh per call
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
        )
        if not detached:
            self._stack().append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close ``span``, stamp its end time, and collect it."""
        span.end_s = self._clock()
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        # Identity search (dataclass __eq__ would deep-compare attrs);
        # the common case is ending the innermost span.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break
        with self._lock:
            self._finished.append(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        detached: bool = False,
        **attrs,
    ) -> Iterator[Span]:
        """``with tracer.span("observe"): …`` — begin/end with cleanup."""
        opened = self.begin(name, parent=parent, detached=detached, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def adopt(self, spans: Iterable[Span]) -> None:
        """Stitch remotely recorded spans (e.g. worker-side) into the trace."""
        incoming = [s for s in spans if isinstance(s, Span)]
        if not incoming:
            return
        with self._lock:
            self._finished.extend(incoming)

    # --- reading / dumping ----------------------------------------------------

    def finished(self) -> list[Span]:
        """All collected spans, oldest first (a copy)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop collected spans (open spans on thread stacks are kept)."""
        with self._lock:
            self._finished.clear()

    def dump_jsonl(self, path: str) -> str:
        """Write one span per line as JSON; atomic replace. Returns path."""
        lines = [json.dumps(span.to_dict(), sort_keys=True) for span in self.finished()]
        _atomic_write(path, "\n".join(lines) + ("\n" if lines else ""))
        return path

    def dump_chrome(self, path: str) -> str:
        """Write Chrome ``trace_event`` JSON (Perfetto-openable); atomic."""
        payload = {
            "displayTimeUnit": "ms",
            "traceEvents": [span.to_chrome_event() for span in self.finished()],
        }
        _atomic_write(path, json.dumps(payload))
        return path


class SpanRecorder:
    """Worker-side span recording under a fixed parent context.

    Process workers cannot (and should not) hold the coordinator's
    :class:`Tracer`; they get a :class:`SpanContext` inside the work spec,
    record their phase spans with this recorder, and return
    :attr:`spans` inside the (picklable) cycle result for the coordinator
    to :meth:`Tracer.adopt`.  Spans recorded sequentially on one worker
    naturally carry non-overlapping wall-clock intervals.
    """

    def __init__(self, context: SpanContext, clock=time.time) -> None:
        self.context = context
        self.spans: list[Span] = []
        self._clock = clock

    @contextmanager
    def span(self, name: str, parent: Span | SpanContext | None = None, **attrs) -> Iterator[Span]:
        ctx = _resolve_parent(parent) or self.context
        span = Span(
            name=name,
            trace_id=ctx.trace_id,
            span_id=_new_id(),
            parent_id=ctx.span_id,
            start_s=self._clock(),
            attrs=attrs,  # the **kwargs dict is already fresh per call
            pid=os.getpid(),
            tid=threading.get_ident() & 0xFFFFFFFF,
        )
        try:
            yield span
        finally:
            span.end_s = self._clock()
            self.spans.append(span)


def _atomic_write(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write(text)
    os.replace(tmp, path)
