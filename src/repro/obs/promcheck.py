"""Strict Prometheus text-exposition checker.

CI runs this over the exporter's ``metrics.prom`` dump so a malformed
exposition (bad metric name, non-cumulative histogram buckets, missing
``+Inf`` bucket, duplicate samples, samples before their ``# TYPE``) fails
the workflow instead of silently breaking whoever scrapes the daemon.

Checks enforced, beyond basic line syntax:

- metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; label names match
  ``[a-zA-Z_][a-zA-Z0-9_]*``; label values are double-quoted with valid
  escapes; sample values parse as floats (``NaN``/``+Inf``/``-Inf`` ok).
- at most one ``# TYPE`` per metric family, and it must precede the
  family's first sample; ``# TYPE`` values are the known Prometheus kinds.
- histogram families expose ``_bucket`` with an ``le`` label, buckets are
  cumulative (non-decreasing by ascending ``le``), the last bucket is
  ``le="+Inf"``, and ``_count`` equals the ``+Inf`` bucket; ``_sum`` and
  ``_count`` are present.
- no duplicate (name, label-set) sample.

Run as a module::

    python -m repro.obs.promcheck metrics.prom [more.prom ...]
"""

from __future__ import annotations

import argparse
import math
import re
import sys

__all__ = ["check_exposition", "main"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
_LABEL_PAIR = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(raw: str) -> float | None:
    if raw in ("NaN", "+Inf", "Inf"):
        return math.nan if raw == "NaN" else math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def _parse_labels(raw: str, lineno: int, errors: list[str]) -> dict[str, str] | None:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR.match(raw, pos)
        if match is None:
            errors.append(f"line {lineno}: malformed label block {raw!r}")
            return None
        name = match.group("name")
        if name in labels:
            errors.append(f"line {lineno}: duplicate label {name!r}")
            return None
        labels[name] = match.group("value")
        pos = match.end()
    return labels


def _family_of(name: str) -> str:
    """The family a sample belongs to (strips histogram/summary suffixes)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_exposition(text: str) -> list[str]:
    """Validate exposition ``text``; returns a list of error strings."""
    errors: list[str] = []
    types: dict[str, str] = {}
    seen_samples: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    family_sampled: set[str] = set()
    # histogram bookkeeping: family -> {"buckets": [(le, value)], "sum": v, "count": v}
    histograms: dict[str, dict] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    errors.append(f"line {lineno}: malformed TYPE comment")
                    continue
                name, kind = parts[2], parts[3].strip()
                if not _METRIC_NAME.match(name):
                    errors.append(f"line {lineno}: invalid metric name {name!r} in TYPE")
                if kind not in _TYPES:
                    errors.append(f"line {lineno}: unknown TYPE {kind!r} for {name}")
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if name in family_sampled:
                    errors.append(f"line {lineno}: TYPE for {name} after its samples")
                types[name] = kind
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not _METRIC_NAME.match(parts[2]):
                    errors.append(f"line {lineno}: malformed HELP comment")
            # other comments are legal and ignored
            continue

        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample line {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {lineno}: invalid sample value {match.group('value')!r}"
            )
            continue
        labels = _parse_labels(match.group("labels") or "", lineno, errors)
        if labels is None:
            continue
        for label in labels:
            if not _LABEL_NAME.match(label):
                errors.append(f"line {lineno}: invalid label name {label!r}")

        family = _family_of(name)
        declared = types.get(family)
        if declared is None and name in types:
            family, declared = name, types[name]
        family_sampled.add(family)
        family_sampled.add(name)

        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{labels!r}")
        seen_samples.add(key)

        if declared == "histogram":
            state = histograms.setdefault(
                family, {"buckets": [], "sum": None, "count": None}
            )
            if name == f"{family}_bucket":
                if "le" not in labels:
                    errors.append(f"line {lineno}: {name} sample missing le label")
                    continue
                bound = _parse_value(labels["le"])
                if bound is None or math.isnan(bound):
                    errors.append(
                        f"line {lineno}: invalid le bound {labels['le']!r}"
                    )
                    continue
                state["buckets"].append((bound, value, lineno))
            elif name == f"{family}_sum":
                state["sum"] = value
            elif name == f"{family}_count":
                state["count"] = value
            elif name == family:
                errors.append(
                    f"line {lineno}: bare sample {name} in histogram family"
                )

    for family, state in sorted(histograms.items()):
        buckets = state["buckets"]
        if not buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        bounds = [b for b, _, _ in buckets]
        if bounds != sorted(bounds):
            errors.append(f"histogram {family}: le bounds not ascending")
        if not math.isinf(bounds[-1]):
            errors.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        counts = [v for _, v, _ in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            errors.append(f"histogram {family}: bucket counts not cumulative")
        if state["count"] is None:
            errors.append(f"histogram {family}: missing _count")
        elif math.isinf(bounds[-1]) and counts[-1] != state["count"]:
            errors.append(
                f"histogram {family}: _count {state['count']} != "
                f"+Inf bucket {counts[-1]}"
            )
        if state["sum"] is None:
            errors.append(f"histogram {family}: missing _sum")

    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="strictly validate Prometheus text exposition files"
    )
    parser.add_argument("paths", nargs="+", help="exposition files to check")
    args = parser.parse_args(argv)
    failed = False
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                text = stream.read()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = check_exposition(text)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            samples = sum(
                1
                for line in text.splitlines()
                if line.strip() and not line.startswith("#")
            )
            print(f"{path}: OK ({samples} samples)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
