"""repro.obs — the production observability plane.

The paper's §6 production story operates AutoComp through its Logs
Analytics metrics; this package is that surface for the reproduction:
structured spans (:mod:`repro.obs.tracing`), the Prometheus/JSONL exporter
(:mod:`repro.obs.exporter`), its strict CI checker
(:mod:`repro.obs.promcheck`), a stdlib HTTP status endpoint
(:mod:`repro.obs.http`) and the ``python -m repro.obs.status <dir>``
operator CLI (:mod:`repro.obs.status`).  Histogram/counter/series storage
itself lives in :class:`repro.simulation.telemetry.Telemetry` (re-exported
here), which is thread-safe and shared by every subsystem.

Metric-name registry
====================

:data:`METRICS` maps every well-known metric name to ``(kind, help)``.
The exporter uses it for ``# HELP`` text, and it is the single place to
discover what the stack emits.  Kinds: ``counter`` (monotonic), ``series``
(timestamped gauge samples), ``histogram`` (fixed-bucket distribution,
``autocomp.hist.*`` — histogram names are namespaced apart from series so
the Prometheus rendering never collides).

Per-shard scopes (``autocomp.shard00.…``) mirror the fleet-level names
under each shard's prefix and are intentionally not enumerated here.
"""

from __future__ import annotations

from repro.simulation.telemetry import (
    BYTES_BOUNDS,
    COUNT_BOUNDS,
    LATENCY_BOUNDS_S,
    RATIO_BOUNDS,
    Histogram,
    MetricSeries,
    ScopedTelemetry,
    Telemetry,
    exponential_bounds,
)

from repro.obs.exporter import MetricsExporter, prom_name, render_prometheus
from repro.obs.http import StatusServer
from repro.obs.promcheck import check_exposition
from repro.obs.status import format_status, load_status_dir
from repro.obs.tracing import Span, SpanContext, SpanRecorder, Tracer

#: Every well-known metric name → (kind, help text for the exporter).
METRICS: dict[str, tuple[str, str]] = {
    # --- cycle / pipeline counters -------------------------------------------
    "autocomp.cycles": ("counter", "Completed single-pipeline OODA cycles"),
    "autocomp.fleet.cycles": ("counter", "Completed sharded (fleet) cycles"),
    "autocomp.results.success": ("counter", "Compaction jobs that committed"),
    "autocomp.results.conflict": ("counter", "Compaction jobs lost to commit conflicts"),
    "autocomp.results.skipped": ("counter", "Compaction jobs skipped by the scheduler"),
    "autocomp.act.gated": ("counter", "Selected candidates dropped by act gates"),
    # --- daemon / service counters -------------------------------------------
    "autocomp.daemon.cycle_errors": ("counter", "Daemon cycles that raised and were survived"),
    "autocomp.daemon.lock_contended": ("counter", "Act-phase lock acquisitions that lost the race"),
    "autocomp.service.overlap_skips": ("counter", "Notification-triggered cycles skipped while one was in flight"),
    "autocomp.admission.admitted": ("counter", "Candidates admitted by the fairness controller"),
    "autocomp.admission.deferred": ("counter", "Candidates deferred by the fairness controller"),
    # --- policy-plane (promoter) counters / series ----------------------------
    "autocomp.promoter.shadow_evals": ("counter", "Shadow evaluations of the candidate pool"),
    "autocomp.promoter.promotions": ("counter", "Policy promotions committed (guard window opened)"),
    "autocomp.promoter.rollbacks": ("counter", "Guarded promotions rolled back on metric degradation"),
    "autocomp.promoter.guard_passes": ("counter", "Guard windows closed with the promoted policy confirmed"),
    "autocomp.promoter.holds": ("counter", "Promoter ticks that held the active policy (no clear winner / guard open)"),
    "autocomp.promoter.step_errors": ("counter", "Promoter ticks that raised and were survived"),
    "autocomp.promoter.active_version": ("series", "Active policy-store version over time"),
    # --- lock-manager counters (mirror the audit-log events) ------------------
    "autocomp.locks.acquire": ("counter", "Lock acquisitions (audit event: acquire)"),
    "autocomp.locks.release": ("counter", "Lock releases (audit event: release)"),
    "autocomp.locks.contend": ("counter", "Lock contentions (audit event: contend)"),
    "autocomp.locks.reclaim": ("counter", "Stale locks reclaimed (audit event: reclaim)"),
    "autocomp.locks.compact_commit": ("counter", "Compactions committed under a lock (audit event: compact_commit)"),
    # --- series (timestamped gauges) -----------------------------------------
    "autocomp.cycle.candidates": ("series", "Candidates observed per single-pipeline cycle"),
    "autocomp.cycle.selected": ("series", "Candidates selected per single-pipeline cycle"),
    "autocomp.fleet.candidates": ("series", "Candidates observed per fleet cycle"),
    "autocomp.fleet.selected": ("series", "Candidates selected per fleet cycle"),
    "autocomp.fleet.cycle_wall_s": ("series", "Fleet cycle wall-clock seconds"),
    "autocomp.fleet.observe_wall.threads": ("series", "Observe-phase wall seconds (thread workers)"),
    "autocomp.fleet.observe_wall.processes": ("series", "Observe-phase wall seconds (process workers)"),
    "autocomp.fleet.worker_mode": ("series", "Worker mode per cycle (0=threads, 1=processes)"),
    "autocomp.fleet.returned_candidates": ("series", "Candidates returned from process workers per cycle"),
    "autocomp.fleet.cache_hit_ratio": ("series", "Stats-cache hit ratio per fleet cycle"),
    "autocomp.files_reduced": ("series", "Net file-count reduction per committed job"),
    "autocomp.gbhr": ("series", "GB-hours consumed per committed job"),
    # --- histograms (fixed-bucket distributions) ------------------------------
    "autocomp.hist.observe_wall_s": ("histogram", "Observe-phase wall seconds"),
    "autocomp.hist.pack_wall_s": ("histogram", "Worker-transport encode (export/pack) wall seconds per shard"),
    "autocomp.hist.unpack_wall_s": ("histogram", "Worker-transport decode (merge/unpack) wall seconds per shard"),
    "autocomp.hist.decide_wall_s": ("histogram", "Decide-phase wall seconds"),
    "autocomp.hist.act_wall_s": ("histogram", "Act-phase wall seconds"),
    "autocomp.hist.cycle_wall_s": ("histogram", "Full-cycle wall seconds"),
    "autocomp.hist.lock_wait_s": ("histogram", "Lock-manager acquire wait seconds"),
    "autocomp.hist.rewrite_bytes": ("histogram", "Bytes rewritten per committed compaction job"),
    "autocomp.hist.cache_hit_ratio": ("histogram", "Stats-cache hit ratio per fleet cycle"),
    "autocomp.hist.promoter_eval_wall_s": ("histogram", "Shadow-evaluation wall seconds per promoter tick"),
    "autocomp.hist.admission_admitted": ("histogram", "Candidates admitted per admission decision"),
    "autocomp.hist.admission_deferred": ("histogram", "Candidates deferred per admission decision"),
}

__all__ = [
    "BYTES_BOUNDS",
    "COUNT_BOUNDS",
    "LATENCY_BOUNDS_S",
    "METRICS",
    "RATIO_BOUNDS",
    "Histogram",
    "MetricSeries",
    "MetricsExporter",
    "ScopedTelemetry",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "StatusServer",
    "Telemetry",
    "Tracer",
    "check_exposition",
    "exponential_bounds",
    "format_status",
    "load_status_dir",
    "prom_name",
    "render_prometheus",
]
