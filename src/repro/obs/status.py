"""Read back an observability directory: ``python -m repro.obs.status <dir>``.

The daemon's :class:`~repro.obs.exporter.MetricsExporter` leaves a
self-describing directory behind (``status.json``, ``metrics.prom``,
``metrics.jsonl``, ``trace.jsonl``); this module is the operator's view of
it — a one-screen summary of what the daemon was doing at its last export,
without attaching to the process.

Exit code 0 when ``status.json`` is present and parseable, 1 otherwise —
so the CLI doubles as a liveness probe for the export pipeline itself.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

__all__ = ["load_status_dir", "format_status", "main"]


def load_status_dir(path: str) -> dict:
    """Collect everything readable from an exporter output directory.

    Returns a dict with ``status`` (parsed ``status.json`` or None),
    ``metrics_prom`` (sample-line count or None), ``snapshots`` (line
    count of ``metrics.jsonl``), ``last_snapshot`` (parsed last line),
    ``trace_spans`` (line count of ``trace.jsonl``), and ``errors``.
    """
    out: dict = {
        "dir": path,
        "status": None,
        "metrics_prom": None,
        "snapshots": 0,
        "last_snapshot": None,
        "trace_spans": 0,
        "errors": [],
    }
    status_path = os.path.join(path, "status.json")
    try:
        with open(status_path, "r", encoding="utf-8") as stream:
            out["status"] = json.load(stream)
    except FileNotFoundError:
        out["errors"].append(f"missing {status_path}")
    except (OSError, ValueError) as exc:
        out["errors"].append(f"unreadable {status_path}: {exc}")

    prom_path = os.path.join(path, "metrics.prom")
    try:
        with open(prom_path, "r", encoding="utf-8") as stream:
            out["metrics_prom"] = sum(
                1
                for line in stream
                if line.strip() and not line.startswith("#")
            )
    except OSError:
        pass

    jsonl_path = os.path.join(path, "metrics.jsonl")
    try:
        with open(jsonl_path, "r", encoding="utf-8") as stream:
            last = None
            for line in stream:
                if line.strip():
                    out["snapshots"] += 1
                    last = line
            if last is not None:
                try:
                    out["last_snapshot"] = json.loads(last)
                except ValueError:
                    out["errors"].append(f"corrupt last line in {jsonl_path}")
    except OSError:
        pass

    trace_path = os.path.join(path, "trace.jsonl")
    try:
        with open(trace_path, "r", encoding="utf-8") as stream:
            out["trace_spans"] = sum(1 for line in stream if line.strip())
    except OSError:
        pass

    return out


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:.6g}"
    return str(value)


def format_status(loaded: dict) -> str:
    """Render :func:`load_status_dir` output as a one-screen report."""
    lines = [f"observability dir: {loaded['dir']}"]
    status = loaded.get("status")
    if status:
        for key in (
            "owner",
            "running",
            "cycles_run",
            "cycle_errors",
            "cycle_in_flight",
            "overlap_skips",
            "interval_s",
        ):
            if key in status:
                lines.append(f"  {key}: {_fmt(status[key])}")
        held = status.get("held_locks")
        if held is not None:
            lines.append(f"  held_locks: {', '.join(held) if held else '(none)'}")
        summaries = status.get("histograms") or {}
        if summaries:
            lines.append("  last-export histogram summaries:")
            for name in sorted(summaries):
                s = summaries[name]
                lines.append(
                    f"    {name}: count={_fmt(s.get('count'))}"
                    f" p50={_fmt(s.get('p50'))} p95={_fmt(s.get('p95'))}"
                    f" p99={_fmt(s.get('p99'))} max={_fmt(s.get('max'))}"
                )
    else:
        lines.append("  (no status.json)")
    lines.append(
        f"  exports: {loaded['snapshots']} snapshots,"
        f" {_fmt(loaded['metrics_prom'])} prometheus samples,"
        f" {loaded['trace_spans']} trace spans"
    )
    for error in loaded["errors"]:
        lines.append(f"  ERROR: {error}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="summarise an AutoComp observability directory"
    )
    parser.add_argument("dir", help="exporter output directory")
    parser.add_argument(
        "--json", action="store_true", help="emit the raw collected dict as JSON"
    )
    args = parser.parse_args(argv)
    loaded = load_status_dir(args.dir)
    if args.json:
        print(json.dumps(loaded, indent=2, sort_keys=True, default=str))
    else:
        print(format_status(loaded))
    return 1 if loaded["status"] is None else 0


if __name__ == "__main__":
    sys.exit(main())
