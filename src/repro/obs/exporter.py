"""Metrics exporter: Prometheus text exposition + JSONL snapshots.

The :class:`MetricsExporter` is the daemon's bridge from the in-process
:class:`~repro.simulation.telemetry.Telemetry` sink to on-disk files a
scrape job, dashboard or human can read while the daemon keeps running:

- ``metrics.prom`` — the whole sink in Prometheus text exposition format
  (counters → ``counter``, series → last-value ``gauge``, histograms →
  ``_bucket``/``_sum``/``_count`` families).
- ``metrics.jsonl`` — a bounded ring of timestamped snapshots, one JSON
  object per line (counters, last series values, histogram summaries).
- ``trace.jsonl`` / ``trace.chrome.json`` — the attached tracer's spans,
  when a tracer is wired in.
- ``status.json`` — the daemon's ``status()`` report, when wired in.

Every file is written to a temp path and atomically renamed into place,
so a reader never sees a half-written exposition.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from collections import deque
from typing import Callable

from repro.simulation.telemetry import Histogram, Telemetry

__all__ = [
    "MetricsExporter",
    "prom_name",
    "render_prometheus",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: How many JSONL snapshots ``metrics.jsonl`` retains (oldest dropped).
SNAPSHOT_RING = 4096


def prom_name(name: str) -> str:
    """Map a dotted metric name to a valid Prometheus metric name."""
    candidate = _NAME_SANITIZE.sub("_", name)
    if not _NAME_OK.match(candidate):
        candidate = f"_{candidate}"
    return candidate


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    formatted = repr(float(value))
    return formatted[:-2] if formatted.endswith(".0") else formatted


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _help_for(name: str) -> str:
    from repro.obs import METRICS  # lazy: the registry lives in the package root

    spec = METRICS.get(name)
    if spec is not None:
        return spec[1]
    return f"autocomp metric {name}"


def _render_histogram(lines: list[str], base: str, hist: Histogram) -> None:
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cumulative += count
        lines.append(
            f'{base}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
        )
    cumulative += hist.counts[-1]
    lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{base}_sum {_format_value(hist.total)}")
    lines.append(f"{base}_count {hist.count}")


def render_prometheus(telemetry: Telemetry) -> str:
    """Render the whole sink as Prometheus text exposition format.

    Counters render as ``counter``, series as a ``gauge`` holding the most
    recent value, histograms as full ``_bucket``/``_sum``/``_count``
    families.  Name collisions after sanitisation (two dotted names
    mapping to one Prometheus name, or a histogram whose family names
    collide with a counter) are skipped with an explanatory comment rather
    than emitting an invalid exposition.
    """
    snap = telemetry.snapshot()
    lines: list[str] = []
    emitted: set[str] = set()

    def claim(*names: str) -> bool:
        if any(n in emitted for n in names):
            return False
        emitted.update(names)
        return True

    for name in sorted(snap["counters"]):
        base = prom_name(name)
        if not claim(base):
            lines.append(f"# skipped duplicate metric name {base} (from {name})")
            continue
        lines.append(f"# HELP {base} {_escape_help(_help_for(name))}")
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format_value(snap['counters'][name])}")

    for name in sorted(snap["series"]):
        times, values = snap["series"][name]
        base = prom_name(name)
        if not claim(base):
            lines.append(f"# skipped duplicate metric name {base} (from {name})")
            continue
        lines.append(f"# HELP {base} {_escape_help(_help_for(name))}")
        lines.append(f"# TYPE {base} gauge")
        last = values[-1] if values else math.nan
        lines.append(f"{base} {_format_value(last)}")

    for name in sorted(snap["histograms"]):
        hist = snap["histograms"][name]
        base = prom_name(name)
        family = (base, f"{base}_bucket", f"{base}_sum", f"{base}_count")
        if not claim(*family):
            lines.append(f"# skipped duplicate metric name {base} (from {name})")
            continue
        lines.append(f"# HELP {base} {_escape_help(_help_for(name))}")
        lines.append(f"# TYPE {base} histogram")
        _render_histogram(lines, base, hist)

    return "\n".join(lines) + "\n"


def _atomic_write(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write(text)
    os.replace(tmp, path)


class MetricsExporter:
    """Periodically snapshot a telemetry sink (and tracer) to files.

    Runs a daemon thread that calls :meth:`export_once` every
    ``interval_s`` seconds; :meth:`stop` performs one final export so the
    on-disk state always reflects the shutdown moment.  Also usable
    one-shot (construct, call :meth:`export_once`) without starting the
    thread.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        out_dir: str,
        tracer=None,
        interval_s: float = 10.0,
        status_fn: Callable[[], dict] | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"export interval must be positive, got {interval_s}")
        self.telemetry = telemetry
        self.out_dir = out_dir
        self.tracer = tracer
        self.interval_s = interval_s
        self.status_fn = status_fn
        self.exports = 0
        self.export_errors = 0
        self._clock = clock
        self._snapshots: deque[dict] = deque(maxlen=SNAPSHOT_RING)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # --- paths ----------------------------------------------------------------

    @property
    def prom_path(self) -> str:
        return os.path.join(self.out_dir, "metrics.prom")

    @property
    def jsonl_path(self) -> str:
        return os.path.join(self.out_dir, "metrics.jsonl")

    @property
    def trace_jsonl_path(self) -> str:
        return os.path.join(self.out_dir, "trace.jsonl")

    @property
    def trace_chrome_path(self) -> str:
        return os.path.join(self.out_dir, "trace.chrome.json")

    @property
    def status_path(self) -> str:
        return os.path.join(self.out_dir, "status.json")

    # --- exporting ------------------------------------------------------------

    def export_once(self) -> dict[str, str]:
        """Write every export file now; returns ``{kind: path}``."""
        os.makedirs(self.out_dir, exist_ok=True)
        written: dict[str, str] = {}

        _atomic_write(self.prom_path, render_prometheus(self.telemetry))
        written["prom"] = self.prom_path

        snap = self.telemetry.snapshot()
        self._snapshots.append(
            {
                "ts": self._clock(),
                "counters": snap["counters"],
                "series_last": {
                    name: (values[-1] if values else None)
                    for name, (_, values) in snap["series"].items()
                },
                "histograms": {
                    name: hist.summary()
                    for name, hist in snap["histograms"].items()
                },
            }
        )
        _atomic_write(
            self.jsonl_path,
            "".join(
                json.dumps(_json_safe(entry), sort_keys=True) + "\n"
                for entry in self._snapshots
            ),
        )
        written["jsonl"] = self.jsonl_path

        if self.tracer is not None:
            self.tracer.dump_jsonl(self.trace_jsonl_path)
            self.tracer.dump_chrome(self.trace_chrome_path)
            written["trace_jsonl"] = self.trace_jsonl_path
            written["trace_chrome"] = self.trace_chrome_path

        if self.status_fn is not None:
            status = self.status_fn()
            _atomic_write(
                self.status_path,
                json.dumps(_json_safe(status), indent=2, sort_keys=True) + "\n",
            )
            written["status"] = self.status_path

        self.exports += 1
        return written

    # --- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start the periodic export thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="autocomp-metrics-exporter", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and write one final export (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(5.0, self.interval_s * 2))
            self._thread = None
        try:
            self.export_once()
        except OSError:
            self.export_errors += 1

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.export_once()
            except OSError:
                # Disk hiccups must not kill the export cadence.
                self.export_errors += 1


def _json_safe(value):
    """Recursively replace non-finite floats (JSON has no NaN/Inf)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value
