"""A tiny stdlib HTTP surface for daemon health, status and metrics.

Three read-only endpoints, enough for a load balancer probe, a human with
``curl``, or a Prometheus scrape job:

- ``GET /healthz`` — ``200 ok`` while the server is up.
- ``GET /status`` — the daemon's ``status()`` report as JSON.
- ``GET /metrics`` — the telemetry sink in Prometheus text exposition.

Built on :class:`http.server.ThreadingHTTPServer` so it needs nothing the
standard library doesn't ship; binds an ephemeral port by default (read
the bound address from :meth:`StatusServer.start`'s return value).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["StatusServer"]


def _json_safe(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class StatusServer:
    """Serve ``/healthz``, ``/status`` and ``/metrics`` from callables.

    ``status_fn`` returns the status dict; ``metrics_fn`` (optional)
    returns the Prometheus exposition text.  Handlers call them per
    request, so responses always reflect live state.
    """

    def __init__(
        self,
        status_fn: Callable[[], dict],
        metrics_fn: Callable[[], str] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.status_fn = status_fn
        self.metrics_fn = metrics_fn
        self.host = host
        self.port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int] | None:
        """``(host, port)`` once started, else None."""
        if self._server is None:
            return None
        return self._server.server_address[:2]

    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns ``(host, port)``."""
        if self._server is not None:
            return self.address  # already running; idempotent

        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/healthz":
                        self._send(200, "text/plain; charset=utf-8", "ok\n")
                    elif path == "/status":
                        body = json.dumps(
                            _json_safe(outer.status_fn()), indent=2, sort_keys=True
                        )
                        self._send(200, "application/json", body + "\n")
                    elif path == "/metrics" and outer.metrics_fn is not None:
                        self._send(
                            200,
                            "text/plain; version=0.0.4; charset=utf-8",
                            outer.metrics_fn(),
                        )
                    else:
                        self._send(404, "text/plain; charset=utf-8", "not found\n")
                except Exception as exc:  # surface handler bugs to the client
                    self._send(500, "text/plain; charset=utf-8", f"error: {exc}\n")

            def _send(self, code: int, content_type: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:
                pass  # keep daemon stderr quiet

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="autocomp-status-http",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent)."""
        server = self._server
        if server is None:
            return
        server.shutdown()
        server.server_close()
        self._server = None
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StatusServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
