"""Shared unit constants and formatting helpers.

All byte quantities in the library are plain integers counted in bytes and
all simulated durations are floats counted in seconds.  These constants keep
call sites readable (``3 * HOUR``, ``512 * MiB``) and are the single source
of truth for the defaults the paper uses throughout its evaluation:

* the compaction *target file size* of 512 MB (§2, §6), and
* the *small file* threshold of 128 MB, the HDFS block size LinkedIn uses to
  report the fraction of small files (§2, Figure 2).
"""

from __future__ import annotations

# --- byte units ------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024**2
GiB: int = 1024**3
TiB: int = 1024**4

#: Default compaction target file size used across the paper (512 MB).
DEFAULT_TARGET_FILE_SIZE: int = 512 * MiB

#: Files below this size count as "small" in storage-health metrics (128 MB).
SMALL_FILE_THRESHOLD: int = 128 * MiB

# --- time units (simulated seconds) -----------------------------------------

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY
#: A simulation "month" is 30 days; production charts in §7 use months.
MONTH: float = 30 * DAY


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``'512.0 MiB'``.

    Negative values are rendered with a leading minus sign; values below one
    KiB are rendered as integers of bytes.
    """
    sign = "-" if num_bytes < 0 else ""
    value = abs(float(num_bytes))
    for unit, size in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if value >= size:
            return f"{sign}{value / size:.1f} {unit}"
    return f"{sign}{int(value)} B"


def format_duration(seconds: float) -> str:
    """Render a duration in the largest sensible unit, e.g. ``'2.5 h'``."""
    sign = "-" if seconds < 0 else ""
    value = abs(float(seconds))
    for unit, size in (("d", DAY), ("h", HOUR), ("min", MINUTE)):
        if value >= size:
            return f"{sign}{value / size:.1f} {unit}"
    return f"{sign}{value:.1f} s"
