"""Series transforms used by the production charts (Figures 10–11)."""

from __future__ import annotations

from repro.errors import ValidationError


def normalize_series(values: list[float]) -> list[float]:
    """Min-max normalise into [0, 1] (constant series → all zeros).

    The paper's production figures plot normalised values so different
    units (file counts, TBHr, deployment size) share one y-axis.
    """
    if not values:
        return []
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return [0.0] * len(values)
    return [(v - low) / span for v in values]


def moving_average(values: list[float], window: int) -> list[float]:
    """Trailing moving average (window clipped at the series start).

    Figure 11a plots *smoothed* normalised metrics; this is that smoothing.

    Raises:
        ValidationError: for non-positive windows.
    """
    if window <= 0:
        raise ValidationError(f"window must be positive, got {window}")
    out = []
    acc = 0.0
    for i, value in enumerate(values):
        acc += value
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


def relative_change(before: float, after: float) -> float:
    """``(after − before) / before``.

    Raises:
        ValidationError: when ``before`` is zero.
    """
    if before == 0:
        raise ValidationError("relative change from zero baseline")
    return (after - before) / before
