"""Series transforms used by the production charts (Figures 10–11)."""

from __future__ import annotations

from repro.errors import ValidationError


def normalize_series(values: list[float]) -> list[float]:
    """Min-max normalise into [0, 1] (constant series → all zeros).

    The paper's production figures plot normalised values so different
    units (file counts, TBHr, deployment size) share one y-axis.
    """
    if not values:
        return []
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return [0.0] * len(values)
    return [(v - low) / span for v in values]


def moving_average(values: list[float], window: int) -> list[float]:
    """Trailing moving average (window clipped at the series start).

    Figure 11a plots *smoothed* normalised metrics; this is that smoothing.

    Raises:
        ValidationError: for non-positive windows.
    """
    if window <= 0:
        raise ValidationError(f"window must be positive, got {window}")
    out = []
    acc = 0.0
    for i, value in enumerate(values):
        acc += value
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


def relative_change(before: float, after: float) -> float:
    """``(after − before) / before``.

    Raises:
        ValidationError: when ``before`` is zero.
    """
    if before == 0:
        raise ValidationError("relative change from zero baseline")
    return (after - before) / before


def write_amplification(rewritten_bytes: float, ingested_bytes: float) -> float:
    """Bytes rewritten by compaction per byte the workload ingested.

    The classic LSM maintenance-cost metric: a policy that compacts the
    same data repeatedly amplifies writes without improving file counts.
    Zero ingest yields 0 (nothing was written, nothing to amplify against).

    Raises:
        ValidationError: for negative inputs.
    """
    if rewritten_bytes < 0 or ingested_bytes < 0:
        raise ValidationError("byte totals must be >= 0")
    if ingested_bytes == 0:
        return 0.0
    return rewritten_bytes / ingested_bytes


def task_failure_rate(failures: int, tasks: int) -> float:
    """Failed act-phase tasks over all executed tasks (0 when none ran).

    Raises:
        ValidationError: when ``failures`` exceeds ``tasks`` or either is
            negative.
    """
    if failures < 0 or tasks < 0 or failures > tasks:
        raise ValidationError(f"invalid failure/tasks pair ({failures}/{tasks})")
    if tasks == 0:
        return 0.0
    return failures / tasks


def reduction_efficiency(files_reduced: float, gbhr: float) -> float:
    """Files removed per GBHr of compute spent (0 when nothing was spent).

    The benefit-per-cost scalar the what-if runner ranks policy variants
    by default; higher is better.

    Raises:
        ValidationError: for negative compute.
    """
    if gbhr < 0:
        raise ValidationError("gbhr must be >= 0")
    if gbhr == 0:
        return 0.0
    return files_reduced / gbhr
