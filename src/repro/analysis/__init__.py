"""Analysis and reporting utilities for experiments.

Turns telemetry into the paper's figures: file-size histograms with the
Figure 1/2 bucket edges, candlestick (min/p25/median/p75/max) summaries for
Figure 8, min-max-normalised and smoothed series for Figures 10–11, and
ASCII renderers so every bench prints a readable chart next to its numbers.
"""

from repro.analysis.distributions import (
    PAPER_BUCKETS_MIB,
    candlestick,
    percentile,
    size_histogram,
)
from repro.analysis.metrics import (
    moving_average,
    normalize_series,
    reduction_efficiency,
    relative_change,
    task_failure_rate,
    write_amplification,
)
from repro.analysis.reporting import bar_chart, render_table, series_chart, sparkline

__all__ = [
    "PAPER_BUCKETS_MIB",
    "bar_chart",
    "candlestick",
    "moving_average",
    "normalize_series",
    "percentile",
    "reduction_efficiency",
    "relative_change",
    "render_table",
    "series_chart",
    "size_histogram",
    "sparkline",
    "task_failure_rate",
    "write_amplification",
]
