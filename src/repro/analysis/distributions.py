"""File-size distributions and latency summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.units import MiB

#: Bucket upper edges (MiB) used for the Figure 1/2 style distributions.
PAPER_BUCKETS_MIB: tuple[int, ...] = (16, 32, 64, 128, 256, 512)


def size_histogram(
    sizes_bytes: list[int], bucket_edges_mib: tuple[int, ...] = PAPER_BUCKETS_MIB
) -> dict[str, int]:
    """Histogram of file sizes over MiB bucket edges.

    Args:
        sizes_bytes: file sizes in bytes.
        bucket_edges_mib: ascending bucket upper edges in MiB; an overflow
            bucket is appended automatically.

    Returns:
        Ordered mapping of bucket label to count, e.g. ``'<16MiB'``,
        ``'16-32MiB'``, …, ``'>=512MiB'``.
    """
    edges = sorted(int(e) for e in bucket_edges_mib)
    if not edges:
        raise ValidationError("need at least one bucket edge")
    labels = [f"<{edges[0]}MiB"]
    labels += [f"{lo}-{hi}MiB" for lo, hi in zip(edges, edges[1:])]
    labels.append(f">={edges[-1]}MiB")
    counts = dict.fromkeys(labels, 0)
    for size in sizes_bytes:
        size_mib = size / MiB
        for edge, label in zip(edges, labels):
            if size_mib < edge:
                counts[label] += 1
                break
        else:
            counts[labels[-1]] += 1
    return counts


def fraction_below(sizes_bytes: list[int], threshold_bytes: int) -> float:
    """Share of files smaller than ``threshold_bytes`` (0 for empty input)."""
    if not sizes_bytes:
        return 0.0
    return sum(1 for s in sizes_bytes if s < threshold_bytes) / len(sizes_bytes)


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 100]).

    Raises:
        ValidationError: on empty input or out-of-range ``q``.
    """
    if not values:
        raise ValidationError("percentile of empty list")
    if not 0 <= q <= 100:
        raise ValidationError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class Candlestick:
    """Five-number summary, as plotted per hour in Figure 8."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    @property
    def spread(self) -> float:
        """Max − min: the execution-time variability the paper tracks."""
        return self.maximum - self.minimum

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.p75 - self.p25


def candlestick(values: list[float]) -> Candlestick:
    """Five-number summary of ``values``.

    Raises:
        ValidationError: on empty input.
    """
    if not values:
        raise ValidationError("candlestick of empty list")
    return Candlestick(
        minimum=min(values),
        p25=percentile(values, 25),
        median=percentile(values, 50),
        p75=percentile(values, 75),
        maximum=max(values),
    )
