"""ASCII rendering for benchmark output.

Benches print each figure as text so a terminal run of
``pytest benchmarks/`` shows the reproduced shapes directly: bar charts for
distributions, line-ish sparkline/series charts for time series, and
aligned tables for numeric comparisons.
"""

from __future__ import annotations

from repro.errors import ValidationError

#: Eight-level block characters for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def render_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned text table.

    Args:
        headers: column titles.
        rows: cell values (stringified); each row must match the header
            count.
    """
    table = [list(map(str, headers))] + [[str(c) for c in row] for row in rows]
    for row in table:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} does not match header count {len(headers)}"
            )
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def bar_chart(
    labels: list[str], values: list[float], width: int = 40, unit: str = ""
) -> str:
    """Horizontal bar chart with one row per label."""
    if len(labels) != len(values):
        raise ValidationError("labels and values must align")
    if width <= 0:
        raise ValidationError("width must be positive")
    if not values:
        return "(empty)"
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else round(value / peak * width)
        bar = "█" * length
        suffix = f" {value:g}{unit}"
        lines.append(f"{label.rjust(label_width)} | {bar}{suffix}")
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """One-line sparkline of a series (empty string for empty input)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _BLOCKS[0] * len(values)
    out = []
    for value in values:
        index = int((value - low) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def series_chart(
    series: dict[str, list[float]], width: int | None = None, height: int = 10
) -> str:
    """Multi-series ASCII chart: one sparkline row per series, aligned.

    Args:
        series: name → values; series may have different lengths.
        width: downsample each series to this many points (None = natural).
        height: accepted for API symmetry; sparklines are one row high.
    """
    if not series:
        return "(no series)"
    name_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        shown = _downsample(values, width) if width else values
        lines.append(f"{name.rjust(name_width)} | {sparkline(shown)}")
    return "\n".join(lines)


def _downsample(values: list[float], width: int) -> list[float]:
    if width <= 0:
        raise ValidationError("width must be positive")
    if len(values) <= width:
        return list(values)
    bucket = len(values) / width
    out = []
    for i in range(width):
        lo = int(i * bucket)
        hi = max(int((i + 1) * bucket), lo + 1)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out
