"""AutoComp: automated data compaction for log-structured tables.

A full reproduction of the SIGMOD 2025 paper "AutoComp: Automated Data
Compaction for Log-Structured Tables in Data Lakes", including every
substrate it runs on — a simulated distributed filesystem, Iceberg-like
and Delta-like table formats, an OpenHouse-like catalog, a Spark-like
engine cost model, workload generators, and a production-fleet simulator —
all driven by one deterministic discrete-event core.

Quick start::

    from repro import Catalog, Cluster, openhouse_pipeline

    catalog = Catalog()
    catalog.create_database("analytics", quota_objects=100_000)
    # ... create tables, run workloads ...
    pipeline = openhouse_pipeline(catalog, Cluster("compaction", executors=3))
    report = pipeline.run_cycle()

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper's evaluation.
"""

from repro.catalog import Catalog, DataServices, TablePolicy
from repro.core import (
    AutoCompPipeline,
    AutoCompService,
    BudgetSelector,
    CandidateScope,
    LstConnector,
    LstExecutionBackend,
    Objective,
    OptimizeAfterWriteHook,
    PeriodicTrigger,
    QuotaAwareWeightedSumPolicy,
    ThresholdPolicy,
    TopKSelector,
    WeightedSumPolicy,
    openhouse_pipeline,
)
from repro.engine import Cluster, CostModel, EngineSession
from repro.lst import (
    DeltaTable,
    Field,
    IcebergTable,
    MonthTransform,
    PartitionField,
    PartitionSpec,
    Schema,
    TableIdentifier,
)
from repro.simulation import SimClock, Simulator, Telemetry
from repro.storage import SimulatedFileSystem

__version__ = "1.0.0"

__all__ = [
    "AutoCompPipeline",
    "AutoCompService",
    "BudgetSelector",
    "CandidateScope",
    "Catalog",
    "Cluster",
    "CostModel",
    "DataServices",
    "DeltaTable",
    "EngineSession",
    "Field",
    "IcebergTable",
    "LstConnector",
    "LstExecutionBackend",
    "MonthTransform",
    "Objective",
    "OptimizeAfterWriteHook",
    "PartitionField",
    "PartitionSpec",
    "PeriodicTrigger",
    "QuotaAwareWeightedSumPolicy",
    "Schema",
    "SimClock",
    "SimulatedFileSystem",
    "Simulator",
    "TableIdentifier",
    "TablePolicy",
    "Telemetry",
    "ThresholdPolicy",
    "TopKSelector",
    "WeightedSumPolicy",
    "openhouse_pipeline",
    "__version__",
]
