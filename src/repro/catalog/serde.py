"""JSON-safe serialization of catalog metadata for trace capture/replay.

The Policy Lab's catalog traces (:mod:`repro.replay.catalog_trace`) must
round-trip everything a :class:`~repro.catalog.catalog.Catalog` needs to
recreate a table *exactly*: schema, partition spec (including transform
parameters), maintenance policy and the JSON-safe table properties.  These
helpers are the single serialization seam — the catalog publishes through
them and the replayer parses through them, so the two cannot drift.

Only plain lists/dicts of JSON scalars are produced, matching the
canonical-JSONL trace format.
"""

from __future__ import annotations

import dataclasses
import re

from repro.catalog.policies import TablePolicy
from repro.errors import ValidationError
from repro.lst.partitioning import (
    BucketTransform,
    DayTransform,
    IdentityTransform,
    MonthTransform,
    PartitionField,
    PartitionSpec,
    Transform,
)
from repro.lst.schema import Field, Schema

_BUCKET_RE = re.compile(r"^bucket\[(\d+)\]$")


def serialize_schema(schema: Schema) -> list[list[str]]:
    """``[[name, type, doc], ...]`` in schema order."""
    return [[f.name, f.type, f.doc] for f in schema.fields]


def parse_schema(columns: list) -> Schema:
    """Rebuild a :class:`~repro.lst.schema.Schema` from its serialized form."""
    return Schema.of(*(Field(name, type_, doc) for name, type_, doc in columns))


def serialize_spec(spec: PartitionSpec) -> list[list[str]]:
    """``[[source, transform_name, field_name], ...]`` in spec order."""
    return [[f.source, f.transform.name, f.name] for f in spec.fields]


def _parse_transform(name: str) -> Transform:
    if name == "identity":
        return IdentityTransform()
    if name == "month":
        return MonthTransform()
    if name == "day":
        return DayTransform()
    match = _BUCKET_RE.match(name)
    if match:
        return BucketTransform(int(match.group(1)))
    raise ValidationError(f"unknown partition transform {name!r} in trace")


def parse_spec(fields: list) -> PartitionSpec:
    """Rebuild a :class:`~repro.lst.partitioning.PartitionSpec`."""
    if not fields:
        return PartitionSpec.unpartitioned()
    return PartitionSpec.of(
        *(
            PartitionField(source, _parse_transform(transform), name)
            for source, transform, name in fields
        )
    )


def serialize_policy(policy: TablePolicy) -> dict:
    """A table policy as a plain field dict."""
    return dataclasses.asdict(policy)


def parse_policy(payload: dict) -> TablePolicy:
    """Rebuild a :class:`~repro.catalog.policies.TablePolicy`."""
    return TablePolicy(**payload)


def serialize_properties(properties: dict) -> dict:
    """The JSON-safe subset of a table's properties (scalars only)."""
    return {
        key: value
        for key, value in properties.items()
        if isinstance(value, (str, int, float, bool))
    }


def serialize_cluster(cluster) -> dict:
    """A :class:`~repro.engine.cluster.Cluster`'s configuration fields."""
    return {
        "name": cluster.name,
        "executors": cluster.executors,
        "executor_memory_gb": cluster.executor_memory_gb,
        "cores_per_executor": cluster.cores_per_executor,
        "query_slots": cluster.query_slots,
        "contention_coeff": cluster.contention_coeff,
    }


def parse_cluster(payload: dict):
    """Rebuild a fresh (contention-free) cluster from its serialized form."""
    from repro.engine.cluster import Cluster

    return Cluster(**payload)
