"""The catalog: databases, tables, and tenant quotas.

A database is a logical group of tables owned by one tenant (a LinkedIn
line of business) and maps to one storage directory carrying an HDFS
namespace quota — the ``UsedQuota/TotalQuota`` ratio that the paper's
production deployment feeds into its quota-aware MOOP weight (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    NoSuchTableError,
    TableAlreadyExistsError,
    ValidationError,
)
from repro.lst.base import BaseTable, TableIdentifier
from repro.lst.delta import DeltaTable
from repro.lst.hudi import HudiTable
from repro.lst.partitioning import PartitionSpec
from repro.lst.schema import Schema
from repro.lst.table import IcebergTable
from repro.catalog.policies import TablePolicy
from repro.catalog.serde import (
    serialize_policy,
    serialize_properties,
    serialize_schema,
    serialize_spec,
)
from repro.simulation.clock import SimClock
from repro.simulation.taps import TapBus
from repro.simulation.telemetry import Telemetry
from repro.storage.filesystem import SimulatedFileSystem

#: Table-format registry: format name -> table class.
TABLE_FORMATS: dict[str, type[BaseTable]] = {
    "iceberg": IcebergTable,
    "delta": DeltaTable,
    "hudi": HudiTable,
}


@dataclass
class Database:
    """A tenant's logical group of tables."""

    name: str
    created_at: float
    location: str
    quota_objects: int | None = None
    tables: dict[str, BaseTable] = field(default_factory=dict)


class Catalog:
    """Declarative catalog over a shared filesystem.

    Args:
        fs: backing filesystem; a private one is created if omitted.
        clock: simulated clock (falls back to the filesystem's).
        telemetry: metric sink (falls back to the filesystem's).
        warehouse: storage root under which databases live.
        taps: optional event bus; when present the catalog publishes the
            Policy Lab's catalog-scoped trace events — ``db_create`` /
            ``table_create`` on creation, and ``table_commit`` (with the
            exact per-commit file delta and the post-commit
            ``table.version`` freshness token) from a hook installed on
            every table it creates.  A bus can also be attached later via
            :meth:`attach_taps`.
    """

    def __init__(
        self,
        fs: SimulatedFileSystem | None = None,
        clock: SimClock | None = None,
        telemetry: Telemetry | None = None,
        warehouse: str = "/data",
        taps: TapBus | None = None,
    ) -> None:
        self.fs = fs if fs is not None else SimulatedFileSystem()
        self.clock = clock if clock is not None else self.fs.clock
        self.telemetry = telemetry if telemetry is not None else self.fs.telemetry
        self.warehouse = warehouse.rstrip("/") or "/data"
        self.taps = taps
        self.lock_manager = None
        self._databases: dict[str, Database] = {}
        self._policies: dict[str, TablePolicy] = {}

    # --- event taps --------------------------------------------------------------

    def attach_taps(self, taps: TapBus) -> TapBus:
        """Attach an event bus after construction; returns the bus.

        Installs the ``table_commit`` hook on every already-registered
        table, so a recorder subscribed to the bus sees all *future*
        commits.  Past history is not replayed — recorders that attach
        mid-life start from a checkpoint (see
        :mod:`repro.replay.catalog_trace`).
        """
        self.taps = taps
        for database in self._databases.values():
            for table in database.tables.values():
                self._install_commit_tap(table)
        return taps

    def _install_commit_tap(self, table: BaseTable) -> None:
        if any(getattr(hook, "_catalog_tap", False) for hook in table.commit_hooks):
            return

        def publish_commit(table, operation, added_data, added_deletes, removed_ids):
            taps = self.taps
            if taps is None or not taps.has_subscribers("table_commit"):
                return
            ident = table.identifier
            taps.publish(
                "table_commit",
                {
                    "t": table.clock.now,
                    "database": ident.database,
                    "table": ident.name,
                    "op": operation,
                    # Added files in materialization order, so a replayer
                    # re-staging them allocates identical file ids.
                    "added": [[list(f.partition), f.size_bytes] for f in added_data],
                    "deletes": [
                        [list(d.partition), d.size_bytes, sorted(d.references)]
                        for d in added_deletes
                    ],
                    "removed": sorted(removed_ids),
                    "version": table.version,
                },
            )

        publish_commit._catalog_tap = True  # type: ignore[attr-defined]
        table.commit_hooks.append(publish_commit)

    # --- compaction lock audit ----------------------------------------------------

    def attach_locks(self, manager) -> None:
        """Audit every compaction commit against a lock manager's state.

        Installs a commit hook on every registered (and future) table
        that, on each ``replace`` commit — the operation compaction
        performs — asks the
        :class:`~repro.core.locks.LockManager` to record whether the
        table was covered by a lock at commit time.  The manager reads
        lock files from disk, so commits driven by *other* daemon
        instances sharing the lock directory are attributed correctly;
        :func:`~repro.core.locks.verify_audit` then proves the
        no-double-compaction invariant over the combined log.
        """
        self.lock_manager = manager
        for database in self._databases.values():
            for table in database.tables.values():
                self._install_lock_hook(table)

    def _install_lock_hook(self, table: BaseTable) -> None:
        if any(getattr(hook, "_lock_audit", False) for hook in table.commit_hooks):
            return

        def audit_commit(table, operation, added_data, added_deletes, removed_ids):
            manager = self.lock_manager
            if manager is None or operation != "replace":
                return
            manager.audit_compaction(str(table.identifier), version=table.version)

        audit_commit._lock_audit = True  # type: ignore[attr-defined]
        table.commit_hooks.append(audit_commit)

    # --- databases ---------------------------------------------------------------

    def create_database(self, name: str, quota_objects: int | None = None) -> Database:
        """Create a database (tenant namespace).

        Args:
            name: database name, unique within the catalog.
            quota_objects: optional HDFS-style namespace-object quota for the
                database's storage subtree.

        Raises:
            ValidationError: if the database already exists.
        """
        if name in self._databases:
            raise ValidationError(f"database {name!r} already exists")
        location = f"{self.warehouse}/{name}"
        database = Database(
            name=name,
            created_at=self.clock.now,
            location=location,
            quota_objects=quota_objects,
        )
        if quota_objects is not None:
            self.fs.set_quota(location, quota_objects)
        self._databases[name] = database
        if self.taps is not None and self.taps.has_subscribers("db_create"):
            self.taps.publish(
                "db_create",
                {"t": self.clock.now, "name": name, "quota_objects": quota_objects},
            )
        return database

    def database(self, name: str) -> Database:
        """Look up a database.

        Raises:
            ValidationError: if unknown.
        """
        database = self._databases.get(name)
        if database is None:
            raise ValidationError(f"no database named {name!r}")
        return database

    def list_databases(self) -> list[str]:
        """Database names, sorted."""
        return sorted(self._databases)

    def quota_utilization(self, database_name: str) -> float:
        """``UsedQuota / TotalQuota`` for a database (0.0 when unlimited)."""
        database = self.database(database_name)
        if database.quota_objects is None:
            return 0.0
        return self.fs.quota_utilization(database.location)

    # --- tables -----------------------------------------------------------------------

    def create_table(
        self,
        identifier: TableIdentifier | str,
        schema: Schema,
        spec: PartitionSpec | None = None,
        table_format: str = "iceberg",
        properties: dict[str, object] | None = None,
        policy: TablePolicy | None = None,
    ) -> BaseTable:
        """Create and register a table.

        Args:
            identifier: ``TableIdentifier`` or ``'db.table'`` string; the
                database must already exist.
            schema: column definitions.
            spec: partition spec (default unpartitioned).
            table_format: registered format name (``iceberg``, ``delta``
                or ``hudi``; extendable via :data:`TABLE_FORMATS`).
            properties: table properties passed to the format.
            policy: maintenance policy (defaults applied if omitted).

        Raises:
            TableAlreadyExistsError: on duplicate identifiers.
            ValidationError: for unknown databases or formats.
        """
        if isinstance(identifier, str):
            identifier = TableIdentifier.parse(identifier)
        database = self.database(identifier.database)
        if identifier.name in database.tables:
            raise TableAlreadyExistsError(str(identifier))
        table_cls = TABLE_FORMATS.get(table_format)
        if table_cls is None:
            raise ValidationError(
                f"unknown table format {table_format!r}; registered: "
                f"{sorted(TABLE_FORMATS)}"
            )
        policy = policy if policy is not None else TablePolicy()
        merged_properties = {
            "write.target-file-size-bytes": policy.target_file_size,
            "snapshot.retention-s": policy.snapshot_retention_s,
        }
        merged_properties.update(properties or {})
        table = table_cls(
            identifier=identifier,
            schema=schema,
            spec=spec,
            fs=self.fs,
            location=f"{database.location}/{identifier.name}",
            properties=merged_properties,
            telemetry=self.telemetry,
            clock=self.clock,
        )
        database.tables[identifier.name] = table
        self._policies[str(identifier)] = policy
        self.telemetry.increment("catalog.tables.created")
        if self.lock_manager is not None:
            self._install_lock_hook(table)
        if self.taps is not None:
            self._install_commit_tap(table)
            if self.taps.has_subscribers("table_create"):
                self.taps.publish(
                    "table_create",
                    {
                        "t": self.clock.now,
                        "database": identifier.database,
                        "table": identifier.name,
                        "format": table_format,
                        "schema": serialize_schema(schema),
                        "spec": serialize_spec(table.spec),
                        "properties": serialize_properties(merged_properties),
                        "policy": serialize_policy(policy),
                    },
                )
        return table

    def load_table(self, identifier: TableIdentifier | str) -> BaseTable:
        """Look up a registered table.

        Raises:
            NoSuchTableError: if absent.
        """
        if isinstance(identifier, str):
            identifier = TableIdentifier.parse(identifier)
        database = self._databases.get(identifier.database)
        if database is None or identifier.name not in database.tables:
            raise NoSuchTableError(str(identifier))
        return database.tables[identifier.name]

    def drop_table(self, identifier: TableIdentifier | str) -> None:
        """Unregister a table and physically delete its files.

        Raises:
            NoSuchTableError: if absent.
        """
        if isinstance(identifier, str):
            identifier = TableIdentifier.parse(identifier)
        database = self._databases.get(identifier.database)
        if database is None or identifier.name not in database.tables:
            raise NoSuchTableError(str(identifier))
        table = database.tables.pop(identifier.name)
        for info in self.fs.namenode.files_under(table.location):
            self.fs.delete_file(info.path)
        self._policies.pop(str(identifier), None)
        self.telemetry.increment("catalog.tables.dropped")

    def table_exists(self, identifier: TableIdentifier | str) -> bool:
        """Whether a table is registered."""
        try:
            self.load_table(identifier)
            return True
        except NoSuchTableError:
            return False

    def list_tables(self, database_name: str | None = None) -> list[TableIdentifier]:
        """Identifiers of registered tables (optionally one database), sorted."""
        names = [database_name] if database_name is not None else self.list_databases()
        out: list[TableIdentifier] = []
        for name in names:
            database = self.database(name)
            out.extend(
                TableIdentifier(name, table_name) for table_name in sorted(database.tables)
            )
        return out

    def all_tables(self) -> list[BaseTable]:
        """All registered table objects, ordered by identifier."""
        return [self.load_table(ident) for ident in self.list_tables()]

    def policy(self, identifier: TableIdentifier | str) -> TablePolicy:
        """The maintenance policy for a table.

        Raises:
            NoSuchTableError: if the table is not registered.
        """
        if isinstance(identifier, str):
            identifier = TableIdentifier.parse(identifier)
        key = str(identifier)
        if key not in self._policies:
            raise NoSuchTableError(key)
        return self._policies[key]

    def set_policy(self, identifier: TableIdentifier | str, policy: TablePolicy) -> None:
        """Replace a table's maintenance policy.

        Raises:
            NoSuchTableError: if the table is not registered.
        """
        if isinstance(identifier, str):
            identifier = TableIdentifier.parse(identifier)
        key = str(identifier)
        if key not in self._policies:
            raise NoSuchTableError(key)
        self._policies[key] = policy
