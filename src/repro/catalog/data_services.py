"""Data services: reconcile observed table state with declared policies.

OpenHouse's data services run retention, orphan cleanup and (since
AutoComp) compaction on behalf of users.  This module provides the
non-compaction maintenance — snapshot retention sweeps — plus a small
reconciler report that surfaces which tables are out of policy, which
examples and the fleet rollout benches use as the "observed vs desired
state" signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.lst.base import BaseTable


@dataclass(frozen=True)
class MaintenanceReport:
    """Summary of one data-services sweep."""

    tables_checked: int
    snapshots_expired_tables: int
    files_deleted: int
    out_of_policy: tuple[str, ...]


class DataServices:
    """Periodic policy reconciliation over all catalog tables."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def run_retention(self) -> MaintenanceReport:
        """Expire snapshots older than each table's retention policy.

        Returns:
            A report of what the sweep touched.
        """
        now = self.catalog.clock.now
        checked = 0
        expired_tables = 0
        files_deleted = 0
        for table in self.catalog.all_tables():
            checked += 1
            policy = self.catalog.policy(table.identifier)
            deleted = table.expire_snapshots(older_than=now - policy.snapshot_retention_s)
            if deleted:
                expired_tables += 1
                files_deleted += deleted
        return MaintenanceReport(
            tables_checked=checked,
            snapshots_expired_tables=expired_tables,
            files_deleted=files_deleted,
            out_of_policy=tuple(self.out_of_policy_tables()),
        )

    def out_of_policy_tables(self, small_file_ratio: float = 0.5) -> list[str]:
        """Tables whose live files are mostly below their target size.

        Args:
            small_file_ratio: fraction of live files below the policy target
                above which a table counts as out of policy.

        Returns:
            Qualified table names, sorted.
        """
        flagged = []
        for table in self.catalog.all_tables():
            count = table.data_file_count
            if count == 0:
                continue
            policy = self.catalog.policy(table.identifier)
            small = sum(
                1 for f in table.live_files() if f.size_bytes < policy.target_file_size
            )
            if small / count > small_file_ratio:
                flagged.append(str(table.identifier))
        return sorted(flagged)

    def table_health(self, table: BaseTable) -> dict[str, float]:
        """Health metrics for one table (counts, bytes, small-file share)."""
        files = table.live_files()
        policy = self.catalog.policy(table.identifier)
        small = sum(1 for f in files if f.size_bytes < policy.target_file_size)
        return {
            "file_count": float(len(files)),
            "total_bytes": float(sum(f.size_bytes for f in files)),
            "small_file_count": float(small),
            "small_file_fraction": small / len(files) if files else 0.0,
            "delete_file_count": float(table.delete_file_count),
            "metadata_version": float(table.version),
        }
