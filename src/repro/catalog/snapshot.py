"""Picklable catalog snapshots: frozen table-metadata slices for workers.

The scale-out control plane's process workers
(:mod:`repro.core.workers`) cannot touch a live
:class:`~repro.catalog.catalog.Catalog` — open tables hold clocks,
filesystems and commit logs that must not cross a process boundary.  What
*can* cross is a frozen slice of exactly the metadata one observation
needs: per-candidate file sizes, the policy's target file size, partition
counts, delete-file counts, timestamps, quota utilisation — plus each
table's metadata ``version`` as the freshness token the worker's cache
delta carries back.

:class:`CatalogObservationSlice` is that slice.  It satisfies the
``snapshot`` payload contract of
:class:`~repro.core.workers.ShardWorkSpec` (``__len__`` plus
``statistics(i)``), and both it and the live
:class:`~repro.core.connectors.LstConnector` path build their statistics
through the same :func:`build_candidate_statistics`, so a worker-observed
candidate is value-identical to a coordinator-observed one — the property
the modes' byte-identical cycle reports rest on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


def build_candidate_statistics(
    file_sizes,
    target_file_size: int,
    partition_count: int,
    delete_file_count: int,
    created_at: float,
    last_modified_at: float,
    quota_utilization: float,
):
    """The single statistics constructor behind live and snapshot observation.

    Both :meth:`LstConnector._collect_statistics
    <repro.core.connectors.LstConnector>` and
    :meth:`CatalogObservationSlice.statistics` call this, so the two paths
    cannot drift — a shard worker reconstructing statistics from a
    snapshot row produces exactly the object a live observation would.
    """
    # Imported lazily: this module is reachable from ``repro.catalog``
    # before ``repro.core`` finishes initialising (core imports catalog),
    # so a module-level import could bite during partial initialisation.
    from repro.core.candidates import CandidateStatistics

    return CandidateStatistics.from_file_sizes(
        list(file_sizes),
        target_file_size=target_file_size,
        partition_count=partition_count,
        delete_file_count=delete_file_count,
        created_at=created_at,
        last_modified_at=last_modified_at,
        quota_utilization=quota_utilization,
    )


def build_candidate_statistics_batch(
    columns: dict,
    sizes: list | None = None,
    size_offsets: list | None = None,
) -> list:
    """Vectorised batch twin of :func:`build_candidate_statistics`.

    The columnar worker transport (:mod:`repro.core.columnar`) hands this
    per-field scalar lists (already materialised from its int64/float64
    arrays via ``tolist()``, so every value is an exact Python scalar) and
    optionally the concatenated file-size list with per-candidate offsets.
    Statistics come from the trusted
    :meth:`~repro.core.candidates.CandidateStatistics.build_unchecked`
    constructor — the aggregates were computed by exact integer array
    sums, making each row value-identical to a
    :func:`build_candidate_statistics` call over the same inputs.

    Args:
        columns: name → per-candidate list for every scalar
            :class:`~repro.core.candidates.CandidateStatistics` field
            (``file_count`` … ``quota_utilization``).
        sizes: all candidates' file sizes concatenated, or None when the
            source tracks no per-file detail (rows then carry empty
            ``file_sizes``).
        size_offsets: ``n + 1`` offsets delimiting candidate ``i``'s sizes
            as ``sizes[size_offsets[i]:size_offsets[i + 1]]``.
    """
    from repro.core.candidates import CandidateStatistics

    build = CandidateStatistics.build_unchecked
    file_count = columns["file_count"]
    total_bytes = columns["total_bytes"]
    small_count = columns["small_file_count"]
    small_bytes = columns["small_file_bytes"]
    target = columns["target_file_size"]
    partitions = columns["partition_count"]
    deletes = columns["delete_file_count"]
    created = columns["created_at"]
    modified = columns["last_modified_at"]
    quota = columns["quota_utilization"]
    out = []
    for i in range(len(file_count)):
        file_sizes: tuple = ()
        if sizes is not None:
            file_sizes = tuple(sizes[size_offsets[i] : size_offsets[i + 1]])
        out.append(
            build(
                file_count=file_count[i],
                total_bytes=total_bytes[i],
                small_file_count=small_count[i],
                small_file_bytes=small_bytes[i],
                target_file_size=target[i],
                partition_count=partitions[i],
                created_at=created[i],
                last_modified_at=modified[i],
                quota_utilization=quota[i],
                file_sizes=file_sizes,
                delete_file_count=deletes[i],
            )
        )
    return out


@dataclass(frozen=True)
class CatalogObservationSlice:
    """Frozen per-candidate observation inputs for a set of catalog keys.

    Row ``i`` holds everything needed to rebuild candidate ``i``'s
    statistics in another process, in the order the keys were captured.
    All fields are plain tuples of plain scalars, so the slice pickles
    cheaply and deterministically.

    Attributes:
        file_sizes: per-candidate live-file size lists (scope-filtered).
        target_file_sizes: per-candidate policy targets (LST policies are
            per *table*, so this cannot be a spec-level scalar).
        partition_counts: distinct partitions holding live files.
        delete_file_counts: merge-on-read delete files in force.
        created_ats: table creation times.
        last_modified_ats: last commit times (partition-granular for
            partition-scope candidates).
        quota_utilizations: owning database's UsedQuota/TotalQuota.
        versions: table metadata versions at capture time — the freshness
            tokens the worker's cache delta stores, so cached entries
            self-heal exactly when the table commits again.
    """

    file_sizes: tuple[tuple[int, ...], ...]
    target_file_sizes: tuple[int, ...]
    partition_counts: tuple[int, ...]
    delete_file_counts: tuple[int, ...]
    created_ats: tuple[float, ...]
    last_modified_ats: tuple[float, ...]
    quota_utilizations: tuple[float, ...]
    versions: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.file_sizes)
        lengths = {
            "target_file_sizes": len(self.target_file_sizes),
            "partition_counts": len(self.partition_counts),
            "delete_file_counts": len(self.delete_file_counts),
            "created_ats": len(self.created_ats),
            "last_modified_ats": len(self.last_modified_ats),
            "quota_utilizations": len(self.quota_utilizations),
            "versions": len(self.versions),
        }
        bad = [name for name, length in lengths.items() if length != n]
        if bad:
            raise ValidationError(
                f"catalog observation slice columns must all have {n} rows "
                f"(mismatched: {bad})"
            )

    def __len__(self) -> int:
        return len(self.file_sizes)

    def statistics(self, i: int):
        """Rebuild row ``i``'s :class:`~repro.core.candidates.CandidateStatistics`."""
        return build_candidate_statistics(
            self.file_sizes[i],
            target_file_size=self.target_file_sizes[i],
            partition_count=self.partition_counts[i],
            delete_file_count=self.delete_file_counts[i],
            created_at=self.created_ats[i],
            last_modified_at=self.last_modified_ats[i],
            quota_utilization=self.quota_utilizations[i],
        )
