"""Per-table maintenance policies.

OpenHouse tables carry declarative policies that data services reconcile
against observed state.  AutoComp reads these to parameterise candidate
generation and filtering — e.g. the paper's OpenHouse deployment skips
tables created within a preset time window (§4.1), which is
``min_age_before_compaction_s`` here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.units import DAY, DEFAULT_TARGET_FILE_SIZE, HOUR


@dataclass(frozen=True)
class TablePolicy:
    """Declarative maintenance policy for one table.

    Attributes:
        target_file_size: compaction output target in bytes (512 MiB default,
            matching the paper's deployments).
        snapshot_retention_s: how long superseded snapshots (and their files)
            are retained before physical cleanup; 0 allows immediate cleanup.
        min_age_before_compaction_s: tables younger than this are filtered
            out of AutoComp's candidate pool — fresh or intermediate tables
            do not affect the long-term health of the system (§4.1).
        compaction_enabled: master switch; governed tables can opt out.
    """

    target_file_size: int = DEFAULT_TARGET_FILE_SIZE
    snapshot_retention_s: float = 3 * DAY
    min_age_before_compaction_s: float = 1 * HOUR
    compaction_enabled: bool = True

    def __post_init__(self) -> None:
        if self.target_file_size <= 0:
            raise ValidationError(
                f"target_file_size must be positive, got {self.target_file_size}"
            )
        if self.snapshot_retention_s < 0:
            raise ValidationError("snapshot_retention_s must be >= 0")
        if self.min_age_before_compaction_s < 0:
            raise ValidationError("min_age_before_compaction_s must be >= 0")

    def with_overrides(self, **changes: object) -> "TablePolicy":
        """A copy of this policy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)  # type: ignore[arg-type]
