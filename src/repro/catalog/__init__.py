"""Catalog / control plane (OpenHouse stand-in).

OpenHouse gives LinkedIn a *declarative catalog* — table definitions, schema
governance, per-tenant quotas — plus *data services* that reconcile observed
and desired table state (§2).  This package provides the same surface:

* :class:`~repro.catalog.catalog.Catalog` — databases and tables, with each
  database mapped to a quota-carrying storage directory;
* :class:`~repro.catalog.policies.TablePolicy` — per-table maintenance
  policy (target file size, snapshot retention, minimum age before
  compaction);
* :class:`~repro.catalog.data_services.DataServices` — retention and
  compaction entry points that AutoComp's act phase calls into.
"""

from repro.catalog.catalog import Catalog, Database
from repro.catalog.data_services import DataServices
from repro.catalog.policies import TablePolicy

# Imported last: the snapshot module reaches into ``repro.core``, which in
# turn imports ``repro.catalog.catalog`` — by this line that submodule is
# fully initialised, so the cycle cannot bite.
from repro.catalog.snapshot import CatalogObservationSlice, build_candidate_statistics

__all__ = [
    "Catalog",
    "CatalogObservationSlice",
    "Database",
    "DataServices",
    "TablePolicy",
    "build_candidate_statistics",
]
