"""Inline suppression comments for ``repro.lint``.

Two directive forms, parsed from real comment tokens (string literals that
merely *look* like directives are ignored):

* ``# repro-lint: disable=RL001`` — suppresses the named rule(s) for
  findings anchored on the **same physical line** (the first line of a
  multi-line statement).  Several ids separate with commas:
  ``disable=RL001,RL005``.  Justification text after the ids is
  encouraged: ``# repro-lint: disable=RL001 -- disjoint shard slices``.
* ``# repro-lint: file-disable=RL004`` — suppresses the rule(s) for the
  whole file.  Must be the only code on its line (a comment-only line).

Every directive is tracked: a directive that suppresses nothing is itself
reported by the runner as :data:`UNUSED_SUPPRESSION_ID` (``RL007``), so
stale exceptions cannot accumulate silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: Rule id reserved for the unused-suppression check (see runner).
UNUSED_SUPPRESSION_ID = "RL007"

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>file-)?disable=(?P<ids>RL\d{3}(?:\s*,\s*RL\d{3})*)"
)


@dataclass
class Directive:
    """One parsed suppression comment."""

    line: int
    rule_ids: tuple[str, ...]
    file_wide: bool
    used: set = field(default_factory=set)  # rule ids that actually matched

    def unused_ids(self) -> tuple[str, ...]:
        return tuple(rid for rid in self.rule_ids if rid not in self.used)


@dataclass
class FileSuppressions:
    """All suppression directives of one file, with usage tracking."""

    directives: list[Directive] = field(default_factory=list)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True (and marks the directive used) if ``rule_id@line`` is covered."""
        hit = False
        for directive in self.directives:
            if rule_id not in directive.rule_ids:
                continue
            if directive.file_wide or directive.line == line:
                directive.used.add(rule_id)
                hit = True
        return hit

    def unused(self) -> list[tuple[int, str]]:
        """``(line, rule_id)`` pairs for directive ids that matched nothing."""
        out = []
        for directive in self.directives:
            for rid in directive.unused_ids():
                out.append((directive.line, rid))
        return out


def parse_suppressions(source: str) -> FileSuppressions:
    """Extract suppression directives from ``source``'s comment tokens."""
    suppressions = FileSuppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions  # unparseable files get their own RL000 finding
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.search(token.string)
        if not match:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        suppressions.directives.append(
            Directive(
                line=token.start[0],
                rule_ids=ids,
                file_wide=match.group("scope") == "file-",
            )
        )
    return suppressions
