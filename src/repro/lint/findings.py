"""Finding and severity primitives for the ``repro.lint`` analyzer.

A :class:`Finding` is one violation of one rule at one source location.
Findings are plain data so the CLI can render them as human-readable lines
or JSON without the rules knowing about output formats.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Finding severities, in increasing order of CI impact.  ``error``
#: findings fail the run; ``warning`` findings are reported (and fail only
#: under ``--strict``).
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: str = field(default="", compare=False)

    def to_dict(self, include_hint: bool = False) -> dict:
        """JSON-ready mapping (``hint`` included only when requested)."""
        payload = asdict(self)
        if not include_hint:
            payload.pop("hint")
        return payload

    def render(self, show_hint: bool = False) -> str:
        """``path:line:col: RLxxx [severity] message`` (+ optional hint)."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
        if show_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable order for reports: path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
