"""RL001 — lock discipline: guarded attributes stay under the lock.

**Invariant (PRs 1/4/7).** Classes that protect mutable state with an
instance lock (:class:`repro.core.statscache.StatsCache`'s ``RLock``
sweep, :class:`repro.simulation.telemetry.Telemetry`'s sink-wide lock,
``LockManager._mutex``, the promoter's store mutex) must apply that lock
*consistently*: an attribute that is ever mutated inside a
``with self._lock:`` block is part of the lock's protected state, and
reading or writing it outside a lock block in the same class is a data
race — exactly the torn-counter bug class PR 4's ``StatsCache`` sweep
fixed.

**What the rule does.** Per class, it finds *lock attributes* (``self.X``
used as a ``with`` context whose name contains ``lock``/``mutex``, or
assigned a ``threading.Lock``/``RLock``), computes the *guarded set* (every
``self`` attribute mutated at least once while a lock is held), then flags
any access to a guarded attribute from code that provably does not hold
the lock.

Precision measures:

* ``__init__``-family methods are exempt — construction happens-before
  publication, so unlocked writes there are safe.
* A private helper (leading ``_``) whose every intra-class call site is
  safe — holds the lock, or is itself a safe/exempt method — is treated
  as safe (fixpoint).  This covers both the "called-under-lock" helper
  convention (``StatsCache._drop``) and constructor-only helpers
  (``ResumableStateMachine._scan``).
* Code inside nested ``def``s runs later, so it never inherits the
  enclosing block's lock; *lambdas* DO inherit it — they are
  overwhelmingly immediately-consumed (``sort``/``min``/``max`` keys)
  rather than stored callbacks.

Deliberate lock-free fast paths (e.g. ``IndexedCandidateCache``'s
disjoint-slice slot access) are the intended use of inline suppressions —
each carries a justifying comment in this codebase.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, self_attr

_LOCK_NAME_RE = re.compile(r"lock|mutex", re.IGNORECASE)

#: Method names on a guarded attribute that mutate it in place.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert",
        "pop", "popitem", "popleft", "clear", "update", "setdefault",
        "add", "discard", "remove", "sort", "reverse",
    }
)

#: Methods whose unlocked access is safe by construction/convention:
#: object construction and (de)serialisation happen-before publication.
_EXEMPT_METHODS = frozenset(
    {
        "__init__", "__post_init__", "__new__", "__del__", "__repr__",
        "__getstate__", "__setstate__", "__reduce__", "__reduce_ex__",
        "__copy__", "__deepcopy__", "__init_subclass__",
    }
)


@dataclass
class _Access:
    """One ``self.X`` touch inside a method."""

    attr: str
    line: int
    col: int
    kind: str  # "read" | "mutate"
    locked: bool
    method: str


@dataclass
class _CallSite:
    """An intra-class ``self._helper()`` call, with lock state."""

    callee: str
    locked: bool
    caller: str


@dataclass
class _ClassScan:
    lock_attrs: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    methods: set[str] = field(default_factory=set)
    locked_mutation_line: dict[str, int] = field(default_factory=dict)


class _MethodVisitor(ast.NodeVisitor):
    """Walks one method body tracking whether a class lock is held."""

    def __init__(self, scan: _ClassScan, method: str) -> None:
        self.scan = scan
        self.method = method
        self.locked = False

    # -- lock tracking ---------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        takes_lock = False
        for item in node.items:
            expr = item.context_expr
            attr = self_attr(expr)
            if attr is not None and _LOCK_NAME_RE.search(attr):
                self.scan.lock_attrs.add(attr)
                takes_lock = True
            else:
                self.visit(expr)
        was_locked = self.locked
        if takes_lock:
            self.locked = True
        for stmt in node.body:
            self.visit(stmt)
        self.locked = was_locked

    visit_AsyncWith = visit_With

    def _deferred(self, node: ast.AST) -> None:
        # A nested def body executes later: it does not inherit the lock
        # held at definition time.  (Lambdas are NOT routed here — sort/
        # min/max keys run inside the enclosing block.)
        was_locked = self.locked
        self.locked = False
        self.generic_visit(node)
        self.locked = was_locked

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._deferred(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # nested classes are analysed independently

    # -- accesses --------------------------------------------------------------

    def _record(self, attr: str, node: ast.AST, kind: str) -> None:
        if attr in self.scan.lock_attrs or _LOCK_NAME_RE.search(attr):
            return
        self.scan.accesses.append(
            _Access(attr, node.lineno, node.col_offset, kind, self.locked, self.method)
        )
        if kind == "mutate" and self.locked:
            self.scan.locked_mutation_line.setdefault(attr, node.lineno)

    def _record_target(self, target: ast.AST) -> bool:
        """Record a store/del target; True when it touched ``self``."""
        attr = self_attr(target)
        if attr is not None:
            self._record(attr, target, "mutate")
            return True
        if isinstance(target, ast.Subscript):
            attr = self_attr(target.value)
            if attr is not None:
                self._record(attr, target, "mutate")
                self.visit(target.slice)
                return True
        if isinstance(target, (ast.Tuple, ast.List)):
            handled = False
            for element in target.elts:
                handled = self._record_target(element) or handled
            return handled
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not self._record_target(target):
                self.visit(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._record_target(node.target):
            self.visit(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            if not self._record_target(node.target):
                self.visit(node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if not self._record_target(target):
                self.visit(target)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner_attr = self_attr(func.value)
            if owner_attr is not None and func.attr in _MUTATORS:
                # self.X.pop(...) mutates X in place.
                self._record(owner_attr, func.value, "mutate")
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
            callee = self_attr(func)
            if callee is not None:
                self.scan.calls.append(_CallSite(callee, self.locked, self.method))
                for arg in node.args:
                    self.visit(arg)
                for kw in node.keywords:
                    self.visit(kw.value)
                return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            self._record(attr, node, "read")
        self.generic_visit(node)


def _is_lock_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func) or ""
    return name.split(".")[-1] in {"Lock", "RLock", "Condition", "Semaphore"}


class LockDisciplineRule(Rule):
    rule_id = "RL001"
    title = "lock discipline: lock-guarded attributes accessed without the lock"
    severity = "error"
    hint = (
        "Take the class lock around this access (`with self._lock:`), move it "
        "into a locked helper, or — for a deliberate lock-free fast path with "
        "a documented safety argument — suppress with "
        "`# repro-lint: disable=RL001 -- <why it is safe>`."
    )

    def check_file(self, ctx, project) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for cls in [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]:
            yield from self._check_class(ctx, cls)

    def _check_class(self, ctx, cls: ast.ClassDef) -> Iterable[Finding]:
        scan = _ClassScan()
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pre-seed lock attrs from constructor assignments so `self._mutex`
        # accesses are classified even before the first `with` is seen.
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                    for target in node.targets:
                        attr = self_attr(target)
                        if attr is not None:
                            scan.lock_attrs.add(attr)
        for method in methods:
            scan.methods.add(method.name)
            visitor = _MethodVisitor(scan, method.name)
            for stmt in method.body:
                visitor.visit(stmt)
        if not scan.lock_attrs:
            return
        guarded = {
            access.attr
            for access in scan.accesses
            if access.kind == "mutate"
            and access.locked
            and access.method not in _EXEMPT_METHODS
        } - scan.lock_attrs
        if not guarded:
            return

        # Fixpoint: a private helper is *safe* when every intra-class call
        # site either holds the lock or sits in a safe/exempt method —
        # covering both called-under-lock helpers and constructor-only
        # helpers (safe by happens-before-publication).
        sites: dict[str, list[_CallSite]] = {}
        for call in scan.calls:
            sites.setdefault(call.callee, []).append(call)
        safe_methods: set[str] = set(_EXEMPT_METHODS)
        changed = True
        while changed:
            changed = False
            for name in scan.methods:
                if name in safe_methods or not name.startswith("_"):
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                callsites = sites.get(name)
                if not callsites:
                    continue
                if all(s.locked or s.caller in safe_methods for s in callsites):
                    safe_methods.add(name)
                    changed = True

        for access in scan.accesses:
            if access.attr not in guarded:
                continue
            if access.locked or access.method in safe_methods:
                continue
            where = scan.locked_mutation_line.get(access.attr, cls.lineno)
            verb = "written" if access.kind == "mutate" else "read"
            yield self.finding(
                ctx,
                access.line,
                f"{cls.name}.{access.attr} is lock-guarded (mutated under the "
                f"lock at line {where}) but {verb} without the lock in "
                f"{access.method}()",
                col=access.col,
            )
