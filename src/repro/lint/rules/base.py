"""Rule base class and shared AST helpers for ``repro.lint`` rules."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.runner import FileContext, ProjectContext


class Rule:
    """One invariant check with a stable id.

    Rules are instantiated fresh per run (cross-file rules accumulate
    state on ``self`` between :meth:`check_file` calls and report it in
    :meth:`finalize`).

    Class attributes:
        rule_id: stable ``RLxxx`` identifier used in reports and
            suppression comments.
        title: one-line summary for ``--list-rules`` and docs.
        severity: default severity of this rule's findings.
        hint: generic remediation guidance shown under ``--fix-hints``
            (individual findings may override).
    """

    rule_id = "RL000"
    title = "base rule"
    severity = "error"
    hint = ""

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether :meth:`check_file` should run on this file."""
        return True

    def check_file(
        self, ctx: "FileContext", project: "ProjectContext"
    ) -> Iterable[Finding]:
        """Per-file findings (and cross-file state accumulation)."""
        return ()

    def finalize(self, project: "ProjectContext") -> Iterable[Finding]:
        """Findings that need the whole scanned set (cross-file rules)."""
        return ()

    def finding(
        self,
        ctx_or_path,
        node_or_line,
        message: str,
        hint: str | None = None,
        col: int | None = None,
    ) -> Finding:
        """Build a finding anchored at an AST node (or explicit line)."""
        path = ctx_or_path if isinstance(ctx_or_path, str) else ctx_or_path.norm
        if isinstance(node_or_line, int):
            line, column = node_or_line, col or 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0) if col is None else col
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=column,
            message=message,
            hint=self.hint if hint is None else hint,
        )


# --- shared AST helpers -------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def string_constants(node: ast.AST) -> Iterator[str]:
    """Every string literal anywhere inside ``node`` (f-strings included)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def iter_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """All class definitions in ``tree`` (nested ones included)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def literal_prefix(node: ast.AST) -> str | None:
    """The constant prefix of a dynamically-built string, if detectable.

    Handles f-strings whose first piece is a constant
    (``f"autocomp.locks.{event}"`` → ``"autocomp.locks."``) and string
    concatenation with a constant left side (``"autocomp." + name``).
    Returns None when the expression has no static prefix.
    """
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = node.left
        if isinstance(left, ast.Constant) and isinstance(left.value, str):
            return left.value
        return literal_prefix(left)
    return None
