"""RL006 — resource lifecycle: owners of OS-backed resources close them.

**Invariant (PRs 3/6/8).** Shared-memory segments, worker pools and
executors outlive the Python objects that reference them: a leaked
``multiprocessing.shared_memory.SharedMemory`` segment persists in
``/dev/shm`` after the process dies, an unclosed ``WorkerPool`` orphans
child processes (the PR 6 bugfix sweep), and an unclosed executor leaks
threads.  The codebase's discipline is explicit ownership:

* a **class** that stores such a resource on ``self`` must define a
  teardown method (``close``/``stop``/``shutdown``/``__exit__``) — and the
  pool additionally registers finalizers for SIGKILL'd-owner cleanup;
* a **call site** that creates one must either use it as a context
  manager, call its teardown in the same scope (``try/finally``, pytest
  fixture teardown after ``yield``), hand it to a tracked-lifetime seam
  (``track_resource``, ``weakref.finalize``, ``contextlib.closing``,
  ``ExitStack``), store it on ``self`` (ownership moves to the class), or
  return/yield it (ownership moves to the caller).

**What the rule does.** Flags (a) classes assigning a known resource
constructor to an attribute without any teardown method, and (b) function
scopes that construct a resource and do none of the above with it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, self_attr

#: Constructors whose results own an OS-backed resource.
RESOURCE_CONSTRUCTORS = frozenset(
    {
        "SharedMemory",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "WorkerPool",
    }
)

#: Methods that count as a teardown definition on an owning class.
_TEARDOWN_METHODS = frozenset({"close", "stop", "shutdown", "__exit__"})

#: Attribute calls on the bound name that count as releasing it.
_RELEASING_CALLS = frozenset(
    {"close", "stop", "shutdown", "unlink", "terminate", "join"}
)

#: Callee names that take over the resource's lifetime.
_TRACKING_CALLEES = (
    "track_resource",
    "finalize",
    "addfinalizer",
    "closing",
    "enter_context",
    "callback",
    "register",
    "push",
)


def _ctor_name(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    last = name.split(".")[-1]
    return last if last in RESOURCE_CONSTRUCTORS else None


class _Scope:
    """One function (or module) body, nested scopes excluded."""

    def __init__(self, node: ast.AST, name: str) -> None:
        self.node = node
        self.name = name
        self.statements = node.body if isinstance(node.body, list) else [node.body]

    def walk(self):
        # Top-level statements that are themselves defs/classes belong to
        # their own scope — expanding them here would double-report.
        stack = [
            stmt
            for stmt in self.statements
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        while stack:
            current = stack.pop()
            yield current
            for child in ast.iter_child_nodes(current):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue
                stack.append(child)


class ResourceLifecycleRule(Rule):
    rule_id = "RL006"
    title = "resource lifecycle: OS-backed resource created without a release path"
    severity = "error"
    hint = (
        "Use the resource as a context manager, close it in a try/finally "
        "(or after a fixture's yield), register it with track_resource/"
        "weakref.finalize/contextlib.closing, or store it on self in a class "
        "that defines close()/stop()."
    )

    def check_file(self, ctx, project) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        # (a) classes owning resources must define a teardown method.
        for cls in [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]:
            yield from self._check_class(ctx, cls)
        # (b) call-site ownership in every function/module scope.
        scopes = [_Scope(ctx.tree, "<module>")]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(_Scope(node, node.name))
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _check_class(self, ctx, cls: ast.ClassDef) -> Iterable[Finding]:
        method_names = {
            stmt.name
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if method_names & _TEARDOWN_METHODS:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _ctor_name(node.value)
                ):
                    for target in node.targets:
                        if self_attr(target):
                            yield self.finding(
                                ctx,
                                node,
                                f"{cls.name} stores a "
                                f"{_ctor_name(node.value)} on self but defines "
                                "no close()/stop()/shutdown()/__exit__ teardown",
                            )
                            return

    def _check_scope(self, ctx, scope: _Scope) -> Iterable[Finding]:
        creations: list[tuple[ast.Call, str, str | None]] = []  # call, ctor, bound name
        in_with: set[int] = set()
        released: set[str] = set()
        transferred: set[str] = set()
        for node in scope.walk():
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    for sub in ast.walk(expr):
                        if isinstance(sub, ast.Call) and _ctor_name(sub):
                            in_with.add(id(sub))
                    if item.optional_vars is None and isinstance(expr, ast.Name):
                        released.add(expr.id)  # `with pool:` on an existing name
                    if isinstance(expr, ast.Call):
                        # closing(pool), ExitStack().enter_context(pool), with pool:
                        for arg in expr.args:
                            if isinstance(arg, ast.Name):
                                transferred.add(arg.id)
                    if isinstance(expr, ast.Name):
                        released.add(expr.id)
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func) or ""
                last = callee.split(".")[-1]
                if isinstance(node.func, ast.Attribute):
                    owner = node.func.value
                    if isinstance(owner, ast.Name) and last in _RELEASING_CALLS:
                        released.add(owner.id)
                if last in _TRACKING_CALLEES:
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name):
                                transferred.add(sub.id)
                            elif isinstance(sub, ast.Call) and _ctor_name(sub):
                                in_with.add(id(sub))  # lifetime handed over
            elif isinstance(node, (ast.Return, ast.Expr)):
                value = node.value
                if isinstance(value, (ast.Yield, ast.YieldFrom)):
                    value = value.value
                if isinstance(value, ast.Name):
                    transferred.add(value.id)
                elif isinstance(value, ast.Tuple):
                    for element in value.elts:
                        if isinstance(element, ast.Name):
                            transferred.add(element.id)

        for node in scope.walk():
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ctor = _ctor_name(node.value)
                if not ctor:
                    continue
                bound = None
                to_self = False
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound = target.id
                    elif self_attr(target) or isinstance(target, ast.Attribute):
                        to_self = True
                if to_self:
                    continue  # class ownership: the class-level check governs
                creations.append((node.value, ctor, bound))
            elif isinstance(node, ast.Call) and _ctor_name(node):
                parent_handled = id(node) in in_with
                if not parent_handled and not self._is_assigned(node, scope):
                    creations.append((node, _ctor_name(node), None))

        seen: set[int] = set()
        for call, ctor, bound in creations:
            if id(call) in seen:
                continue
            seen.add(id(call))
            if id(call) in in_with:
                continue
            if bound is not None and (bound in released or bound in transferred):
                continue
            if bound is None and self._is_argument(call, scope):
                continue  # ownership passed to the callee
            yield self.finding(
                ctx,
                call,
                f"{ctor} created in {scope.name}() with no release path "
                "(no with/close/track_resource/finalize, not returned)",
            )

    def _is_assigned(self, call: ast.Call, scope: _Scope) -> bool:
        for node in scope.walk():
            if isinstance(node, ast.Assign) and node.value is call:
                return True
        return False

    def _is_argument(self, call: ast.Call, scope: _Scope) -> bool:
        for node in scope.walk():
            if isinstance(node, ast.Call) and (
                call in node.args
                or any(kw.value is call for kw in node.keywords)
            ):
                return True
        return False
