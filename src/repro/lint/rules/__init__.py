"""Rule registry for ``repro.lint``.

Every rule class registers here with a stable id; :func:`all_rules`
returns one fresh instance of each (rules carry cross-file state, so they
must never be shared between runs).
"""

from __future__ import annotations

from repro.lint.rules.base import Rule
from repro.lint.rules.rl001_locks import LockDisciplineRule
from repro.lint.rules.rl002_atomic import AtomicWriteRule
from repro.lint.rules.rl003_contracts import ContractDriftRule
from repro.lint.rules.rl004_metrics import MetricsRegistryRule
from repro.lint.rules.rl005_determinism import ReplayDeterminismRule
from repro.lint.rules.rl006_lifecycle import ResourceLifecycleRule

#: Registered rule classes, in id order.
RULE_CLASSES: tuple[type[Rule], ...] = (
    LockDisciplineRule,
    AtomicWriteRule,
    ContractDriftRule,
    MetricsRegistryRule,
    ReplayDeterminismRule,
    ResourceLifecycleRule,
)


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


__all__ = ["RULE_CLASSES", "Rule", "all_rules"]
