"""RL005 — replay determinism: no ambient entropy on replay-critical paths.

**Invariant (PRs 2/5).** Byte-identical replay is the Policy Lab's core
guarantee: ``TraceReplayer`` / ``CatalogReplayer`` re-execute a recorded
run and must produce bit-exact reports, and worker-side decide must return
the same selection the coordinator would have computed.  Those paths may
therefore consume time and randomness **only through injected seams** (the
simulation clock, recorded timestamps, seeded ``random.Random(seed)``
instances) — a single ``time.time()`` or bare ``random.random()`` call
silently breaks replay in a way no unit test of the happy path catches.

**What the rule does.** Inside the replay-critical modules
(``repro/replay/``, ``repro/catalog/serde.py`` and the worker decide path
``repro/core/workers.py``), it bans:

* wall-clock reads: ``time.time``/``time.time_ns``,
  ``datetime.now``/``utcnow``/``today``, ``date.today``
  (``time.perf_counter``/``monotonic`` stay allowed — they only feed
  telemetry wall-time measurements, never replayed state);
* ambient randomness: module-level ``random.*`` functions, unseeded
  ``random.Random()``, ``uuid.uuid1``/``uuid4``, ``os.urandom``,
  ``secrets.*``;
* set-ordering dependence: ``for … in <set literal / set(...)>`` — set
  iteration order depends on insertion and hash seed; sort first
  (``sorted(...)`` is the deterministic idiom).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name

#: Module paths (posix substrings) where the rule is active.
REPLAY_PATHS = (
    "repro/replay/",
    "repro/catalog/serde.py",
    "repro/core/workers.py",
)

_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "ambient randomness",
    "uuid.uuid1": "ambient randomness",
    "uuid.uuid4": "ambient randomness",
}

_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "randbytes", "choice", "choices",
        "shuffle", "sample", "uniform", "triangular", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "getrandbits", "seed",
    }
)


def _set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name == "set" or (name or "").endswith(".set"):
            return True
    return False


class ReplayDeterminismRule(Rule):
    rule_id = "RL005"
    title = "replay determinism: ambient time/randomness on a replay path"
    severity = "error"
    hint = (
        "Route time through the injected clock seam (the simulation clock or "
        "recorded trace timestamps) and randomness through a seeded "
        "random.Random(seed) carried by the replayer; iterate sets via "
        "sorted(...)."
    )

    def applies_to(self, ctx) -> bool:
        return any(fragment in ctx.norm for fragment in REPLAY_PATHS)

    def check_file(self, ctx, project) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                reason = _BANNED_CALLS.get(name)
                if reason is None and name.startswith("secrets."):
                    reason = "ambient randomness"
                if reason is None:
                    parts = name.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] == "random"
                        and parts[1] in _RANDOM_MODULE_FUNCS
                    ):
                        reason = "ambient randomness (module-level random)"
                    elif name in {"random.Random", "Random"} and not (
                        node.args or node.keywords
                    ):
                        reason = "unseeded random.Random()"
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() on a replay-critical path ({reason}); "
                        "replay must be byte-identical",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _set_expr(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "iterating a set on a replay-critical path: set order "
                        "is insertion/hash dependent; wrap in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _set_expr(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension over a set on a replay-critical "
                            "path: set order is insertion/hash dependent; "
                            "wrap in sorted(...)",
                        )
