"""RL002 — atomic-write discipline for durable state files.

**Invariant (PRs 6/9).** Durable control-plane state — the promoter's
``active.json``, the lock manager's and policy store's ``audit.jsonl``,
daemon state-machine files, committed benchmark baselines — must never be
written with a bare ``open(path, "w")`` / ``Path.write_text``: a crash
mid-write leaves a torn file that ``_recover()`` / ``verify_audit`` then
misreads.  The two blessed idioms are:

* **tmp + rename** — write ``path + ".tmp"`` completely, then
  ``os.replace(tmp, path)`` (readers see old or new, never torn);
* **O_APPEND record append** — ``os.open(path, O_CREAT|O_WRONLY|O_APPEND)``
  with one ``os.write`` per record (atomic under ``PIPE_BUF`` on POSIX).

**What the rule does.** Flags ``open(x, "w"/"a"/...)`` calls and
``.write_text(...)`` calls whose target is *statically linked to a durable
state name*: a durable token appears in the string literals of the path
expression, in literals assigned to the path variable earlier in the same
function, or in the enclosing function's name (``write_baseline``).  The
call is exempt when the same function performs the tmp-dance (any
``os.replace`` call) or opens via ``os.open`` with ``O_APPEND``.

The token list is deliberately small and high-signal; new durable files
should be added to :data:`DURABLE_TOKENS` as they are introduced.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, string_constants

#: Substrings identifying durable-state files and tooling.
DURABLE_TOKENS = (
    "active.json",
    "audit.jsonl",
    "baseline",
    "state.json",
    "contracts.json",
    "metrics.prom",
    "status.json",
)

#: Write modes that replace or mutate file contents.
_WRITE_MODES = ("w", "a", "x", "+")


def _mode_of(call: ast.Call) -> str | None:
    """The literal mode of an ``open`` call, or None when not a literal."""
    mode_node = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _durable_token_in(literals: Iterable[str]) -> str | None:
    for text in literals:
        for token in DURABLE_TOKENS:
            if token in text:
                return token
    return None


def _walk_scope(node: ast.AST):
    """``ast.walk`` that stops at nested function/class boundaries."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.append(child)


class _FunctionScan:
    """Write-calls and name→literals bindings of one function scope."""

    def __init__(self, func: ast.AST, name: str) -> None:
        self.name = name
        self.assigned_literals: dict[str, set[str]] = {}
        self.write_calls: list[tuple[ast.Call, str, ast.AST]] = []
        self.has_replace = False
        self.has_o_append = False
        self._walk(func)

    def _walk(self, func: ast.AST) -> None:
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            # A nested def/class is its own scope (it gets its own scan);
            # without this, the module scope would re-own every function
            # body and report each write twice.
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for node in _walk_scope(stmt):
                if isinstance(node, ast.Assign):
                    literals = set(string_constants(node.value))
                    if literals:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.assigned_literals.setdefault(
                                    target.id, set()
                                ).update(literals)
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func) or ""
                if name == "os.replace":
                    self.has_replace = True
                elif name == "os.open":
                    flag_names = {
                        dotted_name(n) or getattr(n, "id", "")
                        for arg in node.args
                        for n in ast.walk(arg)
                        if isinstance(n, (ast.Name, ast.Attribute))
                    }
                    if any(str(f).endswith("O_APPEND") for f in flag_names):
                        self.has_o_append = True
                elif name in {"open", "io.open"} or name.endswith(".write_text"):
                    if name.endswith(".write_text"):
                        target = node.func.value  # type: ignore[union-attr]
                        self.write_calls.append((node, "write_text", target))
                    else:
                        mode = _mode_of(node)
                        if mode is None or any(m in mode for m in _WRITE_MODES):
                            target = node.args[0] if node.args else node
                            self.write_calls.append((node, mode or "?", target))

    def path_literals(self, target: ast.AST) -> set[str]:
        literals = set(string_constants(target))
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                literals.update(self.assigned_literals.get(node.id, ()))
        return literals


class AtomicWriteRule(Rule):
    rule_id = "RL002"
    title = "atomic-write discipline: durable state written non-atomically"
    severity = "error"
    hint = (
        "Write durable state via tmp + os.replace (write `path + '.tmp'` "
        "fully, then `os.replace(tmp, path)`) or append records through "
        "`os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND)` with one "
        "os.write per record."
    )

    def check_file(self, ctx, project) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        scopes: list[tuple[ast.AST, str]] = [(ctx.tree, "<module>")]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, node.name))
        for func, name in scopes:
            scan = _FunctionScan(func, name)
            if not scan.write_calls:
                continue
            for call, mode, target in scan.write_calls:
                literals = scan.path_literals(target)
                if any(".tmp" in text for text in literals):
                    continue  # the tmp half of the tmp+replace dance
                token = _durable_token_in(literals)
                if token is None:
                    lowered = name.lower()
                    token = next(
                        (
                            t
                            for t in ("baseline", "audit", "active")
                            if t in lowered
                        ),
                        None,
                    )
                if token is None:
                    continue
                if scan.has_replace or (mode == "a" and scan.has_o_append):
                    continue
                what = "write_text" if mode == "write_text" else f'open(..., "{mode}")'
                yield self.finding(
                    ctx,
                    call,
                    f"durable state ({token!r}) written with bare {what} in "
                    f"{name}(); a crash mid-write leaves a torn file",
                )
