"""RL004 — metrics registry consistency: emitted names ↔ ``repro.obs.METRICS``.

**Invariant (PR 7).** ``repro.obs.METRICS`` is the single registry of
well-known metric names: the Prometheus exporter renders ``# HELP`` from
it and operators discover the observable surface through it.  A counter
incremented under an unregistered name silently exports with no help text
and never appears in docs; a registry entry nothing emits is dead weight
that misleads dashboards.

**What the rule does.** Parses the registry dict straight out of
``repro/obs/__init__.py`` (AST only, no imports), then:

* **forward** — every string literal starting with ``autocomp.`` passed to
  a telemetry write (``.increment`` / ``.record`` / ``.observe``) in
  ``src/`` must be a registry key.  Dynamically built names with a static
  prefix (``f"autocomp.locks.{event}"``) are checked as prefixes: the
  prefix must match at least one registry key.
* **reverse** — every registry key must be emitted somewhere in the
  scanned sources, either as an exact literal or covered by a dynamic
  prefix; unreferenced keys are flagged as dead registry entries (at their
  line in the registry).  The reverse check only runs when the registry
  file itself is part of the scan (so linting a single module never
  reports the rest of the registry as dead).

Per-shard scopes (``autocomp.shard00.…``) go through ``ScopedTelemetry``
with *unprefixed* names, so they never hit the forward check — which is
intentional: the registry documents fleet-level names only.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, literal_prefix

#: Telemetry write methods whose first argument is a metric name.
_WRITE_METHODS = frozenset({"increment", "record", "observe"})

#: Only names in this namespace are governed by the registry.
_NAMESPACE = "autocomp."

#: Default registry module, resolved relative to this package
#: (src/repro/lint/rules/ → src/repro/obs/__init__.py).
DEFAULT_REGISTRY = (
    Path(__file__).resolve().parent.parent.parent / "obs" / "__init__.py"
)


def load_registry(path: str | os.PathLike) -> dict[str, int] | None:
    """``{metric name: line}`` parsed from the METRICS dict literal."""
    try:
        tree = ast.parse(Path(path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "METRICS" for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            out = {}
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    out[key.value] = key.lineno
            return out
    return None


def _in_src(norm: str) -> bool:
    """True for product sources (registry governance excludes tests/benches)."""
    posix = norm.replace(os.sep, "/")
    if "/tests/" in posix or posix.startswith("tests/"):
        return False
    if "/benchmarks/" in posix or posix.startswith("benchmarks/"):
        return False
    return "repro/" in posix


class MetricsRegistryRule(Rule):
    rule_id = "RL004"
    title = "metrics registry: emitted names not registered / dead registry entries"
    severity = "error"
    hint = (
        "Register every emitted autocomp.* metric name in repro.obs.METRICS "
        "with its kind and help text, and delete registry entries nothing "
        "emits (or emit them)."
    )

    def __init__(self) -> None:
        self._used_literals: set[str] = set()
        self._used_prefixes: set[str] = set()
        self._registry_scanned = False

    def applies_to(self, ctx) -> bool:
        return _in_src(ctx.norm)

    def check_file(self, ctx, project) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        registry = project.metrics_registry()
        registry_path = Path(project.metrics_registry_path).resolve()
        try:
            if Path(ctx.path).resolve() == registry_path:
                self._registry_scanned = True
        except OSError:  # pragma: no cover - unresolvable paths
            pass
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS):
                continue
            if not node.args:
                continue
            name_node = node.args[0]
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                name = name_node.value
                if name.startswith(_NAMESPACE):
                    self._used_literals.add(name)
                    if registry is not None and name not in registry:
                        yield self.finding(
                            ctx,
                            name_node,
                            f"metric {name!r} is emitted but not declared in "
                            "repro.obs.METRICS",
                        )
            else:
                prefix = literal_prefix(name_node)
                if prefix and prefix.startswith(_NAMESPACE):
                    self._used_prefixes.add(prefix)
                    if registry is not None and not any(
                        key.startswith(prefix) for key in registry
                    ):
                        yield self.finding(
                            ctx,
                            name_node,
                            f"dynamic metric name with prefix {prefix!r} "
                            "matches no repro.obs.METRICS entry",
                        )

    def finalize(self, project) -> Iterable[Finding]:
        if not self._registry_scanned:
            return
        registry = project.metrics_registry()
        if registry is None:
            return
        registry_norm = next(
            (
                ctx.norm
                for ctx in project.files
                if Path(ctx.path).resolve()
                == Path(project.metrics_registry_path).resolve()
            ),
            str(project.metrics_registry_path),
        )
        for name, line in sorted(registry.items()):
            if name in self._used_literals:
                continue
            if any(name.startswith(prefix) for prefix in self._used_prefixes):
                continue
            yield self.finding(
                registry_norm,
                line,
                f"dead registry entry: {name!r} is declared in "
                "repro.obs.METRICS but never emitted in the scanned sources",
            )
