"""File discovery and rule orchestration for ``repro.lint``.

The runner walks the requested paths, parses each ``*.py`` once, runs
every registered rule over every file it applies to, gives cross-file
rules a ``finalize`` pass over the whole scanned set, then filters
findings through the inline suppression directives — reporting directives
that suppressed nothing as ``RL007`` warnings so accepted exceptions
cannot go stale silently.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable

from repro.lint.findings import Finding, sort_findings
from repro.lint.rules import all_rules
from repro.lint.rules.rl003_contracts import DEFAULT_MANIFEST
from repro.lint.rules.rl004_metrics import DEFAULT_REGISTRY, load_registry
from repro.lint.suppressions import (
    UNUSED_SUPPRESSION_ID,
    FileSuppressions,
    parse_suppressions,
)

#: Rule id for files the analyzer cannot parse at all.
PARSE_ERROR_ID = "RL000"


class FileContext:
    """One parsed source file handed to the rules."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.norm = str(path).replace(os.sep, "/")
        self.source: str = ""
        self.tree: ast.AST | None = None
        self.parse_error: SyntaxError | None = None
        self.suppressions: FileSuppressions = FileSuppressions()

    def load(self) -> None:
        self.source = self.path.read_text(encoding="utf-8")
        self.suppressions = parse_suppressions(self.source)
        try:
            self.tree = ast.parse(self.source, filename=str(self.path))
        except SyntaxError as exc:
            self.parse_error = exc


class ProjectContext:
    """The whole scanned set plus run configuration, shared by the rules."""

    def __init__(
        self,
        files: list[FileContext],
        contracts_manifest: str | os.PathLike | None = None,
        metrics_registry_path: str | os.PathLike | None = None,
    ) -> None:
        self.files = files
        self.contracts_manifest = os.fspath(contracts_manifest or DEFAULT_MANIFEST)
        self.metrics_registry_path = os.fspath(
            metrics_registry_path or DEFAULT_REGISTRY
        )
        self._metrics_registry: dict[str, int] | None = None
        self._metrics_loaded = False

    def metrics_registry(self) -> dict[str, int] | None:
        """The parsed ``METRICS`` registry (cached; None when unreadable)."""
        if not self._metrics_loaded:
            self._metrics_registry = load_registry(self.metrics_registry_path)
            self._metrics_loaded = True
        return self._metrics_registry


def discover_files(paths: Iterable[str | os.PathLike]) -> list[FileContext]:
    """All ``*.py`` files under ``paths`` (dirs recursed, dupes dropped)."""
    seen: set[Path] = set()
    out: list[FileContext] = []

    def _add(path: Path) -> None:
        resolved = path.resolve()
        if resolved in seen:
            return
        seen.add(resolved)
        out.append(FileContext(path))

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if "__pycache__" in parts or any(
                    p.startswith(".") and p not in (".", "..") for p in parts
                ):
                    continue
                _add(candidate)
        elif path.suffix == ".py":
            _add(path)
    return out


def run_lint(
    paths: Iterable[str | os.PathLike],
    rules=None,
    contracts_manifest: str | os.PathLike | None = None,
    metrics_registry_path: str | os.PathLike | None = None,
    select: Iterable[str] | None = None,
) -> tuple[list[Finding], ProjectContext]:
    """Lint ``paths``; returns (sorted findings, project context).

    Args:
        paths: files and/or directories to scan.
        rules: rule instances to run (default: one fresh instance of every
            registered rule).
        contracts_manifest: RL003 manifest override (tests point this at
            scratch manifests).
        metrics_registry_path: RL004 registry override.
        select: when given, only rules whose id is in this set run
            (suppression tracking still covers all ids).
    """
    files = discover_files(paths)
    for ctx in files:
        ctx.load()
    project = ProjectContext(
        files,
        contracts_manifest=contracts_manifest,
        metrics_registry_path=metrics_registry_path,
    )
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        active = [rule for rule in active if rule.rule_id in wanted]

    raw: list[Finding] = []
    for ctx in files:
        if ctx.parse_error is not None:
            raw.append(
                Finding(
                    rule_id=PARSE_ERROR_ID,
                    severity="error",
                    path=ctx.norm,
                    line=ctx.parse_error.lineno or 1,
                    col=(ctx.parse_error.offset or 1) - 1,
                    message=f"syntax error: {ctx.parse_error.msg}",
                )
            )
            continue
        for rule in active:
            if rule.applies_to(ctx):
                raw.extend(rule.check_file(ctx, project))
    for rule in active:
        raw.extend(rule.finalize(project))

    by_norm = {ctx.norm: ctx for ctx in files}
    kept: list[Finding] = []
    for finding in raw:
        ctx = by_norm.get(finding.path)
        if ctx is not None and ctx.suppressions.is_suppressed(
            finding.rule_id, finding.line
        ):
            continue
        kept.append(finding)

    selected_ids = {rule.rule_id for rule in active}
    for ctx in files:
        for line, rule_id in ctx.suppressions.unused():
            if rule_id not in selected_ids:
                continue  # partial runs can't judge other rules' suppressions
            kept.append(
                Finding(
                    rule_id=UNUSED_SUPPRESSION_ID,
                    severity="warning",
                    path=ctx.norm,
                    line=line,
                    col=0,
                    message=(
                        f"unused suppression: no {rule_id} finding is "
                        "reported on this line (or file) — remove the stale "
                        "directive"
                    ),
                    hint="Delete the directive, or re-check why the finding disappeared.",
                )
            )
    return sort_findings(kept), project
