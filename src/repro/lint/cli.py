"""Command-line interface: ``python -m repro.lint [options] paths...``.

Exit codes: 0 clean, 1 error-severity findings (warnings too under
``--strict``), 2 usage errors.  ``--format json`` emits a machine-readable
report (the CI job uploads it as an artifact); ``--emit-contracts``
regenerates the RL003 manifest instead of linting.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.findings import Finding
from repro.lint.rules import RULE_CLASSES
from repro.lint.rules.rl003_contracts import (
    CONTRACT_BASENAMES,
    DEFAULT_MANIFEST,
    extract_contracts,
    write_manifest,
)
from repro.lint.runner import discover_files, run_lint
from repro.lint.suppressions import UNUSED_SUPPRESSION_ID


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant analyzer for the AutoComp reproduction: "
            "enforces the codebase's concurrency, durability and "
            "determinism contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--fix-hints",
        action="store_true",
        help="include per-finding remediation hints in the output",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too (default: errors only)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RLxxx",
        help="run only the named rule(s); repeatable",
    )
    parser.add_argument(
        "--contracts",
        default=None,
        metavar="PATH",
        help=f"RL003 manifest path (default: {DEFAULT_MANIFEST})",
    )
    parser.add_argument(
        "--metrics-registry",
        default=None,
        metavar="PATH",
        help="RL004 registry module path (default: repro/obs/__init__.py)",
    )
    parser.add_argument(
        "--emit-contracts",
        action="store_true",
        help="regenerate the RL003 contract manifest from the tree and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _list_rules() -> None:
    print(f"{'ID':<7} {'SEVERITY':<9} TITLE")
    for cls in RULE_CLASSES:
        print(f"{cls.rule_id:<7} {cls.severity:<9} {cls.title}")
    print(
        f"{UNUSED_SUPPRESSION_ID:<7} {'warning':<9} "
        "unused suppression: a disable= directive matched no finding"
    )


def _emit_contracts(paths: list[str], manifest_path) -> int:
    files = discover_files(paths)
    trees = []
    for ctx in files:
        import os

        if os.path.basename(ctx.norm) not in CONTRACT_BASENAMES:
            continue
        ctx.load()
        if ctx.tree is not None:
            trees.append((ctx.norm, ctx.tree))
    extracted = extract_contracts(trees)
    if not extracted["classes"]:
        print(
            "repro.lint: no contract classes found under "
            f"{' '.join(paths)}; manifest not written",
            file=sys.stderr,
        )
        return 2
    write_manifest(extracted, manifest_path)
    print(
        f"repro.lint: wrote {len(extracted['classes'])} contract classes "
        f"(version {extracted['version']}) to {manifest_path}"
    )
    return 0


def _render_human(findings: list[Finding], show_hints: bool) -> None:
    for finding in findings:
        print(finding.render(show_hint=show_hints))
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        print(f"repro.lint: {errors} error(s), {warnings} warning(s)")
    else:
        print("repro.lint: clean")


def _render_json(findings: list[Finding], show_hints: bool) -> None:
    errors = sum(1 for f in findings if f.severity == "error")
    payload = {
        "tool": "repro.lint",
        "version": 1,
        "summary": {
            "findings": len(findings),
            "errors": errors,
            "warnings": len(findings) - errors,
        },
        "findings": [f.to_dict(include_hint=show_hints) for f in findings],
    }
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    print()


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    if args.emit_contracts:
        return _emit_contracts(args.paths, args.contracts or DEFAULT_MANIFEST)
    findings, _ = run_lint(
        args.paths,
        contracts_manifest=args.contracts,
        metrics_registry_path=args.metrics_registry,
        select=args.select,
    )
    if args.format == "json":
        _render_json(findings, args.fix_hints)
    else:
        _render_human(findings, args.fix_hints)
    has_errors = any(f.severity == "error" for f in findings)
    if has_errors or (args.strict and findings):
        return 1
    return 0
