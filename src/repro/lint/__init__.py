"""repro.lint — AST-based invariant analyzer for the AutoComp reproduction.

The reproduction's safety story (no double-compaction, no torn durable
state, byte-identical replay — the properties §4/§7 of the paper's
production deployment depend on) was built across PRs 3–9 as *coding
conventions*: lock-sweep discipline in the caches and telemetry sink,
tmp+``os.replace`` atomicity for control-plane files, versioned picklable
worker contracts, the ``repro.obs.METRICS`` registry, RNG-free replay
paths, and explicit resource ownership.  This package turns those
conventions into machine-checked invariants gating CI.

Rules (stable ids; see each ``repro.lint.rules.rlXXX_*`` module for the
invariant-to-PR mapping):

======  =====================================================================
RL000   file does not parse (analyzer prerequisite)
RL001   lock discipline — lock-guarded attributes accessed without the lock
RL002   atomic-write discipline — durable state written non-atomically
RL003   contract drift — worker wire contract changed without a version bump
RL004   metrics registry — unregistered emissions / dead registry entries
RL005   replay determinism — ambient time/randomness on a replay path
RL006   resource lifecycle — OS-backed resource without a release path
RL007   unused suppression — a ``disable=`` directive matched no finding
======  =====================================================================

Usage::

    PYTHONPATH=src python -m repro.lint src tests benchmarks
    PYTHONPATH=src python -m repro.lint --format json --fix-hints src
    PYTHONPATH=src python -m repro.lint --emit-contracts   # RL003 manifest

Accepted exceptions are suppressed inline with a justifying comment::

    candidate = self._candidates[index]  # repro-lint: disable=RL001 -- shards own disjoint slices

and every suppression is itself checked: a directive that no longer
matches a finding is reported as RL007 so the exception list cannot rot.
"""

from __future__ import annotations

from repro.lint.findings import Finding, sort_findings
from repro.lint.rules import RULE_CLASSES, Rule, all_rules
from repro.lint.runner import FileContext, ProjectContext, discover_files, run_lint
from repro.lint.suppressions import UNUSED_SUPPRESSION_ID, parse_suppressions

__all__ = [
    "RULE_CLASSES",
    "UNUSED_SUPPRESSION_ID",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Rule",
    "all_rules",
    "discover_files",
    "parse_suppressions",
    "run_lint",
    "sort_findings",
]
