"""Entry point: ``python -m repro.lint [options] paths...``."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
