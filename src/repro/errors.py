"""Exception hierarchy shared across the library.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch one base class.  Commit conflicts are
split into *client-side* and *cluster-side* flavours because the paper's
Table 1 reports them separately: client-side conflicts are versioning
conflicts that terminate a user's write operation (which is then retried),
while cluster-side conflicts abort a compaction operation running on the
maintenance cluster.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument or configuration value failed validation."""


class StorageError(ReproError):
    """Base class for simulated-filesystem errors."""


class FileNotFoundInStorageError(StorageError):
    """A path was opened, deleted or listed but does not exist."""


class FileExistsInStorageError(StorageError):
    """A path was created but already exists."""


class QuotaExceededError(StorageError):
    """A namespace quota would be exceeded by the requested operation."""

    def __init__(self, directory: str, used: int, limit: int) -> None:
        super().__init__(
            f"namespace quota exceeded for {directory!r}: used={used} limit={limit}"
        )
        self.directory = directory
        self.used = used
        self.limit = limit


class TableError(ReproError):
    """Base class for log-structured-table errors."""


class NoSuchTableError(TableError):
    """The referenced table does not exist in the catalog."""


class TableAlreadyExistsError(TableError):
    """A table with the same identifier already exists."""


class CommitConflictError(TableError):
    """An optimistic-concurrency commit failed validation.

    Attributes:
        side: ``'client'`` for conflicts that terminate user write
            operations, ``'cluster'`` for conflicts that abort compaction
            (maintenance) operations — matching the two columns of Table 1
            in the paper.
        reason: human-readable explanation of what invalidated the commit.
    """

    def __init__(self, side: str, reason: str) -> None:
        if side not in ("client", "cluster"):
            raise ValidationError(f"conflict side must be client|cluster, got {side!r}")
        super().__init__(f"{side}-side commit conflict: {reason}")
        self.side = side
        self.reason = reason


class SchedulingError(ReproError):
    """A compaction task could not be scheduled."""


class WorkerError(ReproError):
    """A shard worker failed mid-cycle.

    Raised by the sharded control plane when a worker's observe/decide
    task errors: outstanding sibling futures are cancelled and drained
    first, so no shard work is left in flight, and the worker's original
    exception is chained as ``__cause__``.
    """
