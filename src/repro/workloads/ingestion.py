"""Managed raw-event ingestion (Gobblin/FastIngest stand-in).

The paper's §2 describes LinkedIn's central pipeline: raw Kafka events are
written to HDFS every five minutes, incrementally compacted and
deduplicated into hourly partitions of ~512 MB files; daily partitions are
retained long-term while small checkpoint files expire after three days.
This module reproduces that write pattern so Figure 1's *raw ingestion*
distribution (files clustered at the target) can be generated next to the
*user-derived* distribution (trickle/mis-tuned writers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.session import EngineSession
from repro.engine.writers import WellTunedWriter
from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.units import DEFAULT_TARGET_FILE_SIZE, HOUR, MINUTE


@dataclass
class IngestionStats:
    """What one simulated ingestion window produced."""

    hours: int
    micro_batches: int
    bytes_ingested: int
    hourly_files: int


class RawIngestionPipeline:
    """Five-minute micro-batches compacted into hourly target-size files.

    Args:
        table: destination table, partitioned by an hourly key (identity
            transform on an ``hour`` column) or unpartitioned.
        session: engine session used for writes.
        events_bytes_per_hour: raw volume arriving per hour.
        target_file_size: hourly-compaction output size (512 MiB default).
        micro_batch_interval_s: micro-batch cadence (5 minutes default).
    """

    def __init__(
        self,
        table: BaseTable,
        session: EngineSession,
        events_bytes_per_hour: int,
        target_file_size: int = DEFAULT_TARGET_FILE_SIZE,
        micro_batch_interval_s: float = 5 * MINUTE,
    ) -> None:
        if events_bytes_per_hour <= 0:
            raise ValidationError("events_bytes_per_hour must be positive")
        if micro_batch_interval_s <= 0 or micro_batch_interval_s > HOUR:
            raise ValidationError("micro_batch_interval_s must be in (0, 1 hour]")
        self.table = table
        self.session = session
        self.events_bytes_per_hour = events_bytes_per_hour
        self.target_file_size = target_file_size
        self.micro_batch_interval_s = micro_batch_interval_s
        self._writer = WellTunedWriter(target_file_size, jitter=0.12)

    @property
    def batches_per_hour(self) -> int:
        """Micro-batches per hourly window."""
        return max(1, round(HOUR / self.micro_batch_interval_s))

    def ingest_hours(self, hours: int, rng: np.random.Generator) -> IngestionStats:
        """Simulate ``hours`` of ingestion.

        Each hour, micro-batches accumulate and are incrementally compacted
        into the hour's partition as target-sized files — we model the net
        effect by writing the hour's volume with a well-tuned profile into
        partition ``(hour_index,)`` (checkpoint files are transient and
        expired, so they do not appear in the final distribution).

        Returns:
            Aggregate :class:`IngestionStats` for the window.
        """
        if hours <= 0:
            raise ValidationError("hours must be positive")
        total_bytes = 0
        total_files = 0
        partitioned = self.table.spec.is_partitioned
        for hour in range(hours):
            volume = int(self.events_bytes_per_hour * rng.uniform(0.85, 1.15))
            partition = (hour,) if partitioned else None
            result = self.session.write(
                self.table, volume, self._writer, partitions=partition, label="ingest"
            )
            total_bytes += result.bytes_written
            total_files += result.files_created
        return IngestionStats(
            hours=hours,
            micro_batches=hours * self.batches_per_hour,
            bytes_ingested=total_bytes,
            hourly_files=total_files,
        )
