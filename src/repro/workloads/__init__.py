"""Workload generators.

Synthetic workloads mirroring the paper's evaluation design:

* :mod:`repro.workloads.patterns` — arrival processes (sinusoidal demand,
  short/large bursts, predictable periodic jobs) modelled after the CAB
  cloud-workload study;
* :mod:`repro.workloads.tpch` — TPC-H-like schema and data generator
  (``lineitem`` partitioned by ship-date month, ``orders`` unpartitioned —
  the §6 update-pattern mix);
* :mod:`repro.workloads.cab` — the CAB-gen-style multi-database workload
  driving Figures 6–8 and Table 1;
* :mod:`repro.workloads.tpcds` — TPC-DS-like schema and the
  single-user/maintenance experiment of Figure 3;
* :mod:`repro.workloads.lstbench` — LST-Bench-like phase runner with the
  WP1/WP3 workload phases used by the §6.3 auto-tuning study;
* :mod:`repro.workloads.ingestion` — the Gobblin-style managed ingestion
  pipeline producing target-sized files (Figure 1's "raw" distribution).
"""

from repro.workloads.patterns import (
    ArrivalPattern,
    BurstPattern,
    CombinedPattern,
    PeriodicPattern,
    SinusoidalPattern,
)
from repro.workloads.tpch import TPCH_TABLES, create_tpch_database
from repro.workloads.ingestion import RawIngestionPipeline
from repro.workloads.cab import CabConfig, CabWorkload
from repro.workloads.tpcds import TPCDS_TABLES, TpcdsExperiment, create_tpcds_database
from repro.workloads.lstbench import LstBenchPhase, LstBenchRun, PhaseResult

__all__ = [
    "ArrivalPattern",
    "BurstPattern",
    "CabConfig",
    "CabWorkload",
    "CombinedPattern",
    "LstBenchPhase",
    "LstBenchRun",
    "PeriodicPattern",
    "PhaseResult",
    "RawIngestionPipeline",
    "SinusoidalPattern",
    "TPCDS_TABLES",
    "TPCH_TABLES",
    "TpcdsExperiment",
    "create_tpcds_database",
    "create_tpch_database",
]
