"""TPC-DS-like schema and the Figure 3 maintenance experiment.

The paper's §2 experiment runs TPC-DS at SF 1000 on Spark+Iceberg: a
single-user phase (all queries), then a data-maintenance phase modifying
~3% of the data via deletes and inserts, then the single-user phase again
(1.53× slower), then compaction, then the single-user phase once more
(back to ≈1×).  :class:`TpcdsExperiment` reproduces that protocol end to
end on the simulated substrate.

The schema is a representative subset: three fact tables partitioned by
sold-date month plus four dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.policies import TablePolicy
from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.engine.jobs import CompactionJob
from repro.engine.session import EngineSession
from repro.engine.writers import MisconfiguredShuffleWriter, WellTunedWriter, WriterProfile
from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.lst.maintenance import plan_table_rewrite
from repro.lst.partitioning import MonthTransform, PartitionField, PartitionSpec
from repro.lst.schema import Field, Schema
from repro.simulation.rng import derive_rng
from repro.units import GiB


def _schema(*columns: tuple[str, str]) -> Schema:
    return Schema.of(*(Field(name, type_) for name, type_ in columns))


@dataclass(frozen=True)
class TpcdsTableSpec:
    """Volume/shape definition for one TPC-DS table."""

    name: str
    schema: Schema
    rows_per_sf: int
    bytes_per_row: int
    is_fact: bool = False
    partition_column: str | None = None

    def bytes_at(self, scale_factor: float) -> int:
        """On-disk bytes at a given scale factor."""
        return int(self.rows_per_sf * scale_factor * self.bytes_per_row)


#: Representative TPC-DS subset: 3 partitioned facts + 4 dimensions.
TPCDS_TABLES: tuple[TpcdsTableSpec, ...] = (
    TpcdsTableSpec(
        "store_sales",
        _schema(
            ("ss_sold_date", "date"),
            ("ss_item_sk", "long"),
            ("ss_customer_sk", "long"),
            ("ss_quantity", "int"),
            ("ss_net_paid", "decimal"),
        ),
        rows_per_sf=2_880_000,
        bytes_per_row=100,
        is_fact=True,
        partition_column="ss_sold_date",
    ),
    TpcdsTableSpec(
        "catalog_sales",
        _schema(
            ("cs_sold_date", "date"),
            ("cs_item_sk", "long"),
            ("cs_quantity", "int"),
            ("cs_net_paid", "decimal"),
        ),
        rows_per_sf=1_440_000,
        bytes_per_row=120,
        is_fact=True,
        partition_column="cs_sold_date",
    ),
    TpcdsTableSpec(
        "web_sales",
        _schema(
            ("ws_sold_date", "date"),
            ("ws_item_sk", "long"),
            ("ws_quantity", "int"),
            ("ws_net_paid", "decimal"),
        ),
        rows_per_sf=720_000,
        bytes_per_row=120,
        is_fact=True,
        partition_column="ws_sold_date",
    ),
    TpcdsTableSpec(
        "item",
        _schema(("i_item_sk", "long"), ("i_brand", "string"), ("i_price", "decimal")),
        rows_per_sf=18_000,
        bytes_per_row=200,
    ),
    TpcdsTableSpec(
        "customer",
        _schema(("c_customer_sk", "long"), ("c_name", "string"), ("c_city", "string")),
        rows_per_sf=100_000,
        bytes_per_row=180,
    ),
    TpcdsTableSpec(
        "store",
        _schema(("s_store_sk", "long"), ("s_name", "string")),
        rows_per_sf=12,
        bytes_per_row=250,
    ),
    TpcdsTableSpec(
        "date_dim",
        _schema(("d_date_sk", "long"), ("d_date", "date"), ("d_year", "int")),
        rows_per_sf=73_049,
        bytes_per_row=80,
    ),
)


def create_tpcds_database(
    catalog: Catalog,
    database: str,
    scale_factor: float,
    session: EngineSession,
    loader: WriterProfile,
    months: int = 12,
    policy: TablePolicy | None = None,
    table_format: str = "iceberg",
) -> dict[str, BaseTable]:
    """Create and load a TPC-DS-subset database.

    Facts are partitioned by sold-date month and spread uniformly over
    ``months`` partitions; dimensions load as single bulk writes.

    Returns:
        Mapping of table name to the created table.
    """
    if months <= 0:
        raise ValidationError("months must be positive")
    catalog.create_database(database)
    tables: dict[str, BaseTable] = {}
    for spec in TPCDS_TABLES:
        partition_spec = None
        if spec.partition_column is not None:
            partition_spec = PartitionSpec.of(
                PartitionField(spec.partition_column, MonthTransform())
            )
        table = catalog.create_table(
            f"{database}.{spec.name}",
            spec.schema,
            spec=partition_spec,
            table_format=table_format,
            policy=policy,
        )
        tables[spec.name] = table
        total = spec.bytes_at(scale_factor)
        if total <= 0:
            continue
        if partition_spec is not None:
            per_month = total // months
            if per_month > 0:
                for month in range(months):
                    session.write(table, per_month, loader, partitions=(month,), label="load")
        else:
            session.write(table, total, loader, label="load")
    return tables


@dataclass
class TpcdsPhaseTimings:
    """Durations of the Figure 3 protocol's phases."""

    single_user_initial_s: float
    maintenance_s: float
    single_user_degraded_s: float
    compaction_s: float
    single_user_restored_s: float

    @property
    def degradation_factor(self) -> float:
        """Degraded vs initial single-user runtime (paper: 1.53×)."""
        return self.single_user_degraded_s / self.single_user_initial_s

    @property
    def restoration_factor(self) -> float:
        """Restored vs initial single-user runtime (paper: ≈1.0×)."""
        return self.single_user_restored_s / self.single_user_initial_s


class TpcdsExperiment:
    """The §2 / Figure 3 TPC-DS maintenance-and-compaction experiment.

    Args:
        scale_factor: TPC-DS scale (1.0 ≈ ~0.7 GB modelled subset volume);
            the paper uses SF 1000 on a 16-node cluster — shapes, not
            absolute times, are what transfer.
        query_count: queries in the single-user phase (TPC-DS has 99).
        months: fact-table partition count.
        seed: determinism root.
        cluster: query cluster (defaults to a 16-node-like pool).
        cost_model: engine cost model.
    """

    def __init__(
        self,
        scale_factor: float = 4.0,
        query_count: int = 99,
        months: int = 12,
        seed: int = 7,
        cluster: Cluster | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        if scale_factor <= 0:
            raise ValidationError("scale_factor must be positive")
        if query_count <= 0:
            raise ValidationError("query_count must be positive")
        self.scale_factor = scale_factor
        self.query_count = query_count
        self.months = months
        self.seed = seed
        self.catalog = Catalog()
        self.cluster = cluster if cluster is not None else Cluster(
            "query", executors=16, cores_per_executor=8
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.session = EngineSession(
            self.cluster,
            cost_model=self.cost_model,
            telemetry=self.catalog.telemetry,
            clock=self.catalog.clock,
            seed=seed,
        )
        self.tables: dict[str, BaseTable] = {}
        self._rng = derive_rng(seed, "tpcds-experiment")

    def setup(self) -> None:
        """Create the database with a well-tuned (healthy) initial load."""
        self.tables = create_tpcds_database(
            self.catalog,
            "tpcds",
            self.scale_factor,
            self.session,
            WellTunedWriter(),
            months=self.months,
        )

    def fact_tables(self) -> list[BaseTable]:
        """The fact tables, in schema order."""
        return [self.tables[s.name] for s in TPCDS_TABLES if s.is_fact]

    def dimension_tables(self) -> list[BaseTable]:
        """The dimension tables, in schema order."""
        return [self.tables[s.name] for s in TPCDS_TABLES if not s.is_fact]

    def run_single_user(self) -> float:
        """One single-user phase: ``query_count`` sequential queries.

        Each query scans a contiguous month range of one fact table plus
        one or two dimensions (the join pattern of most TPC-DS queries).
        Every invocation replays the *same* query sequence (a fresh RNG from
        the experiment seed), so phase-to-phase comparisons isolate the
        effect of table state rather than query mix.

        Returns:
            Total phase duration in (simulated) seconds; the clock advances
            by the same amount.
        """
        rng = derive_rng(self.seed, "tpcds-single-user")
        facts = self.fact_tables()
        dims = self.dimension_tables()
        total = 0.0
        for _ in range(self.query_count):
            fact = facts[int(rng.integers(0, len(facts)))]
            months = fact.partitions()
            span = min(len(months), int(rng.integers(2, 7)))
            first = int(rng.integers(0, max(len(months) - span, 0) + 1))
            scans: list[tuple[BaseTable, list[tuple] | None]] = [
                (fact, months[first : first + span])
            ]
            for _ in range(int(rng.integers(1, 3))):
                scans.append((dims[int(rng.integers(0, len(dims)))], None))
            result = self.session.execute_read(scans, label="ro")
            total += result.latency_s
            self.catalog.clock.advance_by(result.latency_s)
        return total

    def run_maintenance(self, fraction: float = 0.03) -> float:
        """The data-maintenance phase: ~``fraction`` of data delete+insert.

        Deletes are merge-on-read row deltas; inserts come from a mis-tuned
        writer, so the phase leaves both delete files and small data files
        behind — the two mechanisms §2 blames for the slowdown.

        Returns:
            Phase duration in seconds.
        """
        if not 0 < fraction < 1:
            raise ValidationError(f"fraction must be in (0, 1), got {fraction}")
        total = 0.0
        writer = MisconfiguredShuffleWriter(num_partitions=64)
        for fact in self.fact_tables():
            delta = self.session.start_row_delta(fact, fraction)
            result = delta.complete()
            total += result.latency_s
            self.catalog.clock.advance_by(result.latency_s)
            # TPC-DS maintenance runs one DML job per partition, each
            # emitting its own (mis-tuned) shuffle output.
            months = fact.partitions()
            per_month = int(fact.total_data_bytes * fraction / max(len(months), 1))
            for month in months:
                if per_month <= 0:
                    continue
                write = self.session.write(
                    fact, per_month, writer, partitions=month, label="rw"
                )
                total += write.latency_s
                self.catalog.clock.advance_by(write.latency_s)
        return total

    def run_compaction(self, compaction_cluster: Cluster | None = None) -> float:
        """Manually compact every fact table (the paper's remediation).

        Returns:
            Total compaction wall-clock duration in seconds.
        """
        cluster = compaction_cluster if compaction_cluster is not None else Cluster(
            "compaction", executors=3
        )
        total = 0.0
        for fact in self.fact_tables():
            plan = plan_table_rewrite(fact)
            if plan.is_empty:
                continue
            job = CompactionJob(
                fact,
                plan,
                cluster,
                cost_model=self.cost_model,
                telemetry=self.catalog.telemetry,
                clock=self.catalog.clock,
            )
            outcome = job.run_sync()
            total += outcome.duration_s
            self.catalog.clock.advance_by(outcome.duration_s)
        return total

    def run(self) -> TpcdsPhaseTimings:
        """Execute the full Figure 3 protocol.

        Returns:
            The five phase durations, with degradation/restoration factors.
        """
        self.setup()
        initial = self.run_single_user()
        maintenance = self.run_maintenance()
        degraded = self.run_single_user()
        compaction = self.run_compaction()
        restored = self.run_single_user()
        return TpcdsPhaseTimings(
            single_user_initial_s=initial,
            maintenance_s=maintenance,
            single_user_degraded_s=degraded,
            compaction_s=compaction,
            single_user_restored_s=restored,
        )
