"""LST-Bench-like phase runner and the §6.3 auto-tuning workloads.

LST-Bench structures benchmarks as *phases* over LSTs; the paper extends it
with CAB streams and uses three of its built-in workloads to tune
optimize-after-write trigger thresholds on Delta Lake v2.4.0:

* **TPC-DS WP1** — a long-running single-cluster workload with frequent
  data modifications; compaction helps when tables get too fragmented
  (up to ~2× in Figure 9a).
* **TPC-DS WP3** — one cluster handles all writes (and compaction),
  another all reads; decoupling removes contention so compaction is
  consistently beneficial (Figure 9d).
* **TPC-H** — unpartitioned tables and a dominant data-modification phase;
  compaction must rewrite whole tables, so *no* auto-compaction is best
  (Figure 9b).

Each ``run_*`` function builds a fresh world, executes the phases while an
optional :class:`~repro.core.triggers.OptimizeAfterWriteHook` watches every
write, and returns an :class:`LstBenchRun` whose total duration is the
auto-tuner's objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.core.connectors import LstConnector
from repro.core.scheduling import LstExecutionBackend
from repro.core.traits import Trait
from repro.core.triggers import OptimizeAfterWriteHook
from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.engine.session import EngineSession
from repro.engine.writers import MisconfiguredShuffleWriter, WellTunedWriter
from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.simulation.rng import derive_rng
from repro.units import MiB
from repro.workloads.tpcds import create_tpcds_database
from repro.workloads.tpch import create_tpch_database


@dataclass(frozen=True)
class PhaseResult:
    """Timing record for one benchmark phase."""

    name: str
    duration_s: float
    operations: int
    compactions: int = 0


@dataclass
class LstBenchRun:
    """Timing record for a full benchmark execution."""

    workload: str
    phases: list[PhaseResult] = field(default_factory=list)

    @property
    def total_duration_s(self) -> float:
        """End-to-end duration — the auto-tuning objective."""
        return sum(p.duration_s for p in self.phases)

    @property
    def total_compactions(self) -> int:
        """Hook-triggered compactions across all phases."""
        return sum(p.compactions for p in self.phases)


@dataclass(frozen=True)
class LstBenchPhase:
    """A custom phase: a body returning ``(duration_s, operations)``."""

    name: str
    body: Callable[[], tuple[float, int]]


def run_phases(workload: str, phases: list[LstBenchPhase]) -> LstBenchRun:
    """Execute custom phases sequentially into an :class:`LstBenchRun`."""
    run = LstBenchRun(workload=workload)
    for phase in phases:
        duration, operations = phase.body()
        run.phases.append(
            PhaseResult(name=phase.name, duration_s=duration, operations=operations)
        )
    return run


class _World:
    """Shared construction for the three tuning workloads."""

    def __init__(
        self,
        seed: int,
        table_format: str,
        query_cluster: Cluster,
        write_cluster: Cluster | None = None,
    ) -> None:
        self.catalog = Catalog()
        # Calibrated for the §6.3 scale point (SF 100 on 16 nodes, where
        # per-file overheads dominate scan bandwidth): task startup and the
        # columnar small-read floor are heavier than the global defaults,
        # and OPTIMIZE startup is lighter since LST-Bench reuses a warm
        # session for maintenance calls.
        self.cost_model = CostModel(
            compaction_startup_s=5.0,
            task_overhead_s=0.3,
            small_read_floor=32 * MiB,
        )
        self.query_session = EngineSession(
            query_cluster,
            cost_model=self.cost_model,
            telemetry=self.catalog.telemetry,
            clock=self.catalog.clock,
            seed=seed,
        )
        if write_cluster is not None:
            self.write_session = EngineSession(
                write_cluster,
                cost_model=self.cost_model,
                telemetry=self.catalog.telemetry,
                clock=self.catalog.clock,
                seed=seed + 1,
            )
        else:
            self.write_session = self.query_session
        self.table_format = table_format
        self.rng = derive_rng(seed, "lstbench")

    def make_hook(
        self, trait: Trait | None, threshold: float, compaction_cluster: Cluster
    ) -> OptimizeAfterWriteHook | None:
        if trait is None:
            return None
        connector = LstConnector(self.catalog)
        backend = LstExecutionBackend(connector, compaction_cluster, self.cost_model)
        return OptimizeAfterWriteHook(
            connector=connector, trait=trait, threshold=threshold, backend=backend
        )


def _hook_write(
    session: EngineSession,
    hook: OptimizeAfterWriteHook | None,
    table: BaseTable,
    volume: int,
    writer,
    partitions,
) -> tuple[float, int]:
    """One write plus the hook evaluation; returns (duration, compactions)."""
    result = session.write(table, volume, writer, partitions=partitions, label="rw")
    duration = result.latency_s
    compactions = 0
    if hook is not None:
        decision = hook.on_write(table)
        if decision.triggered and decision.result is not None and decision.result.success:
            duration += decision.result.duration_s
            compactions = 1
    session.clock.advance_by(duration)
    return duration, compactions


def _query_phase(
    session: EngineSession, tables: list[BaseTable], count: int, rng
) -> tuple[float, int]:
    """``count`` sequential scan queries over random tables."""
    total = 0.0
    for _ in range(count):
        table = tables[int(rng.integers(0, len(tables)))]
        result = session.execute_read([(table, None)], label="ro")
        total += result.latency_s
        session.clock.advance_by(result.latency_s)
    return total, count


def run_wp1(
    trigger_trait: Trait | None = None,
    threshold: float = 0.0,
    scale_factor: float = 2.0,
    cycles: int = 6,
    writes_per_cycle: int = 10,
    queries_per_cycle: int = 16,
    seed: int = 11,
    table_format: str = "delta",
) -> LstBenchRun:
    """TPC-DS WP1: alternating modification and query phases, one cluster.

    Args:
        trigger_trait: optimize-after-write trigger trait (None disables
            auto-compaction — the tuner's "default" iteration).
        threshold: trigger threshold for the trait.
        scale_factor: TPC-DS scale (§6.3 uses SF 100 on 16 nodes).
        cycles: modification+query cycles.
        writes_per_cycle: mis-tuned incremental writes per cycle.
        queries_per_cycle: scan queries per cycle.
        seed: determinism root.
        table_format: LST profile (§6.3 ran Delta Lake v2.4.0).
    """
    if cycles <= 0:
        raise ValidationError("cycles must be positive")
    cluster = Cluster("wp1", executors=16, cores_per_executor=8)
    world = _World(seed, table_format, cluster)
    hook = world.make_hook(trigger_trait, threshold, cluster)
    tables = create_tpcds_database(
        world.catalog,
        "tpcds",
        scale_factor,
        world.query_session,
        WellTunedWriter(),
        table_format=table_format,
    )
    facts = [t for name, t in tables.items() if t.spec.is_partitioned]
    writer = MisconfiguredShuffleWriter(num_partitions=128)
    run = LstBenchRun(workload="tpcds-wp1")
    for cycle in range(cycles):
        duration = 0.0
        compactions = 0
        for _ in range(writes_per_cycle):
            fact = facts[int(world.rng.integers(0, len(facts)))]
            volume = max(1, int(fact.total_data_bytes * 0.02))
            months = fact.partitions()
            d, c = _hook_write(
                world.query_session, hook, fact, volume, writer, months[-3:] or months
            )
            duration += d
            compactions += c
        run.phases.append(
            PhaseResult(f"modify-{cycle}", duration, writes_per_cycle, compactions)
        )
        q_duration, q_ops = _query_phase(
            world.query_session, list(tables.values()), queries_per_cycle, world.rng
        )
        run.phases.append(PhaseResult(f"query-{cycle}", q_duration, q_ops))
    return run


def run_wp3(
    trigger_trait: Trait | None = None,
    threshold: float = 0.0,
    scale_factor: float = 2.0,
    cycles: int = 6,
    writes_per_cycle: int = 10,
    queries_per_cycle: int = 16,
    seed: int = 13,
    table_format: str = "delta",
) -> LstBenchRun:
    """TPC-DS WP3: a write cluster (plus a sidecar for compaction) and a
    separate read cluster running concurrently.

    Per cycle the two clusters proceed in parallel, so the cycle's duration
    is the maximum of the write-side time (including hook compactions) and
    the read-side time — decoupling that makes compaction consistently
    beneficial in Figure 9d.
    """
    if cycles <= 0:
        raise ValidationError("cycles must be positive")
    read_cluster = Cluster("wp3-read", executors=16, cores_per_executor=8)
    write_cluster = Cluster("wp3-write", executors=7, cores_per_executor=8)
    world = _World(seed, table_format, read_cluster, write_cluster)
    hook = world.make_hook(trigger_trait, threshold, write_cluster)
    tables = create_tpcds_database(
        world.catalog,
        "tpcds",
        scale_factor,
        world.write_session,
        WellTunedWriter(),
        table_format=table_format,
    )
    facts = [t for t in tables.values() if t.spec.is_partitioned]
    writer = MisconfiguredShuffleWriter(num_partitions=128)
    run = LstBenchRun(workload="tpcds-wp3")
    for cycle in range(cycles):
        write_time = 0.0
        compactions = 0
        for _ in range(writes_per_cycle):
            fact = facts[int(world.rng.integers(0, len(facts)))]
            volume = max(1, int(fact.total_data_bytes * 0.02))
            months = fact.partitions()
            result = world.write_session.write(
                fact, volume, writer, partitions=months[-3:] or months, label="rw"
            )
            write_time += result.latency_s
            if hook is not None:
                decision = hook.on_write(fact)
                if (
                    decision.triggered
                    and decision.result is not None
                    and decision.result.success
                ):
                    write_time += decision.result.duration_s
                    compactions += 1
        read_time = 0.0
        for _ in range(queries_per_cycle):
            table = list(tables.values())[int(world.rng.integers(0, len(tables)))]
            result = world.query_session.execute_read([(table, None)], label="ro")
            read_time += result.latency_s
        cycle_duration = max(write_time, read_time)
        world.catalog.clock.advance_by(cycle_duration)
        run.phases.append(
            PhaseResult(
                f"cycle-{cycle}",
                cycle_duration,
                writes_per_cycle + queries_per_cycle,
                compactions,
            )
        )
    return run


def run_tpch(
    trigger_trait: Trait | None = None,
    threshold: float = 0.0,
    scale_factor: float = 1.0,
    modification_rounds: int = 12,
    queries: int = 12,
    seed: int = 17,
    table_format: str = "delta",
) -> LstBenchRun:
    """TPC-H: unpartitioned tables, modification-heavy (Figure 9b).

    Compaction must rewrite entire non-partitioned tables, making each
    trigger expensive, while the long data-modification phase dominates the
    runtime anyway — so the no-compaction default wins.
    """
    if modification_rounds <= 0:
        raise ValidationError("modification_rounds must be positive")
    cluster = Cluster("tpch", executors=16, cores_per_executor=8)
    world = _World(seed, table_format, cluster)
    hook = world.make_hook(trigger_trait, threshold, cluster)
    tables = create_tpch_database(
        world.catalog,
        "tpch",
        scale_factor,
        world.query_session,
        WellTunedWriter(),
        table_format=table_format,
        partition_lineitem=False,
    )
    targets = [tables["lineitem"], tables["orders"]]
    writer = MisconfiguredShuffleWriter(num_partitions=32)
    run = LstBenchRun(workload="tpch")
    duration = 0.0
    compactions = 0
    for _ in range(modification_rounds):
        table = targets[int(world.rng.integers(0, len(targets)))]
        volume = max(1, int(table.total_data_bytes * 0.03))
        d, c = _hook_write(world.query_session, hook, table, volume, writer, None)
        duration += d
        compactions += c
    run.phases.append(
        PhaseResult("modify", duration, modification_rounds, compactions)
    )
    q_duration, q_ops = _query_phase(
        world.query_session, list(tables.values()), queries, world.rng
    )
    run.phases.append(PhaseResult("query", q_duration, q_ops))
    return run
