"""TPC-H-like schema and data generator.

The §6 synthetic experiments generate CAB databases whose schemas are
TPC-H's, populated with ``dbgen``-style volumes, with ``lineitem``
partitioned by ``shipdate`` at monthly granularity and every other table —
notably ``orders``, the other update target — unpartitioned.

Row widths are approximate on-disk (columnar, compressed) bytes per row;
volumes scale linearly with the scale factor like ``dbgen``'s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.policies import TablePolicy
from repro.engine.session import EngineSession
from repro.engine.writers import WriterProfile
from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.lst.partitioning import MonthTransform, PartitionField, PartitionSpec
from repro.lst.schema import Field, Schema


@dataclass(frozen=True)
class TpchTableSpec:
    """Volume/shape definition for one TPC-H table."""

    name: str
    schema: Schema
    rows_per_sf: int
    bytes_per_row: int
    partition_column: str | None = None

    def bytes_at(self, scale_factor: float) -> int:
        """On-disk bytes at a given scale factor."""
        return int(self.rows_per_sf * scale_factor * self.bytes_per_row)


def _schema(*columns: tuple[str, str]) -> Schema:
    return Schema.of(*(Field(name, type_) for name, type_ in columns))


#: The eight TPC-H tables with dbgen cardinalities (rows at SF 1).
TPCH_TABLES: tuple[TpchTableSpec, ...] = (
    TpchTableSpec(
        "lineitem",
        _schema(
            ("l_orderkey", "long"),
            ("l_partkey", "long"),
            ("l_suppkey", "long"),
            ("l_quantity", "decimal"),
            ("l_extendedprice", "decimal"),
            ("l_discount", "decimal"),
            ("l_shipdate", "date"),
            ("l_comment", "string"),
        ),
        rows_per_sf=6_000_000,
        bytes_per_row=120,
        partition_column="l_shipdate",
    ),
    TpchTableSpec(
        "orders",
        _schema(
            ("o_orderkey", "long"),
            ("o_custkey", "long"),
            ("o_orderstatus", "string"),
            ("o_totalprice", "decimal"),
            ("o_orderdate", "date"),
            ("o_comment", "string"),
        ),
        rows_per_sf=1_500_000,
        bytes_per_row=100,
    ),
    TpchTableSpec(
        "partsupp",
        _schema(
            ("ps_partkey", "long"),
            ("ps_suppkey", "long"),
            ("ps_availqty", "int"),
            ("ps_supplycost", "decimal"),
        ),
        rows_per_sf=800_000,
        bytes_per_row=140,
    ),
    TpchTableSpec(
        "part",
        _schema(
            ("p_partkey", "long"),
            ("p_name", "string"),
            ("p_brand", "string"),
            ("p_retailprice", "decimal"),
        ),
        rows_per_sf=200_000,
        bytes_per_row=150,
    ),
    TpchTableSpec(
        "customer",
        _schema(
            ("c_custkey", "long"),
            ("c_name", "string"),
            ("c_nationkey", "int"),
            ("c_acctbal", "decimal"),
        ),
        rows_per_sf=150_000,
        bytes_per_row=160,
    ),
    TpchTableSpec(
        "supplier",
        _schema(
            ("s_suppkey", "long"),
            ("s_name", "string"),
            ("s_nationkey", "int"),
            ("s_acctbal", "decimal"),
        ),
        rows_per_sf=10_000,
        bytes_per_row=150,
    ),
    TpchTableSpec(
        "nation",
        _schema(("n_nationkey", "int"), ("n_name", "string"), ("n_regionkey", "int")),
        rows_per_sf=25,
        bytes_per_row=120,
    ),
    TpchTableSpec(
        "region",
        _schema(("r_regionkey", "int"), ("r_name", "string")),
        rows_per_sf=5,
        bytes_per_row=120,
    ),
)


def tpch_table_spec(name: str) -> TpchTableSpec:
    """Look up a TPC-H table spec by name.

    Raises:
        ValidationError: for unknown table names.
    """
    for spec in TPCH_TABLES:
        if spec.name == name:
            return spec
    raise ValidationError(f"no TPC-H table named {name!r}")


def create_tpch_database(
    catalog: Catalog,
    database: str,
    scale_factor: float,
    session: EngineSession,
    loader: WriterProfile,
    months: int = 12,
    policy: TablePolicy | None = None,
    quota_objects: int | None = None,
    table_format: str = "iceberg",
    partition_lineitem: bool = True,
) -> dict[str, BaseTable]:
    """Create and load a TPC-H-schema database.

    ``lineitem`` is partitioned by ship-date month and its volume spread
    uniformly across ``months`` partitions; all other tables are loaded
    unpartitioned in one bulk write.  The *loader* profile controls how
    fragmented the initial load is — the paper's baseline uses a
    mis-configured load that seeds the small-file problem (§6.1 notes the
    high initial file count).

    Args:
        catalog: target catalog; the database must not exist yet.
        database: database name.
        scale_factor: TPC-H scale factor (1.0 ≈ 1 GB of modelled data).
        session: engine session performing the load writes.
        loader: writer profile shaping the initial files.
        months: number of monthly ``lineitem`` partitions.
        policy: table policy for every created table.
        quota_objects: optional namespace quota for the database.
        table_format: LST format for all tables.
        partition_lineitem: set False to build the fully unpartitioned
            variant (the §6.3 TPC-H workload, where compaction must rewrite
            whole tables).

    Returns:
        Mapping of table name to the created table.
    """
    if months <= 0:
        raise ValidationError("months must be positive")
    catalog.create_database(database, quota_objects=quota_objects)
    tables: dict[str, BaseTable] = {}
    for spec in TPCH_TABLES:
        partition_spec = None
        if spec.partition_column is not None and partition_lineitem:
            partition_spec = PartitionSpec.of(
                PartitionField(spec.partition_column, MonthTransform())
            )
        table = catalog.create_table(
            f"{database}.{spec.name}",
            spec.schema,
            spec=partition_spec,
            table_format=table_format,
            policy=policy,
        )
        tables[spec.name] = table

        total = spec.bytes_at(scale_factor)
        if total <= 0:
            continue
        if partition_spec is not None:
            per_month = total // months
            if per_month > 0:
                for month in range(months):
                    session.write(table, per_month, loader, partitions=(month,), label="load")
        else:
            session.write(table, total, loader, label="load")
    return tables
