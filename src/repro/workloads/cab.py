"""CAB-style multi-database workload (§6 experimental design).

Reproduces the paper's synthetic setup: ``CAB-gen`` metadata for 20
TPC-H-schema databases, query streams mimicking dashboards (sinusoidal),
interactive bursts, and hourly jobs, with mixed update patterns across the
partitioned ``lineitem`` and unpartitioned ``orders`` tables (the paper
extended CAB to update both).  A deliberate write surge lands around hour 4,
matching the load spike §6.1 observes.

The workload attaches to a discrete-event simulator: read queries execute
at their arrival instant; writes are two-phase (transaction opened at
arrival, committed after the write's latency), so they genuinely race any
compaction jobs running on the side — that race is where Table 1's
client-side conflicts come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.engine.session import EngineSession
from repro.engine.writers import MisconfiguredShuffleWriter
from repro.errors import ValidationError
from repro.lst.base import BaseTable
from repro.simulation.rng import derive_rng
from repro.simulation.simulator import Simulator
from repro.units import GiB, HOUR, MiB
from repro.workloads.patterns import BurstPattern, PeriodicPattern, SinusoidalPattern
from repro.workloads.tpch import create_tpch_database


@dataclass
class CabConfig:
    """Parameters of a CAB run (defaults: laptop-scale §6 shape)."""

    #: Number of tenant databases (the paper uses 20).
    databases: int = 20
    #: Modelled data volume per database (paper: 500 GB / 20 = 25 GB each).
    data_bytes_per_db: int = 2 * GiB
    #: Experiment duration (paper: 5 hours).
    duration_s: float = 5 * HOUR
    #: Monthly ``lineitem`` partitions per database.
    lineitem_months: int = 12
    #: Read-only query rate per database (sinusoidal around this mean).
    ro_rate_per_hour: float = 5.0
    #: Write query rate per database.
    rw_rate_per_hour: float = 2.0
    #: Hour of the large write burst ("daily maintenance jobs").
    write_spike_hour: float = 4.0
    #: Mean extra write queries per database during the spike.
    spike_events_per_db: float = 3.0
    #: Mean bytes per incremental insert.
    insert_bytes_mean: int = 48 * MiB
    #: Mis-tuned shuffle partition count (files per insert).
    shuffle_partitions: int = 48
    #: How often the file-count series is sampled.
    sample_interval_s: float = 600.0
    #: Mean upstream-compute time of a write job (its transaction stays
    #: open throughout — the client-conflict window of Table 1).
    write_job_duration_mean_s: float = 120.0
    #: Root seed (NFR2: identical seeds replay identical workloads).
    seed: int = 42

    def __post_init__(self) -> None:
        if self.databases <= 0:
            raise ValidationError("databases must be positive")
        if self.duration_s <= 0:
            raise ValidationError("duration_s must be positive")
        if self.lineitem_months <= 0:
            raise ValidationError("lineitem_months must be positive")


@dataclass
class CabCounters:
    """Aggregate workload statistics collected during a run."""

    ro_queries: int = 0
    rw_queries: int = 0
    client_conflicts: int = 0
    failed_writes: int = 0
    last_completion: float = 0.0
    write_queries_by_hour: dict[int, int] = field(default_factory=dict)


class CabWorkload:
    """A 20-database CAB run bound to a catalog and query cluster.

    Args:
        catalog: catalog to create the databases in.
        session: engine session on the query-processing cluster.
        config: workload parameters.

    Typical use::

        workload = CabWorkload(catalog, session, CabConfig())
        workload.load()
        simulator = Simulator(clock)      # the catalog's clock
        workload.attach(simulator)
        simulator.run_until(config.duration_s)
    """

    def __init__(self, catalog: Catalog, session: EngineSession, config: CabConfig) -> None:
        self.catalog = catalog
        self.session = session
        self.config = config
        self.counters = CabCounters()
        self.tables: dict[str, dict[str, BaseTable]] = {}
        self._insert_writer = MisconfiguredShuffleWriter(config.shuffle_partitions)
        self._loaded = False

    # --- setup ------------------------------------------------------------------

    def database_names(self) -> list[str]:
        """The workload's database names."""
        return [f"cab{i:02d}" for i in range(self.config.databases)]

    def load(self) -> None:
        """Create and initially load every database (fragmented load).

        The initial load deliberately produces many small files — the §6.1
        baseline starts from a high file count "due to factors like cluster
        misconfiguration".
        """
        if self._loaded:
            raise ValidationError("workload already loaded")
        loader = MisconfiguredShuffleWriter(self.config.shuffle_partitions)
        # Scale factor relative to TPC-H SF1 total (~1 GB modelled).
        scale = self.config.data_bytes_per_db / (1.0 * GiB)
        for name in self.database_names():
            self.tables[name] = create_tpch_database(
                self.catalog,
                name,
                scale_factor=scale,
                session=self.session,
                loader=loader,
                months=self.config.lineitem_months,
                quota_objects=500_000,
            )
        self._loaded = True

    # --- metrics -------------------------------------------------------------------

    def total_data_files(self) -> int:
        """Live data files across all workload tables."""
        return sum(
            table.data_file_count
            for per_db in self.tables.values()
            for table in per_db.values()
        )

    def sample_file_count(self, now: float) -> None:
        """Record the current file count into ``cab.data_file_count``."""
        self.catalog.telemetry.record("cab.data_file_count", now, self.total_data_files())

    # --- event scheduling ----------------------------------------------------------

    def attach(self, simulator: Simulator) -> None:
        """Schedule the full query/write/sampling event program."""
        if not self._loaded:
            raise ValidationError("call load() before attach()")
        self._sim_ref = simulator
        cfg = self.config
        start = simulator.now
        end = start + cfg.duration_s

        for db_index, name in enumerate(self.database_names()):
            ro_rng = derive_rng(cfg.seed, "cab", name, "ro")
            rw_rng = derive_rng(cfg.seed, "cab", name, "rw")
            # Dashboards: sinusoidal demand, phase-shifted per tenant.
            ro_pattern = SinusoidalPattern(
                cfg.ro_rate_per_hour,
                amplitude=0.5,
                period_s=cfg.duration_s,
                phase=db_index * 0.6,
            )
            # Steady incremental writes plus hourly jobs.
            rw_pattern = SinusoidalPattern(
                cfg.rw_rate_per_hour, amplitude=0.3, period_s=cfg.duration_s
            ) + PeriodicPattern(HOUR, offset_s=120.0 + 37.0 * db_index)
            # The hour-4 surge: daily-maintenance-style large burst.
            spike = BurstPattern(
                [cfg.write_spike_hour * HOUR],
                events_per_burst=cfg.spike_events_per_db,
                spread_s=900.0,
            )
            for t in ro_pattern.arrivals(start, end, ro_rng):
                simulator.at(t, self._make_read(name), name="cab-ro")
            write_arrivals = rw_pattern.arrivals(start, end, rw_rng)
            write_arrivals += spike.arrivals(start, end, rw_rng)
            for t in sorted(write_arrivals):
                simulator.at(t, self._make_write(name), name="cab-rw")

        simulator.every(
            cfg.sample_interval_s,
            lambda: self.sample_file_count(simulator.now),
            name="cab-sample",
            start=start,
            until=end + 1,
        )

    # --- query bodies -----------------------------------------------------------------

    def _make_read(self, db_name: str):
        def run() -> None:
            rng = self.session.rng
            per_db = self.tables[db_name]
            lineitem = per_db["lineitem"]
            orders = per_db["orders"]
            months = lineitem.partitions()
            scans: list[tuple[BaseTable, list[tuple] | None]] = []
            if months:
                span = min(len(months), int(rng.integers(1, 5)))
                first = int(rng.integers(0, len(months) - span + 1))
                scans.append((lineitem, months[first : first + span]))
            scans.append((orders, None))
            result = self.session.execute_read(scans, label="ro")
            self.counters.ro_queries += 1
            self.counters.last_completion = max(
                self.counters.last_completion, result.started_at + result.latency_s
            )

        return run

    def _make_write(self, db_name: str):
        def run() -> None:
            simulator_now = self.session.clock.now
            rng = self.session.rng
            per_db = self.tables[db_name]
            cfg = self.config
            self.counters.rw_queries += 1
            hour = int(simulator_now // HOUR)
            self.counters.write_queries_by_hour[hour] = (
                self.counters.write_queries_by_hour.get(hour, 0) + 1
            )
            self.catalog.telemetry.record("cab.write_queries", simulator_now, 1.0)

            kind = rng.uniform()
            volume = int(rng.lognormal(0.0, 0.4) * cfg.insert_bytes_mean)
            # End-user ETL jobs spend minutes in upstream compute while
            # their write transaction stays open.
            job_compute = float(
                rng.lognormal(0.0, 0.5) * cfg.write_job_duration_mean_s
            )
            if kind < 0.6:
                lineitem = per_db["lineitem"]
                months = lineitem.partitions()
                # Incremental inserts target recent months.
                recent = months[-3:] if len(months) >= 3 else months
                job = self.session.start_write(
                    lineitem,
                    volume,
                    self._insert_writer,
                    partitions=recent,
                    label="rw",
                    extra_duration_s=job_compute,
                )
            elif kind < 0.8:
                job = self.session.start_write(
                    per_db["orders"],
                    volume,
                    self._insert_writer,
                    label="rw",
                    extra_duration_s=job_compute,
                )
            else:
                try:
                    job = self.session.start_overwrite(
                        per_db["orders"],
                        replace_fraction=0.1,
                        writer=self._insert_writer,
                        label="rw",
                        extra_duration_s=job_compute,
                    )
                except ValidationError:
                    return

            def finish() -> None:
                result = job.complete()
                self.counters.client_conflicts += result.conflicts
                if not result.committed:
                    self.counters.failed_writes += 1
                self.counters.last_completion = max(
                    self.counters.last_completion, result.started_at + result.latency_s
                )

            self._schedule_after(job.latency_s, finish)

        return run

    def _schedule_after(self, delay: float, action) -> None:
        if not hasattr(self, "_sim_ref"):
            raise ValidationError("workload not attached to a simulator")
        self._sim_ref.after(delay, action, name="cab-write-commit")
