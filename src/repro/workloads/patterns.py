"""Arrival patterns for query streams.

The CAB study (and §6 of the paper) characterises cloud analytics demand as
a mix of: constant demand with sinusoidal variation (dashboards), short
bursts (interactive exploration), large bursts (daily maintenance jobs),
and predictable workloads at fixed times (hourly jobs).  Each pattern here
generates arrival timestamps over a window; stochastic patterns draw from a
caller-supplied seeded RNG so whole workloads replay identically.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ValidationError
from repro.units import HOUR


class ArrivalPattern(abc.ABC):
    """Generates event arrival times within a window."""

    @abc.abstractmethod
    def arrivals(self, start: float, end: float, rng: np.random.Generator) -> list[float]:
        """Sorted arrival timestamps in ``[start, end)``."""

    def __add__(self, other: "ArrivalPattern") -> "CombinedPattern":
        return CombinedPattern([self, other])


class SinusoidalPattern(ArrivalPattern):
    """Non-homogeneous Poisson arrivals with sinusoidal intensity.

    Intensity: ``λ(t) = rate/HOUR × (1 + amplitude·sin(2πt/period + phase))``,
    sampled by thinning.

    Args:
        rate_per_hour: mean arrival rate.
        amplitude: relative swing in [0, 1].
        period_s: oscillation period (default one day).
        phase: phase offset in radians.
    """

    def __init__(
        self,
        rate_per_hour: float,
        amplitude: float = 0.5,
        period_s: float = 24 * HOUR,
        phase: float = 0.0,
    ) -> None:
        if rate_per_hour < 0:
            raise ValidationError("rate_per_hour must be >= 0")
        if not 0 <= amplitude <= 1:
            raise ValidationError(f"amplitude must be in [0, 1], got {amplitude}")
        if period_s <= 0:
            raise ValidationError("period_s must be positive")
        self.rate_per_hour = rate_per_hour
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase = phase

    def intensity(self, t: float) -> float:
        """Instantaneous rate (events per second) at time ``t``."""
        base = self.rate_per_hour / HOUR
        return base * (
            1.0 + self.amplitude * math.sin(2 * math.pi * t / self.period_s + self.phase)
        )

    def arrivals(self, start: float, end: float, rng: np.random.Generator) -> list[float]:
        if end <= start or self.rate_per_hour == 0:
            return []
        lam_max = self.rate_per_hour / HOUR * (1.0 + self.amplitude)
        times = []
        t = start
        while True:
            t += rng.exponential(1.0 / lam_max)
            if t >= end:
                break
            if rng.uniform() <= self.intensity(t) / lam_max:
                times.append(t)
        return times


class BurstPattern(ArrivalPattern):
    """Clusters of arrivals at fixed burst instants.

    Args:
        burst_offsets_s: burst centre times, relative to the window start.
        events_per_burst: mean events per burst (Poisson-distributed).
        spread_s: burst half-width; events land uniformly in it.
    """

    def __init__(
        self,
        burst_offsets_s: list[float],
        events_per_burst: float,
        spread_s: float = 300.0,
    ) -> None:
        if events_per_burst < 0:
            raise ValidationError("events_per_burst must be >= 0")
        if spread_s < 0:
            raise ValidationError("spread_s must be >= 0")
        self.burst_offsets_s = sorted(burst_offsets_s)
        self.events_per_burst = events_per_burst
        self.spread_s = spread_s

    def arrivals(self, start: float, end: float, rng: np.random.Generator) -> list[float]:
        times = []
        for offset in self.burst_offsets_s:
            centre = start + offset
            if not start <= centre < end:
                continue
            count = rng.poisson(self.events_per_burst)
            for _ in range(count):
                t = centre + rng.uniform(-self.spread_s, self.spread_s)
                if start <= t < end:
                    times.append(float(t))
        return sorted(times)


class PeriodicPattern(ArrivalPattern):
    """Deterministic arrivals every ``interval_s`` (hourly jobs etc.).

    Args:
        interval_s: spacing between arrivals.
        offset_s: first arrival's offset from the window start.
        jitter_s: optional uniform jitter around each tick.
    """

    def __init__(self, interval_s: float, offset_s: float = 0.0, jitter_s: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValidationError("interval_s must be positive")
        if jitter_s < 0:
            raise ValidationError("jitter_s must be >= 0")
        self.interval_s = interval_s
        self.offset_s = offset_s
        self.jitter_s = jitter_s

    def arrivals(self, start: float, end: float, rng: np.random.Generator) -> list[float]:
        times = []
        t = start + self.offset_s
        while t < end:
            if self.jitter_s:
                jittered = t + rng.uniform(-self.jitter_s, self.jitter_s)
            else:
                jittered = t
            if start <= jittered < end:
                times.append(float(jittered))
            t += self.interval_s
        return sorted(times)


class CombinedPattern(ArrivalPattern):
    """Superposition of several patterns."""

    def __init__(self, patterns: list[ArrivalPattern]) -> None:
        if not patterns:
            raise ValidationError("need at least one pattern to combine")
        self.patterns = list(patterns)

    def arrivals(self, start: float, end: float, rng: np.random.Generator) -> list[float]:
        times: list[float] = []
        for pattern in self.patterns:
            times.extend(pattern.arrivals(start, end, rng))
        return sorted(times)
