"""Compute clusters.

A cluster is a pool of identical executors plus a lightweight contention
model: queries that overlap in simulated time slow each other down once the
number of concurrently running queries exceeds the cluster's slot count.
This reproduces the second-order effect the paper observes in Figure 8 —
after compaction, individual queries finish faster, overlap less, and
latency *variability* shrinks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import ValidationError


@dataclass
class Cluster:
    """A named executor pool.

    Attributes:
        name: used in telemetry series names.
        executors: number of executor nodes.
        executor_memory_gb: memory per executor — the ``ExecutorMemoryGB``
            term of the paper's GBHr formula.
        cores_per_executor: task slots per executor.
        query_slots: queries that can run without mutual slowdown;
            defaults to the executor count.
        contention_coeff: latency multiplier slope once slots are exceeded.
    """

    name: str
    executors: int = 4
    executor_memory_gb: float = 64.0
    cores_per_executor: int = 8
    query_slots: int | None = None
    contention_coeff: float = 0.5
    _active_ends: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.executors <= 0:
            raise ValidationError(f"executors must be positive, got {self.executors}")
        if self.executor_memory_gb <= 0:
            raise ValidationError("executor_memory_gb must be positive")
        if self.cores_per_executor <= 0:
            raise ValidationError("cores_per_executor must be positive")
        if self.query_slots is None:
            self.query_slots = self.executors

    @property
    def parallelism(self) -> int:
        """Total task slots (executors × cores)."""
        return self.executors * self.cores_per_executor

    @property
    def total_memory_gb(self) -> float:
        """Total executor memory in GB."""
        return self.executors * self.executor_memory_gb

    # --- contention -----------------------------------------------------------

    def active_queries(self, now: float) -> int:
        """Queries still running at ``now`` (prunes finished entries)."""
        cutoff = bisect.bisect_right(self._active_ends, now)
        if cutoff:
            del self._active_ends[:cutoff]
        return len(self._active_ends)

    def contention_multiplier(self, now: float) -> float:
        """Latency multiplier for a query starting at ``now``.

        1.0 while concurrent queries fit in ``query_slots``; grows linearly
        with the overflow beyond that.
        """
        active = self.active_queries(now)
        overflow = max(0, active + 1 - int(self.query_slots or 1))
        return 1.0 + self.contention_coeff * (overflow / max(int(self.query_slots or 1), 1))

    def register_query(self, start: float, duration: float) -> None:
        """Record a running query for contention accounting."""
        if duration < 0:
            raise ValidationError(f"duration must be >= 0, got {duration}")
        bisect.insort(self._active_ends, start + duration)

    def gbhr(self, duration_s: float) -> float:
        """GB-hours consumed by occupying the whole cluster for ``duration_s``."""
        return self.total_memory_gb * (duration_s / 3600.0)
