"""Analytic cost model for query and rewrite execution.

The model decomposes query latency the way the small-file literature (and
the paper's §1–§2) explains the problem:

``latency = planning + (task startup + effective scan + MoR merge) / parallelism``

* *planning* grows with metadata: manifests to read plus a per-file entry
  cost — trickle writes inflate this;
* *task startup* is a fixed cost per file (each file becomes at least one
  task), which dominates when files are small;
* *effective scan* charges each file at least ``small_read_floor`` bytes,
  modelling the lost encoding/compression efficiency of tiny columnar
  files;
* *MoR merge* charges for reading delete files and applying them to every
  referenced data file.

All coefficients are explicit dataclass fields so experiments (and users)
can calibrate them; defaults are tuned so the paper's headline shapes hold
(e.g. a ~1.5× TPC-DS slowdown after 3% churn in Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.lst.base import ScanPlan
from repro.units import GiB, MiB


@dataclass(frozen=True)
class CostModel:
    """Latency/throughput coefficients for a simulated engine."""

    #: Fixed query-planning latency (driver startup, catalog round trips).
    base_planning_s: float = 0.5
    #: Seconds to read one metadata manifest during planning.
    manifest_read_s: float = 0.02
    #: Planning cost per live file entry (statistics pruning, split planning).
    plan_per_file_s: float = 0.0004
    #: Task startup + file open overhead per scanned file (seconds).
    task_overhead_s: float = 0.12
    #: Sustained scan throughput per core (bytes/second).
    scan_bytes_per_core_s: float = 64 * MiB
    #: Every file is charged at least this many bytes (columnar inefficiency).
    small_read_floor: int = 16 * MiB
    #: Multiplier on delete-file bytes (read + sort + apply).
    delete_merge_multiplier: float = 3.0
    #: Extra seconds per data file affected by at least one delete file.
    delete_apply_per_file_s: float = 0.05
    #: Write throughput per core (bytes/second) for inserts.
    write_bytes_per_core_s: float = 32 * MiB
    #: Fixed commit latency per write transaction.
    commit_s: float = 1.0
    #: Rewrite (compaction) throughput per executor (bytes/second).
    rewrite_bytes_per_executor_s: float = 48 * MiB
    #: Fixed startup cost of one compaction job (driver, planning, commit).
    compaction_startup_s: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "scan_bytes_per_core_s",
            "write_bytes_per_core_s",
            "rewrite_bytes_per_executor_s",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")

    # --- reads --------------------------------------------------------------

    def planning_latency(self, plan: ScanPlan) -> float:
        """Driver-side planning time for a scan."""
        return (
            self.base_planning_s
            + plan.manifests_read * self.manifest_read_s
            + plan.file_count * self.plan_per_file_s
        )

    def effective_scan_bytes(self, plan: ScanPlan) -> int:
        """Bytes charged for scanning, after the small-file floor."""
        return sum(max(f.size_bytes, self.small_read_floor) for f in plan.files)

    def merge_on_read_seconds(self, plan: ScanPlan, parallelism: int) -> float:
        """Extra executor time to apply MoR delete files, already parallel."""
        if not plan.delete_files:
            return 0.0
        delete_bytes = plan.delete_bytes * self.delete_merge_multiplier
        referenced = set()
        for delete_file in plan.delete_files:
            referenced.update(delete_file.references)
        scanned_ids = {f.file_id for f in plan.files}
        affected = len(referenced & scanned_ids)
        work = delete_bytes / self.scan_bytes_per_core_s + affected * self.delete_apply_per_file_s
        return work / max(parallelism, 1)

    def read_latency(self, plan: ScanPlan, parallelism: int) -> float:
        """End-to-end latency of scanning ``plan`` with ``parallelism`` cores."""
        parallelism = max(parallelism, 1)
        startup = plan.file_count * self.task_overhead_s
        scan = self.effective_scan_bytes(plan) / self.scan_bytes_per_core_s
        return (
            self.planning_latency(plan)
            + (startup + scan) / parallelism
            + self.merge_on_read_seconds(plan, parallelism)
        )

    # --- writes --------------------------------------------------------------

    def write_latency(self, total_bytes: int, file_count: int, parallelism: int) -> float:
        """Latency of writing ``total_bytes`` across ``file_count`` files."""
        parallelism = max(parallelism, 1)
        startup = file_count * self.task_overhead_s
        write = total_bytes / self.write_bytes_per_core_s
        return self.commit_s + (startup + write) / parallelism

    # --- compaction ------------------------------------------------------------

    def rewrite_duration(self, rewritten_bytes: int, executors: int) -> float:
        """Wall-clock duration of rewriting ``rewritten_bytes``."""
        executors = max(executors, 1)
        return self.compaction_startup_s + rewritten_bytes / (
            executors * self.rewrite_bytes_per_executor_s
        )

    def rewrite_bytes_per_hour(self, executors: int) -> float:
        """``RewriteBytesPerHour`` — system rewrite throughput (paper §4.2)."""
        return max(executors, 1) * self.rewrite_bytes_per_executor_s * 3600.0

    def estimate_compaction_gbhr(
        self, data_size_bytes: int, executor_memory_gb: float, executors: int
    ) -> float:
        """The paper's compute-cost estimator, verbatim:

        ``GBHr_c = ExecutorMemoryGB × (DataSize_c / RewriteBytesPerHour)``

        Args:
            data_size_bytes: candidate's total bytes (``DataSize_c``).
            executor_memory_gb: total memory allocated to executors.
            executors: executors used to derive ``RewriteBytesPerHour``.
        """
        if data_size_bytes < 0:
            raise ValidationError("data size must be >= 0")
        return executor_memory_gb * (
            data_size_bytes / self.rewrite_bytes_per_hour(executors)
        )


#: A cost model with coarser throughput, handy for quick demos where even
#: modest tables should show visible latency differences.
DEMO_COST_MODEL = CostModel(
    scan_bytes_per_core_s=16 * MiB,
    write_bytes_per_core_s=8 * MiB,
    rewrite_bytes_per_executor_s=2 * GiB,
)
