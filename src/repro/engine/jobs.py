"""Compaction jobs: rewrite execution with GBHr accounting.

A :class:`CompactionJob` mirrors how the paper runs compaction: a Spark app
per candidate (each "application" is one job-level GBHrApp observation,
§6's custom metric), started on the compaction cluster, committing its
rewrite optimistically at completion.  Cluster-side conflicts abort the job
— compaction is never retried in place; AutoComp simply reconsiders the
candidate on the next cycle, as at LinkedIn.

On successful commit the job optionally expires superseded snapshots per
the table's retention property, physically deleting the replaced small
files — without this, storage-level file counts would not drop after
compaction (Iceberg defers physical deletion to snapshot expiration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.errors import CommitConflictError, ValidationError
from repro.lst.base import BaseTable
from repro.lst.maintenance import RewritePlan
from repro.simulation.clock import SimClock
from repro.simulation.telemetry import Telemetry


@dataclass(frozen=True)
class CompactionOutcome:
    """Result of one compaction application."""

    table: str
    success: bool
    conflict_reason: str | None
    started_at: float
    finished_at: float
    duration_s: float
    gbhr: float
    rewritten_bytes: int
    files_before: int
    files_after: int
    planned_reduction: int
    actual_reduction: int

    @property
    def wasted(self) -> bool:
        """True when resources were spent but the commit was aborted."""
        return not self.success


class CompactionJob:
    """One compaction application over a prepared rewrite plan."""

    def __init__(
        self,
        table: BaseTable,
        plan: RewritePlan,
        cluster: Cluster,
        cost_model: CostModel | None = None,
        telemetry: Telemetry | None = None,
        clock: SimClock | None = None,
        cleanup_snapshots: bool = True,
    ) -> None:
        if plan.is_empty:
            raise ValidationError("cannot run a compaction job on an empty plan")
        self.table = table
        self.plan = plan
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.telemetry = telemetry if telemetry is not None else table.telemetry
        self.clock = clock if clock is not None else table.clock
        self.cleanup_snapshots = cleanup_snapshots
        self._txn = None
        self.started_at: float | None = None
        self.duration_s = self.cost_model.rewrite_duration(
            plan.rewritten_bytes, cluster.executors
        )
        self.gbhr = cluster.total_memory_gb * (self.duration_s / 3600.0)

    def start(self) -> float:
        """Open the rewrite transaction (capturing the base version).

        Returns:
            The job's expected duration in seconds; callers running under a
            simulator should schedule :meth:`finish` after this long.
        """
        if self._txn is not None:
            raise ValidationError("compaction job already started")
        self.started_at = self.clock.now
        txn = self.table.new_rewrite()
        for group in self.plan.groups:
            txn.rewrite(list(group.sources), list(group.output_sizes))
        self._txn = txn
        return self.duration_s

    def finish(self) -> CompactionOutcome:
        """Commit the rewrite at the current simulated time.

        Returns:
            A :class:`CompactionOutcome`; on a cluster-side conflict the
            outcome has ``success=False`` and the spent GBHr still recorded
            (wasted work, as in the paper's §2 remark on retries).
        """
        if self._txn is None:
            raise ValidationError("compaction job was never started")
        files_before = self.table.data_file_count
        now = self.clock.now
        conflict_reason: str | None = None
        try:
            self._txn.commit()
            success = True
        except CommitConflictError as conflict:
            success = False
            conflict_reason = conflict.reason
            self.telemetry.record("engine.conflicts.cluster", now, 1.0)

        actual_reduction = 0
        if success:
            actual_reduction = files_before - self.table.data_file_count
            if self.cleanup_snapshots:
                retention = self.table.snapshot_retention_s
                self.table.expire_snapshots(older_than=now - retention)
            self.telemetry.record("engine.compaction.gbhr", now, self.gbhr)
            self.telemetry.record(
                "engine.compaction.files_reduced", now, float(actual_reduction)
            )
            self.telemetry.record(
                "engine.compaction.rewritten_bytes", now, float(self.plan.rewritten_bytes)
            )
            self.telemetry.increment("engine.compaction.success")
        else:
            self.telemetry.increment("engine.compaction.failed")
            self.telemetry.record("engine.compaction.wasted_gbhr", now, self.gbhr)

        return CompactionOutcome(
            table=str(self.table.identifier),
            success=success,
            conflict_reason=conflict_reason,
            started_at=self.started_at if self.started_at is not None else now,
            finished_at=now,
            duration_s=self.duration_s,
            gbhr=self.gbhr,
            rewritten_bytes=self.plan.rewritten_bytes,
            files_before=files_before,
            files_after=self.table.data_file_count,
            planned_reduction=self.plan.file_count_reduction,
            actual_reduction=actual_reduction,
        )

    def run_sync(self) -> CompactionOutcome:
        """Start and finish immediately (no concurrency window).

        Convenient for examples and non-event-driven benches; the clock is
        not advanced, so no other commit can interleave.
        """
        self.start()
        return self.finish()
