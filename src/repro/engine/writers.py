"""Writer profiles: how jobs fragment their output into files.

The paper's §2 traces small-file proliferation to how writers are
configured: bulk inserts can be well sized, but engine configuration, degree
of parallelism and memory constraints often are not, and incremental /
CDC-style writers emit many tiny files.  Each profile here maps "a job wrote
``total_bytes``" to a concrete list of file sizes:

* :class:`WellTunedWriter` — the centrally managed ingestion pipeline:
  files at the target size (±jitter);
* :class:`MisconfiguredShuffleWriter` — a Spark job whose (AQE-chosen)
  shuffle partition count is far too high for the data volume, yielding
  `num_partitions` small, skewed files;
* :class:`TrickleWriter` — incremental/CDC appends: file sizes follow a
  log-normal around a small mean, independent of the write's total volume.

Profiles are deterministic given the caller's RNG, keeping whole-workload
replays reproducible (NFR2).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import ValidationError
from repro.units import DEFAULT_TARGET_FILE_SIZE, MiB


class WriterProfile(abc.ABC):
    """Strategy mapping a write volume to individual file sizes."""

    @abc.abstractmethod
    def split(self, total_bytes: int, rng: np.random.Generator) -> list[int]:
        """File sizes (positive ints summing to ``total_bytes``)."""

    @staticmethod
    def _normalize(weights: np.ndarray, total_bytes: int) -> list[int]:
        """Scale positive weights into integer sizes summing to the total."""
        weights = np.maximum(weights, 1e-9)
        raw = weights / weights.sum() * total_bytes
        sizes = np.floor(raw).astype(np.int64)
        shortfall = int(total_bytes - sizes.sum())
        # Distribute the rounding shortfall one byte at a time to the largest.
        if shortfall > 0:
            order = np.argsort(-raw)
            for i in range(shortfall):
                sizes[order[i % len(order)]] += 1
        return [int(s) for s in sizes if s > 0]


class WellTunedWriter(WriterProfile):
    """Emits files at the target size with small jitter.

    Args:
        target_file_size: desired file size (512 MiB default).
        jitter: relative standard deviation of the per-file size.
    """

    def __init__(
        self, target_file_size: int = DEFAULT_TARGET_FILE_SIZE, jitter: float = 0.08
    ) -> None:
        if target_file_size <= 0:
            raise ValidationError("target_file_size must be positive")
        if not 0 <= jitter < 1:
            raise ValidationError(f"jitter must be in [0, 1), got {jitter}")
        self.target_file_size = target_file_size
        self.jitter = jitter

    def split(self, total_bytes: int, rng: np.random.Generator) -> list[int]:
        if total_bytes <= 0:
            return []
        count = max(1, round(total_bytes / self.target_file_size))
        weights = rng.normal(1.0, self.jitter, size=count)
        return self._normalize(weights, total_bytes)


class MisconfiguredShuffleWriter(WriterProfile):
    """Emits one (skewed) file per shuffle partition, however small.

    Args:
        num_partitions: shuffle partition count the job (or AQE) picked.
        skew_sigma: sigma of the log-normal skew across partitions.
    """

    def __init__(self, num_partitions: int = 200, skew_sigma: float = 0.6) -> None:
        if num_partitions <= 0:
            raise ValidationError("num_partitions must be positive")
        if skew_sigma < 0:
            raise ValidationError("skew_sigma must be >= 0")
        self.num_partitions = num_partitions
        self.skew_sigma = skew_sigma

    def split(self, total_bytes: int, rng: np.random.Generator) -> list[int]:
        if total_bytes <= 0:
            return []
        count = min(self.num_partitions, max(1, total_bytes))
        weights = rng.lognormal(0.0, self.skew_sigma, size=count)
        return self._normalize(weights, total_bytes)


class TrickleWriter(WriterProfile):
    """Emits small files of roughly ``mean_file_size`` regardless of volume.

    Args:
        mean_file_size: mean emitted file size (default 8 MiB — CDC-scale).
        sigma: log-normal sigma of individual file sizes.
        max_files: safety cap on files per write.
    """

    def __init__(
        self, mean_file_size: int = 8 * MiB, sigma: float = 0.5, max_files: int = 10_000
    ) -> None:
        if mean_file_size <= 0:
            raise ValidationError("mean_file_size must be positive")
        if sigma < 0:
            raise ValidationError("sigma must be >= 0")
        if max_files <= 0:
            raise ValidationError("max_files must be positive")
        self.mean_file_size = mean_file_size
        self.sigma = sigma
        self.max_files = max_files

    def split(self, total_bytes: int, rng: np.random.Generator) -> list[int]:
        if total_bytes <= 0:
            return []
        count = min(self.max_files, max(1, round(total_bytes / self.mean_file_size)))
        # Log-normal with mean 1 after correction, preserving the byte total.
        mu = -0.5 * self.sigma**2
        weights = rng.lognormal(mu, self.sigma, size=count)
        return self._normalize(weights, total_bytes)


def files_per_write_estimate(writer: WriterProfile, total_bytes: int) -> int:
    """Expected file count for a write, without consuming randomness.

    Useful for sizing experiments before running them.
    """
    if total_bytes <= 0:
        return 0
    if isinstance(writer, WellTunedWriter):
        return max(1, round(total_bytes / writer.target_file_size))
    if isinstance(writer, MisconfiguredShuffleWriter):
        return min(writer.num_partitions, max(1, total_bytes))
    if isinstance(writer, TrickleWriter):
        return min(writer.max_files, max(1, round(total_bytes / writer.mean_file_size)))
    return max(1, math.ceil(total_bytes / DEFAULT_TARGET_FILE_SIZE))
