"""Compute-engine simulator (Spark stand-in).

Models the parts of a distributed query engine that interact with small-file
proliferation and compaction:

* :class:`~repro.engine.cluster.Cluster` — executor pools with a simple
  contention model (the paper runs a 16-node query cluster and a 3-node
  compaction cluster side by side);
* :class:`~repro.engine.cost_model.CostModel` — analytic latency/throughput
  model where per-file overheads (planning entries, task startup, columnar
  read inefficiency, MoR merge work) make many small files slow, which is
  the causal mechanism behind Figures 3 and 8;
* :class:`~repro.engine.writers` — writer profiles that reproduce how well
  tuned and mis-tuned jobs fragment output (bulk writes, mis-configured
  shuffles, trickle/CDC streams);
* :class:`~repro.engine.session.EngineSession` — read/write execution with
  optimistic-commit retry handling (client-side conflicts);
* :class:`~repro.engine.jobs.CompactionJob` — rewrite execution with the
  paper's GBHr cost accounting (cluster-side conflicts).
"""

from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.engine.jobs import CompactionJob, CompactionOutcome
from repro.engine.session import EngineSession, QueryResult, WriteJob, WriteResult
from repro.engine.writers import (
    MisconfiguredShuffleWriter,
    TrickleWriter,
    WellTunedWriter,
    WriterProfile,
)

__all__ = [
    "Cluster",
    "CompactionJob",
    "CompactionOutcome",
    "CostModel",
    "EngineSession",
    "MisconfiguredShuffleWriter",
    "QueryResult",
    "TrickleWriter",
    "WellTunedWriter",
    "WriteJob",
    "WriteResult",
    "WriterProfile",
]
