"""Engine sessions: query and write execution against LST tables.

A session binds a cluster, a cost model and an RNG, and exposes:

* :meth:`EngineSession.execute_read` — immediate read execution (reads
  don't mutate state, so they complete synchronously);
* :meth:`EngineSession.start_write` / :class:`WriteJob` — two-phase writes.
  A write job captures its transaction (and thus its base metadata version)
  at *start* and commits at *completion*, opening the real concurrency
  window in which compaction can race it.  Client-side conflicts are
  retried with fresh metadata, exactly the behaviour behind the paper's
  Table 1 "client-side conflict" column.

All latencies come from the cost model and include the cluster's contention
multiplier at start time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.cluster import Cluster
from repro.engine.cost_model import CostModel
from repro.engine.writers import WriterProfile
from repro.errors import CommitConflictError, ValidationError
from repro.lst.base import BaseTable
from repro.simulation.clock import SimClock
from repro.simulation.rng import derive_rng
from repro.simulation.telemetry import Telemetry


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a read query."""

    latency_s: float
    files_scanned: int
    bytes_scanned: int
    delete_files_merged: int
    manifests_read: int
    cost_gbhr: float
    started_at: float


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a write operation."""

    latency_s: float
    files_created: int
    bytes_written: int
    retries: int
    conflicts: int
    committed: bool
    started_at: float


class WriteJob:
    """A two-phase write: transaction opened at start, committed at finish."""

    def __init__(
        self,
        session: "EngineSession",
        table: BaseTable,
        file_sizes: list[int],
        partitions: list[tuple],
        label: str,
        extra_duration_s: float = 0.0,
    ) -> None:
        if len(file_sizes) != len(partitions):
            raise ValidationError("file_sizes and partitions must align")
        if extra_duration_s < 0:
            raise ValidationError("extra_duration_s must be >= 0")
        self._session = session
        self._table = table
        self._file_sizes = file_sizes
        self._partitions = partitions
        self._label = label
        self.started_at = session.clock.now
        total = sum(file_sizes)
        base_latency = session.cost_model.write_latency(
            total, len(file_sizes), session.cluster.parallelism
        )
        multiplier = session.cluster.contention_multiplier(self.started_at)
        # extra_duration_s models the upstream compute of an ETL job (joins,
        # aggregations) executed while the write transaction stays open —
        # the window in which compaction commits cause client conflicts.
        self.latency_s = (base_latency + extra_duration_s) * multiplier
        session.cluster.register_query(self.started_at, self.latency_s)
        self._txn = self._stage()

    def _stage(self):
        txn = self._table.new_append()
        for size, partition in zip(self._file_sizes, self._partitions):
            txn.add_file(size, partition=partition)
        return txn

    def complete(self) -> WriteResult:
        """Commit the write, retrying client-side conflicts with fresh metadata.

        Returns:
            A :class:`WriteResult`; ``committed`` is False only when the
            retry budget was exhausted.
        """
        session = self._session
        retries = 0
        conflicts = 0
        txn = self._txn
        while True:
            try:
                txn.commit()
                committed = True
                break
            except CommitConflictError as conflict:
                conflicts += 1
                session.telemetry.record(
                    f"engine.conflicts.{conflict.side}", session.clock.now, 1.0
                )
                if retries >= session.max_commit_retries:
                    committed = False
                    break
                retries += 1
                txn = self._stage()  # fresh base version
        total = sum(self._file_sizes)
        session.telemetry.record(
            f"engine.query.{self._label}.latency", self.started_at, self.latency_s
        )
        session.fs_record_opens(0)
        return WriteResult(
            latency_s=self.latency_s,
            files_created=len(self._file_sizes) if committed else 0,
            bytes_written=total if committed else 0,
            retries=retries,
            conflicts=conflicts,
            committed=committed,
            started_at=self.started_at,
        )


class EngineSession:
    """Read/write execution bound to one cluster.

    Args:
        cluster: executor pool used for all operations.
        cost_model: latency model (defaults to :class:`CostModel`).
        telemetry: metric sink (a private one if omitted).
        clock: simulated clock (a private zero clock if omitted).
        seed: root seed for writer-profile randomness.
        max_commit_retries: client-conflict retries before giving up.
    """

    def __init__(
        self,
        cluster: Cluster,
        cost_model: CostModel | None = None,
        telemetry: Telemetry | None = None,
        clock: SimClock | None = None,
        seed: int = 0,
        max_commit_retries: int = 3,
    ) -> None:
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.clock = clock if clock is not None else SimClock()
        self.rng = derive_rng(seed, "engine-session", cluster.name)
        self.max_commit_retries = max_commit_retries
        self._fs_sinks: list = []

    def fs_record_opens(self, count: int) -> None:
        """Forward per-query open() RPC counts to attached filesystems."""
        for fs in self._fs_sinks:
            fs.record_opens(count)

    def attach_filesystem(self, fs) -> None:
        """Attach a filesystem whose RPC counters should see query opens."""
        self._fs_sinks.append(fs)

    # --- reads ---------------------------------------------------------------

    def execute_read(
        self,
        scans: list[tuple[BaseTable, list[tuple] | None]],
        label: str = "ro",
    ) -> QueryResult:
        """Execute a read query over one or more table scans.

        Args:
            scans: ``(table, partitions)`` pairs; ``None`` partitions means a
                full-table scan.
            label: telemetry label (series ``engine.query.<label>.latency``).

        Returns:
            The aggregated :class:`QueryResult`.
        """
        started = self.clock.now
        latency = 0.0
        files = bytes_scanned = deletes = manifests = 0
        for table, partitions in scans:
            plan = table.scan(partitions)
            latency += self.cost_model.read_latency(plan, self.cluster.parallelism)
            files += plan.file_count
            bytes_scanned += plan.total_bytes
            deletes += len(plan.delete_files)
            manifests += plan.manifests_read
        multiplier = self.cluster.contention_multiplier(started)
        latency *= multiplier
        self.cluster.register_query(started, latency)
        cost = self.cluster.gbhr(latency)
        self.telemetry.record(f"engine.query.{label}.latency", started, latency)
        self.telemetry.increment("engine.queries")
        self.fs_record_opens(files + deletes)
        return QueryResult(
            latency_s=latency,
            files_scanned=files,
            bytes_scanned=bytes_scanned,
            delete_files_merged=deletes,
            manifests_read=manifests,
            cost_gbhr=cost,
            started_at=started,
        )

    # --- writes ----------------------------------------------------------------

    def start_write(
        self,
        table: BaseTable,
        total_bytes: int,
        writer: WriterProfile,
        partitions: list[tuple] | tuple | None = None,
        label: str = "rw",
        extra_duration_s: float = 0.0,
    ) -> WriteJob:
        """Open a two-phase append of ``total_bytes`` shaped by ``writer``.

        Args:
            table: target table.
            total_bytes: volume to write.
            writer: profile that fragments the volume into files.
            partitions: a single partition tuple, a list to spread files
                across (uniformly at random), or None for unpartitioned.
            label: telemetry label.
            extra_duration_s: upstream-compute time of the job (the write
                transaction stays open throughout).

        Returns:
            The in-flight :class:`WriteJob`; call :meth:`WriteJob.complete`
            when its latency has elapsed.
        """
        sizes = writer.split(total_bytes, self.rng)
        if partitions is None:
            assigned: list[tuple] = [()] * len(sizes)
        elif isinstance(partitions, tuple):
            assigned = [partitions] * len(sizes)
        else:
            if not partitions:
                raise ValidationError("partition list must be non-empty")
            choices = self.rng.integers(0, len(partitions), size=len(sizes))
            assigned = [partitions[i] for i in choices]
        return WriteJob(self, table, sizes, assigned, label, extra_duration_s)

    def write(
        self,
        table: BaseTable,
        total_bytes: int,
        writer: WriterProfile,
        partitions: list[tuple] | tuple | None = None,
        label: str = "rw",
    ) -> WriteResult:
        """One-shot write: start and complete with no concurrency window."""
        return self.start_write(table, total_bytes, writer, partitions, label).complete()

    def start_row_delta(
        self,
        table: BaseTable,
        delete_fraction: float,
        label: str = "rw",
    ) -> "RowDeltaJob":
        """Open a merge-on-read delete touching ``delete_fraction`` of files."""
        return RowDeltaJob(self, table, delete_fraction, label)

    def start_overwrite(
        self,
        table: BaseTable,
        replace_fraction: float,
        writer: WriterProfile,
        partition: tuple | None = None,
        label: str = "rw",
        extra_duration_s: float = 0.0,
    ) -> "OverwriteJob":
        """Open a copy-on-write update replacing a fraction of live files.

        Args:
            table: target table.
            replace_fraction: share of the (partition's) live files to
                rewrite, in (0, 1].
            writer: profile shaping the replacement files.
            partition: restrict to one partition (None = whole table).
            label: telemetry label.
            extra_duration_s: upstream-compute time of the job.
        """
        return OverwriteJob(
            self, table, replace_fraction, writer, partition, label, extra_duration_s
        )


class OverwriteJob:
    """Two-phase copy-on-write update: targets picked at start, commit at end."""

    def __init__(
        self,
        session: EngineSession,
        table: BaseTable,
        replace_fraction: float,
        writer: WriterProfile,
        partition: tuple | None,
        label: str,
        extra_duration_s: float = 0.0,
    ) -> None:
        if not 0 < replace_fraction <= 1:
            raise ValidationError(
                f"replace_fraction must be in (0, 1], got {replace_fraction}"
            )
        self._session = session
        self._table = table
        self._label = label
        self.started_at = session.clock.now
        files = table.live_files()
        if partition is not None:
            files = [f for f in files if f.partition == partition]
        if not files:
            raise ValidationError(
                f"no live files to overwrite in {table.identifier} "
                f"(partition={partition})"
            )
        count = max(1, round(len(files) * replace_fraction))
        indices = session.rng.choice(len(files), size=count, replace=False)
        self._targets = [files[i] for i in sorted(indices)]
        total = sum(f.size_bytes for f in self._targets)
        self._new_sizes = writer.split(total, session.rng)
        base_latency = session.cost_model.write_latency(
            2 * total, len(self._new_sizes), session.cluster.parallelism
        ) + extra_duration_s
        self.latency_s = base_latency * session.cluster.contention_multiplier(self.started_at)
        session.cluster.register_query(self.started_at, self.latency_s)
        # Stage the transaction now so its base version reflects job start.
        self._txn = table.new_overwrite()
        for target in self._targets:
            self._txn.delete_file(target)
        replace_partition = self._targets[0].partition
        for size in self._new_sizes:
            self._txn.add_file(size, partition=replace_partition)

    def complete(self) -> WriteResult:
        """Commit the overwrite; client conflicts are surfaced, not retried.

        A conflicted overwrite would have to re-read its source data, so —
        unlike appends — we report it failed after one attempt and leave the
        retry decision to the workload (matching engine behaviour where the
        whole query re-runs).
        """
        session = self._session
        txn = self._txn
        conflicts = 0
        committed = True
        try:
            txn.commit()
        except CommitConflictError as conflict:
            conflicts += 1
            committed = False
            session.telemetry.record(
                f"engine.conflicts.{conflict.side}", session.clock.now, 1.0
            )
        session.telemetry.record(
            f"engine.query.{self._label}.latency", self.started_at, self.latency_s
        )
        total = sum(self._new_sizes)
        return WriteResult(
            latency_s=self.latency_s,
            files_created=len(self._new_sizes) if committed else 0,
            bytes_written=total if committed else 0,
            retries=0,
            conflicts=conflicts,
            committed=committed,
            started_at=self.started_at,
        )


class RowDeltaJob:
    """Two-phase MoR delete: samples target files at start, commits at finish."""

    def __init__(
        self,
        session: EngineSession,
        table: BaseTable,
        delete_fraction: float,
        label: str,
    ) -> None:
        if not 0 < delete_fraction <= 1:
            raise ValidationError(
                f"delete_fraction must be in (0, 1], got {delete_fraction}"
            )
        self._session = session
        self._table = table
        self._label = label
        self.started_at = session.clock.now
        files = table.live_files()
        if not files:
            raise ValidationError(f"cannot delete from empty table {table.identifier}")
        count = max(1, round(len(files) * delete_fraction))
        indices = session.rng.choice(len(files), size=count, replace=False)
        self._targets = [files[i] for i in sorted(indices)]
        delete_bytes = max(1024, int(sum(f.size_bytes for f in self._targets) * 0.02))
        self._delete_bytes = delete_bytes
        base_latency = session.cost_model.write_latency(
            delete_bytes, 1, session.cluster.parallelism
        )
        self.latency_s = base_latency * session.cluster.contention_multiplier(self.started_at)
        session.cluster.register_query(self.started_at, self.latency_s)
        # Stage the transaction now so its base version reflects job start —
        # commits racing this job are genuine conflicts.
        self._txn = table.new_row_delta()
        by_partition: dict[tuple, list] = {}
        for f in self._targets:
            by_partition.setdefault(f.partition, []).append(f)
        share = max(1, self._delete_bytes // max(len(by_partition), 1))
        for refs in by_partition.values():
            self._txn.add_deletes(share, refs)
        self._partition_count = len(by_partition)

    def complete(self) -> WriteResult:
        """Commit the delta (grouped per partition into one delete file each)."""
        session = self._session
        txn = self._txn
        retries = 0
        conflicts = 0
        committed = True
        try:
            txn.commit()
        except CommitConflictError as conflict:
            conflicts += 1
            session.telemetry.record(
                f"engine.conflicts.{conflict.side}", session.clock.now, 1.0
            )
            committed = False
        session.telemetry.record(
            f"engine.query.{self._label}.latency", self.started_at, self.latency_s
        )
        return WriteResult(
            latency_s=self.latency_s,
            files_created=self._partition_count if committed else 0,
            bytes_written=self._delete_bytes if committed else 0,
            retries=retries,
            conflicts=conflicts,
            committed=committed,
            started_at=self.started_at,
        )
