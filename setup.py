"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments whose setuptools lacks PEP 660 wheel support
(``python setup.py develop`` needs no ``wheel`` package).
"""

from setuptools import setup

setup()
